//! `strip-top --once` CLI contract: exit 0 on a live run (dashboard
//! includes the memory-accounting table), exit 2 on flag errors. The
//! per-mode exit-1 paths are unit-tested against `top_liveness_failures`
//! in the bench lib; the binary maps any non-empty failure list to
//! `ExitCode::FAILURE`.

use std::process::Command;

#[test]
fn once_runs_live_and_exits_zero() {
    let out = Command::new(env!("CARGO_BIN_EXE_strip-top"))
        .args(["--small", "--once", "--delay", "1.0"])
        .output()
        .expect("spawn strip-top");
    assert!(
        out.status.success(),
        "exit {:?}, stderr: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("strip-top"), "missing header: {stdout}");
    assert!(
        stdout.contains("memory: "),
        "missing memory section: {stdout}"
    );
    assert!(
        stdout.contains("comp_prices"),
        "missing maintained table: {stdout}"
    );
    assert!(
        stdout.contains("snapshots: "),
        "missing snapshot-read counters: {stdout}"
    );
}

#[test]
fn unknown_flag_exits_two() {
    let out = Command::new(env!("CARGO_BIN_EXE_strip-top"))
        .arg("--bogus")
        .output()
        .expect("spawn strip-top");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag"));
}
