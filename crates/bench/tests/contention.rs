//! Acceptance: the contention map must identify the planted hot keys of
//! the parallel benchmark's hot-key workload. `profile` narrows all quote
//! updates to the first [`HOT_SYMBOLS`] symbols; scheduled at 8 workers —
//! more parallelism than independent keys — every stall binds on a hot
//! key, and the top-K hot map must contain the key resource of every
//! planted symbol, ranked above any other resource.

use strip_bench::parallel::{makespan, makespan_observed, profile, HOT_SYMBOLS};
use strip_core::LockGranularity;
use strip_obs::ObsSink;

#[test]
fn hot_key_workload_tops_contention_map() {
    let profiles = profile(LockGranularity::Key, Some(HOT_SYMBOLS), 160);
    let obs = ObsSink::new(16);
    makespan_observed(&profiles, 8, Some(&obs));

    let top = obs.hot_run(HOT_SYMBOLS);
    let expected: Vec<String> = (0..HOT_SYMBOLS)
        .map(|i| format!("stocks#symbol=S{i:05}"))
        .collect();
    for want in &expected {
        assert!(
            top.iter().any(|h| &h.resource == want),
            "planted hot key {want} missing from top-{HOT_SYMBOLS}: {top:?}"
        );
    }
    // Every retained entry carries wait mass, and the map is ranked.
    for w in top.windows(2) {
        assert!(
            w[0].wait_us >= w[1].wait_us,
            "hot map must be sorted: {top:?}"
        );
    }
    assert!(top.iter().all(|h| h.wait_us > 0 && h.hits > 0), "{top:?}");

    // The observer must not perturb the schedule itself.
    assert_eq!(
        makespan(&profiles, 8),
        makespan_observed(&profiles, 8, Some(&obs))
    );
}
