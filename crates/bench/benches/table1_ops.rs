//! Criterion micro-benchmarks mirroring Table 1's operation inventory with
//! real wall-clock measurements of this engine: lock acquire/release,
//! point query through a hash index, one-tuple cursor update, insert +
//! delete, and one Black-Scholes evaluation. Relative magnitudes should
//! resemble the calibrated model (locks ≪ point ops ≪ full transactions).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use strip_core::Strip;
use strip_finance::bs_call_default;
use strip_txn::{LockManager, LockMode, TxnId};

fn bench_locks(c: &mut Criterion) {
    let lm = LockManager::new();
    c.bench_function("lock_acquire_release_shared", |b| {
        b.iter(|| {
            lm.lock(TxnId(1), black_box("stocks"), LockMode::Shared)
                .unwrap();
            lm.release_all(TxnId(1));
        })
    });
    c.bench_function("lock_acquire_release_exclusive", |b| {
        b.iter(|| {
            lm.lock(TxnId(1), black_box("stocks"), LockMode::Exclusive)
                .unwrap();
            lm.release_all(TxnId(1));
        })
    });
}

fn indexed_db(rows: i64) -> Strip {
    let db = Strip::new();
    db.execute("create table t (k int, v float)").unwrap();
    db.execute("create index ix_t on t (k)").unwrap();
    for i in 0..rows {
        db.execute_with(
            "insert into t values (?, ?)",
            &[i.into(), (i as f64).into()],
        )
        .unwrap();
    }
    db
}

fn bench_point_ops(c: &mut Criterion) {
    let db = indexed_db(10_000);
    let mut k = 0i64;
    c.bench_function("point_query_hash_index_10k", |b| {
        b.iter(|| {
            k = (k + 1) % 10_000;
            db.execute_with("select v from t where k = ?", &[k.into()])
                .unwrap()
        })
    });
    c.bench_function("simple_update_txn_10k", |b| {
        b.iter(|| {
            k = (k + 1) % 10_000;
            db.execute_with("update t set v = v + 1 where k = ?", &[k.into()])
                .unwrap()
        })
    });
    let db2 = indexed_db(1_000);
    let mut next = 1_000i64;
    c.bench_function("insert_then_delete_txn", |b| {
        b.iter(|| {
            next += 1;
            db2.execute_with("insert into t values (?, 0.0)", &[next.into()])
                .unwrap();
            db2.execute_with("delete from t where k = ?", &[next.into()])
                .unwrap();
        })
    });
}

fn bench_plan_cache(c: &mut Criterion) {
    // The same parameterized point query, run repeatedly: through the
    // text-keyed prepared-plan cache (plan once, execute many) versus
    // re-planning from the AST on every call. The difference is the
    // planning overhead the cache removes from steady-state workloads.
    let db = indexed_db(10_000);
    let mut k = 0i64;
    c.bench_function("point_query_cached_plan", |b| {
        b.iter(|| {
            k = (k + 1) % 10_000;
            db.execute_with("select v from t where k = ?", &[k.into()])
                .unwrap()
        })
    });
    let q = match strip_sql::parse_statement("select v from t where k = ?").unwrap() {
        strip_sql::Statement::Select(q) => q,
        _ => unreachable!(),
    };
    c.bench_function("point_query_plan_every_call", |b| {
        b.iter(|| {
            k = (k + 1) % 10_000;
            db.txn(|t| t.query_ast(&q, &[k.into()])).unwrap()
        })
    });
}

fn bench_black_scholes(c: &mut Criterion) {
    c.bench_function("black_scholes_eval", |b| {
        b.iter(|| {
            bs_call_default(
                black_box(42.0),
                black_box(40.0),
                black_box(0.5),
                black_box(0.2),
            )
        })
    });
}

fn bench_group_by_recompute(c: &mut Criterion) {
    // The Figure-6 recompute query over a 1 000-row matches-like table.
    let db = Strip::new();
    db.execute("create table matches (comp str, weight float, old_price float, new_price float)")
        .unwrap();
    for i in 0..1000 {
        db.execute_with(
            "insert into matches values (?, 0.5, 30.0, 31.0)",
            &[format!("C{:03}", i % 50).into()],
        )
        .unwrap();
    }
    c.bench_function("group_by_sum_1k_rows_50_groups", |b| {
        b.iter(|| {
            db.query(
                "select comp, sum((new_price - old_price) * weight) as diff \
                 from matches group by comp",
            )
            .unwrap()
        })
    });
}

criterion_group! {
    name = table1;
    config = Criterion::default().sample_size(30);
    targets = bench_locks, bench_point_ops, bench_plan_cache, bench_black_scholes,
        bench_group_by_recompute
}
criterion_main!(table1);
