//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * **Tuple layout** — pointer-array bound tables (§6.1/Rou82) vs full
//!   value copies: build + read cost of the two layouts.
//! * **Index structure** — hash vs red-black-tree point probes (§6.1 offers
//!   both).
//! * **Unique dispatch** — per-firing cost of the unique manager's hash
//!   table (§6.3): coarse vs per-key partitioning vs plain spawn.
//! * **Scheduling policy** — FIFO vs EDF vs value-density queue ops.

use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::HashMap;
use std::hint::black_box;
use strip_rules::UniqueManager;
use strip_storage::{
    ColumnSource, DataType, IndexKind, NullMeter, Schema, StandardTable, StaticMap, TempTable,
};
use strip_txn::{Policy, ReadyQueue, Task};

/// Build a base table with `n` rows of (symbol, price).
fn base_table(n: usize) -> StandardTable {
    let schema = Schema::of(&[("symbol", DataType::Str), ("price", DataType::Float)]);
    let t = StandardTable::new("stocks", schema.into_ref());
    for i in 0..n {
        t.insert(vec![format!("S{i:05}").into(), (i as f64).into()])
            .unwrap();
    }
    t
}

fn bench_tuple_layout(c: &mut Criterion) {
    let base = base_table(1000);
    let recs: Vec<_> = base.scan().into_iter().map(|(_, r)| r.clone()).collect();
    let schema = base.schema().clone();

    c.bench_function("bound_table_build_pointer_1k", |b| {
        b.iter(|| {
            let map = StaticMap::new(vec![
                ColumnSource::Pointer { ptr: 0, offset: 0 },
                ColumnSource::Pointer { ptr: 0, offset: 1 },
            ])
            .unwrap();
            let mut t = TempTable::new("m", schema.clone(), map).unwrap();
            for r in &recs {
                t.push(vec![r.clone()], vec![]).unwrap();
            }
            black_box(t)
        })
    });
    c.bench_function("bound_table_build_copied_1k", |b| {
        b.iter(|| {
            let mut t = TempTable::materialized("m", schema.clone());
            for r in &recs {
                t.push_row(r.values().to_vec()).unwrap();
            }
            black_box(t)
        })
    });

    // Read side.
    let map = StaticMap::new(vec![
        ColumnSource::Pointer { ptr: 0, offset: 0 },
        ColumnSource::Pointer { ptr: 0, offset: 1 },
    ])
    .unwrap();
    let mut ptr_t = TempTable::new("m", schema.clone(), map).unwrap();
    let mut mat_t = TempTable::materialized("m", schema.clone());
    for r in &recs {
        ptr_t.push(vec![r.clone()], vec![]).unwrap();
        mat_t.push_row(r.values().to_vec()).unwrap();
    }
    c.bench_function("bound_table_read_pointer_1k", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..ptr_t.len() {
                acc += ptr_t.value(i, 1).as_f64().unwrap();
            }
            black_box(acc)
        })
    });
    c.bench_function("bound_table_read_copied_1k", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..mat_t.len() {
                acc += mat_t.value(i, 1).as_f64().unwrap();
            }
            black_box(acc)
        })
    });
}

fn bench_index_structures(c: &mut Criterion) {
    for (label, kind) in [("hash", IndexKind::Hash), ("rbtree", IndexKind::RbTree)] {
        let t = base_table(10_000);
        t.create_index("ix", "symbol", kind).unwrap();
        let mut i = 0usize;
        c.bench_function(&format!("index_probe_{label}_10k"), |b| {
            b.iter(|| {
                i = (i + 7) % 10_000;
                black_box(t.index_lookup(0, &format!("S{i:05}").into()))
            })
        });
    }
}

fn matches_bound(rows: usize, comps: usize) -> HashMap<String, TempTable> {
    let schema = Schema::of(&[("comp", DataType::Str), ("diff", DataType::Float)]).into_ref();
    let mut t = TempTable::materialized("matches", schema);
    for i in 0..rows {
        t.push_row(vec![format!("C{:04}", i % comps).into(), 0.5.into()])
            .unwrap();
    }
    let mut m = HashMap::new();
    m.insert("matches".to_string(), t);
    m
}

fn bench_unique_dispatch(c: &mut Criterion) {
    c.bench_function("unique_dispatch_coarse_12rows", |b| {
        let um = UniqueManager::new();
        b.iter(|| {
            um.dispatch_unique("f", &[], matches_bound(12, 12), &NullMeter, 0)
                .unwrap()
        })
    });
    c.bench_function("unique_dispatch_per_comp_12rows", |b| {
        let um = UniqueManager::new();
        let cols = vec!["comp".to_string()];
        b.iter(|| {
            um.dispatch_unique("f", &cols, matches_bound(12, 12), &NullMeter, 0)
                .unwrap()
        })
    });
    c.bench_function("unique_merge_into_pending_12rows", |b| {
        let um = UniqueManager::new();
        // Seed one pending coarse transaction; every iteration merges.
        um.dispatch_unique("f", &[], matches_bound(12, 12), &NullMeter, 0)
            .unwrap();
        b.iter(|| {
            um.dispatch_unique("f", &[], matches_bound(12, 12), &NullMeter, 0)
                .unwrap()
        })
    });
    c.bench_function("non_unique_spawn_12rows", |b| {
        let um = UniqueManager::new();
        b.iter(|| black_box(um.dispatch_non_unique("f", matches_bound(12, 12), 0)))
    });
}

fn bench_sched_policies(c: &mut Criterion) {
    for (label, policy) in [
        ("fifo", Policy::Fifo),
        ("edf", Policy::EarliestDeadline),
        ("value_density", Policy::ValueDensity),
    ] {
        c.bench_function(&format!("ready_queue_push_pop_1k_{label}"), |b| {
            b.iter(|| {
                let mut q = ReadyQueue::new(policy);
                for i in 0..1000u64 {
                    q.push(
                        Task::at("t", i % 97, Box::new(|_| {}))
                            .with_deadline(1000 - i)
                            .with_value((i % 13) as f64),
                    );
                }
                while let Some(t) = q.pop() {
                    black_box(t.id);
                }
            })
        });
    }
}

criterion_group! {
    name = ablations;
    config = Criterion::default().sample_size(20);
    targets = bench_tuple_layout, bench_index_structures, bench_unique_dispatch, bench_sched_policies
}
criterion_main!(ablations);
