//! Named fault-injection points (chaos-testing hooks).
//!
//! Production code threads an optional [`FaultInjector`] through the WAL,
//! the lock manager, the schedulers, and the core commit path. With no
//! injector installed every hook is a no-op branch on a `None`; with one
//! installed (the `strip-chaos` harness), each hook asks the injector what
//! should happen at that point and honors the decision. Decisions a site
//! cannot honor (e.g. `Drop` at a WAL point) are treated as [`Continue`],
//! so a fault plan can never wedge the system in an undefined state.
//!
//! [`Continue`]: FaultDecision::Continue

use std::fmt;
use std::sync::Arc;

/// A named point in the execution where a fault may be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultPoint {
    /// Before one operation record is appended to the WAL.
    WalAppend,
    /// Before the WAL commit marker is appended — the durability ("fsync")
    /// point. Crashing here loses the whole transaction on recovery.
    WalCommit,
    /// At the top of transaction commit, before rule processing.
    TxnCommit,
    /// On each lock acquisition by a transaction.
    LockAcquire,
    /// When the scheduler dispatches a ready task.
    SchedDispatch,
    /// When a feed task is submitted to the executor, or a change event is
    /// forwarded to an export subscriber.
    FeedSubmit,
    /// Between stamping a committing transaction's versions with their
    /// commit timestamp and publishing that timestamp to the global commit
    /// clock. A crash here leaves stamped-but-unannounced versions: snapshot
    /// readers pinned at the old clock must never observe them.
    CommitPublish,
}

impl FaultPoint {
    /// Every defined point, for plan generators.
    pub const ALL: [FaultPoint; 7] = [
        FaultPoint::WalAppend,
        FaultPoint::WalCommit,
        FaultPoint::TxnCommit,
        FaultPoint::LockAcquire,
        FaultPoint::SchedDispatch,
        FaultPoint::FeedSubmit,
        FaultPoint::CommitPublish,
    ];

    /// Stable name used in fault-plan descriptions and repro output.
    pub fn name(self) -> &'static str {
        match self {
            FaultPoint::WalAppend => "wal-append",
            FaultPoint::WalCommit => "wal-commit",
            FaultPoint::TxnCommit => "txn-commit",
            FaultPoint::LockAcquire => "lock-acquire",
            FaultPoint::SchedDispatch => "sched-dispatch",
            FaultPoint::FeedSubmit => "feed-submit",
            FaultPoint::CommitPublish => "commit-publish",
        }
    }
}

impl fmt::Display for FaultPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What the injector tells the hit site to do.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultDecision {
    /// No fault: proceed normally.
    Continue,
    /// Simulated process kill. The WAL stops accepting writes and the
    /// in-flight transaction is undone in memory so the survivors can be
    /// compared against recovery.
    Crash,
    /// Forced transaction abort (honored at `TxnCommit`).
    Abort,
    /// Lock-wait timeout (honored at `LockAcquire`).
    Timeout,
    /// Drop the work entirely (honored at `FeedSubmit`).
    Drop,
    /// Delay by this many virtual µs (honored at `SchedDispatch` and
    /// `FeedSubmit`).
    DelayUs(u64),
}

/// Decides what happens at each injection point.
///
/// `detail` names the resource being touched — a table name at WAL and lock
/// points, the task kind at scheduler and feed points — so plans can target
/// specific traffic and failure reports can say what was hit.
pub trait FaultInjector: Send + Sync {
    fn decide(&self, point: FaultPoint, detail: &str) -> FaultDecision;
}

/// Shared injector handle; `None` means no faults anywhere.
pub type InjectorHandle = Option<Arc<dyn FaultInjector>>;

/// Convenience: consult an optional injector.
pub fn decide(inj: &InjectorHandle, point: FaultPoint, detail: &str) -> FaultDecision {
    match inj {
        Some(i) => i.decide(point, detail),
        None => FaultDecision::Continue,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct AlwaysCrash;
    impl FaultInjector for AlwaysCrash {
        fn decide(&self, _p: FaultPoint, _d: &str) -> FaultDecision {
            FaultDecision::Crash
        }
    }

    #[test]
    fn none_handle_always_continues() {
        let h: InjectorHandle = None;
        for p in FaultPoint::ALL {
            assert_eq!(decide(&h, p, "x"), FaultDecision::Continue);
        }
    }

    #[test]
    fn installed_injector_is_consulted() {
        let h: InjectorHandle = Some(Arc::new(AlwaysCrash));
        assert_eq!(decide(&h, FaultPoint::WalCommit, "t"), FaultDecision::Crash);
    }

    #[test]
    fn point_names_are_distinct() {
        let mut names: Vec<&str> = FaultPoint::ALL.iter().map(|p| p.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), FaultPoint::ALL.len());
    }
}
