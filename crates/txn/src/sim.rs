//! Discrete-event executor over a virtual single CPU.
//!
//! This is the substitution for the paper's HP-735 measurements (see
//! DESIGN.md): tasks *really execute* against the storage engine, but time
//! is charged from the calibrated [`CostModel`] instead of being measured
//! with `gettimeofday`. CPU utilization, recomputation counts, and
//! recompute-transaction lengths — the quantities of Figures 9–14 — fall
//! out of the task statistics.
//!
//! The flow mirrors Figure 15: submitted tasks enter the **delay queue**
//! until their release time, move to the **ready queue**, and are executed
//! one at a time (a single virtual processor, matching the paper's
//! CPU-utilization framing). Tasks spawned during execution (triggered rule
//! actions) are submitted when the task completes.

use crate::cost::{CostMeter, CostModel};
use crate::fault::{decide, FaultDecision, FaultPoint, InjectorHandle};
use crate::sched::{DelayQueue, Policy, ReadyQueue};
use crate::task::{Task, TaskCtx};
use std::collections::HashMap;
use std::sync::Arc;
use strip_obs::{EventKind, ObsSink};

/// Aggregate statistics for one task kind.
#[derive(Debug, Clone, Default)]
pub struct KindStats {
    /// Number of tasks of this kind completed.
    pub count: u64,
    /// Total charged execution time, µs (excludes queueing, matching
    /// Figure 11/14's "system time ... minus queueing time").
    pub total_us: u64,
    /// Longest single task, µs.
    pub max_us: u64,
    /// Total time spent queued (release to start), µs.
    pub queue_us: u64,
}

impl KindStats {
    /// Mean execution time per task, µs.
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_us as f64 / self.count as f64
        }
    }
}

/// Whole-run statistics.
#[derive(Debug, Clone, Default)]
pub struct SimStats {
    /// Tasks completed.
    pub tasks_run: u64,
    /// Total busy time on the virtual CPU, µs.
    pub busy_us: u64,
    /// Per-kind breakdown.
    pub by_kind: HashMap<String, KindStats>,
    /// High-watermark of the ready queue length.
    pub max_ready_len: usize,
    /// High-watermark of the delay queue length.
    pub max_delay_len: usize,
    /// Prepared-plan cache hits. The cache lives in the database facade,
    /// which fills these in when reporting stats; the raw simulator leaves
    /// them zero.
    pub plan_cache_hits: u64,
    /// Prepared-plan cache misses (including epoch-invalidation replans).
    pub plan_cache_misses: u64,
    /// Tasks that started at or after their deadline (the scheduler still
    /// runs them; real-time experiments count the misses).
    pub deadline_misses: u64,
    /// Join-pipeline plan executions with cardinality feedback. Like the
    /// plan-cache counters these live in the observability sink; the
    /// database facade fills them in and the raw simulator leaves zeroes.
    pub plan_choices: u64,
    /// Sum of planner-estimated joined cardinalities over those executions.
    pub card_est_sum: u64,
    /// Sum of observed joined cardinalities over those executions.
    pub card_actual_sum: u64,
}

impl SimStats {
    /// Stats for one kind (zeroes if never run).
    pub fn kind(&self, kind: &str) -> KindStats {
        self.by_kind.get(kind).cloned().unwrap_or_default()
    }

    /// Sum of busy time over kinds whose name starts with `prefix`.
    pub fn busy_us_with_prefix(&self, prefix: &str) -> u64 {
        self.by_kind
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, s)| s.total_us)
            .sum()
    }

    /// Count of tasks over kinds whose name starts with `prefix`.
    pub fn count_with_prefix(&self, prefix: &str) -> u64 {
        self.by_kind
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, s)| s.count)
            .sum()
    }
}

/// The discrete-event simulator.
///
/// ```
/// use strip_txn::{CostModel, Policy, Simulator, Task};
/// use strip_storage::{Meter, Op};
///
/// let mut sim = Simulator::new(CostModel::paper_calibrated(), Policy::Fifo);
/// sim.submit(Task::at("update", 1_000, Box::new(|ctx| {
///     ctx.meter.charge(Op::FetchCursor, 3); // 30 virtual µs
/// })));
/// let end = sim.run_to_completion();
/// assert_eq!(end, 1_030);
/// assert_eq!(sim.stats().kind("update").count, 1);
/// ```
pub struct Simulator {
    clock_us: u64,
    delay: DelayQueue,
    ready: ReadyQueue,
    model: CostModel,
    stats: SimStats,
    injector: InjectorHandle,
    obs: Option<Arc<ObsSink>>,
}

impl Simulator {
    /// New simulator at time zero.
    pub fn new(model: CostModel, policy: Policy) -> Simulator {
        Simulator {
            clock_us: 0,
            delay: DelayQueue::new(),
            ready: ReadyQueue::new(policy),
            model,
            stats: SimStats::default(),
            injector: None,
            obs: None,
        }
    }

    /// Attach an observability sink: the scheduler then traces the task
    /// lifecycle (submit → release → start) and feeds the queue-time and
    /// per-kind execution histograms.
    pub fn set_obs(&mut self, obs: Option<Arc<ObsSink>>) {
        self.obs = obs;
    }

    /// Install a fault injector consulted at `SchedDispatch` each time a
    /// ready task is popped; a `DelayUs` decision stalls the virtual CPU
    /// before the task runs (deadline-miss injection).
    pub fn set_injector(&mut self, injector: InjectorHandle) {
        self.injector = injector;
    }

    /// Current virtual time, µs.
    pub fn now_us(&self) -> u64 {
        self.clock_us
    }

    /// Run statistics so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// The cost model in use.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Total tasks waiting (delayed + ready).
    pub fn pending(&self) -> usize {
        self.delay.len() + self.ready.len()
    }

    /// Submit a task: future releases go to the delay queue, due tasks to
    /// the ready queue.
    pub fn submit(&mut self, task: Task) {
        if let Some(obs) = &self.obs {
            obs.event_ctx(
                self.clock_us,
                task.id.0,
                EventKind::TxnSubmit,
                &task.kind,
                0,
                task.trace,
                0,
            );
        }
        if task.release_us > self.clock_us {
            self.delay.push(task);
            self.stats.max_delay_len = self.stats.max_delay_len.max(self.delay.len());
        } else {
            self.ready.push(task);
            self.stats.max_ready_len = self.stats.max_ready_len.max(self.ready.len());
        }
    }

    fn release_due(&mut self) {
        for t in self.delay.pop_released(self.clock_us) {
            if let Some(obs) = &self.obs {
                obs.event_ctx(
                    self.clock_us,
                    t.id.0,
                    EventKind::TxnRelease,
                    &t.kind,
                    0,
                    t.trace,
                    0,
                );
            }
            self.ready.push(t);
        }
        self.stats.max_ready_len = self.stats.max_ready_len.max(self.ready.len());
    }

    /// Execute one task if any is runnable, advancing the clock. Returns
    /// false when both queues are empty.
    pub fn step(&mut self) -> bool {
        self.release_due();
        if self.ready.is_empty() {
            // Idle: jump to the next release time.
            match self.delay.peek_release() {
                Some(r) => {
                    self.clock_us = r;
                    self.release_due();
                }
                None => return false,
            }
        }
        let Some(task) = self.ready.pop() else {
            return false;
        };
        // Injected dispatch latency: the virtual CPU stalls before the task
        // starts, which is how the chaos harness forces deadline misses.
        if let FaultDecision::DelayUs(d) =
            decide(&self.injector, FaultPoint::SchedDispatch, &task.kind)
        {
            self.clock_us += d;
            self.release_due();
        }
        if let Some(dl) = task.deadline_us {
            if self.clock_us >= dl {
                self.stats.deadline_misses += 1;
                if let Some(obs) = &self.obs {
                    obs.event_ctx(
                        self.clock_us,
                        task.id.0,
                        EventKind::DeadlineMiss,
                        &task.kind,
                        self.clock_us - dl,
                        task.trace,
                        0,
                    );
                }
            }
        }
        let meter = CostMeter::new(self.model.clone());
        let mut ctx = TaskCtx {
            start_us: self.clock_us,
            task_id: task.id,
            meter: &meter,
            spawned: Vec::new(),
            trace: task.trace,
        };
        let kind = task.kind.clone();
        let release_us = task.release_us;
        let queue_us = self.clock_us.saturating_sub(release_us);
        if let Some(obs) = &self.obs {
            obs.event_ctx(
                self.clock_us,
                task.id.0,
                EventKind::TxnStart,
                &kind,
                queue_us,
                task.trace,
                0,
            );
            obs.record_queue(queue_us);
        }
        (task.work)(&mut ctx);
        let spawned = std::mem::take(&mut ctx.spawned);
        let charged = meter.charged_us();

        // Account.
        self.clock_us += charged;
        self.stats.busy_us += charged;
        self.stats.tasks_run += 1;
        let ks = self.stats.by_kind.entry(kind.to_string()).or_default();
        ks.count += 1;
        ks.total_us += charged;
        ks.max_us = ks.max_us.max(charged);
        ks.queue_us += queue_us;
        if let Some(obs) = &self.obs {
            obs.record_exec(&kind, charged);
            obs.window_tick(self.clock_us, self.stats.tasks_run, self.stats.busy_us);
        }

        // Tasks created during execution are submitted afterwards — a rule
        // action is "released as soon as the triggering transaction commits
        // unless a delay is specified" (§2).
        for t in spawned {
            self.submit(t);
        }
        true
    }

    /// Execute a closure *now* as an ad-hoc task, with full accounting:
    /// the clock advances by the charged cost and any tasks it spawns are
    /// submitted. This is how the synchronous `Strip` API runs caller
    /// transactions without routing them through the ready queue.
    pub fn run_inline<R>(&mut self, kind: &str, work: impl FnOnce(&mut TaskCtx<'_>) -> R) -> R {
        let meter = CostMeter::new(self.model.clone());
        let mut ctx = TaskCtx {
            start_us: self.clock_us,
            task_id: crate::task::TaskId::fresh(),
            meter: &meter,
            spawned: Vec::new(),
            trace: strip_obs::TraceCtx::NONE,
        };
        let out = work(&mut ctx);
        let spawned = std::mem::take(&mut ctx.spawned);
        let charged = meter.charged_us();
        self.clock_us += charged;
        self.stats.busy_us += charged;
        self.stats.tasks_run += 1;
        let ks = self.stats.by_kind.entry(kind.to_string()).or_default();
        ks.count += 1;
        ks.total_us += charged;
        ks.max_us = ks.max_us.max(charged);
        if let Some(obs) = &self.obs {
            obs.record_exec(kind, charged);
            obs.window_tick(self.clock_us, self.stats.tasks_run, self.stats.busy_us);
        }
        for t in spawned {
            self.submit(t);
        }
        out
    }

    /// Run until both queues drain. Returns the final virtual time.
    pub fn run_to_completion(&mut self) -> u64 {
        while self.step() {}
        self.clock_us
    }

    /// Tick the windowed telemetry collector at the current virtual time
    /// (idle horizon jumps seal windows too, not just task completions).
    fn tick_windows(&self) {
        if let Some(obs) = &self.obs {
            obs.window_tick(self.clock_us, self.stats.tasks_run, self.stats.busy_us);
        }
    }

    /// Run until the virtual clock passes `until_us` or everything drains.
    pub fn run_until(&mut self, until_us: u64) {
        loop {
            self.release_due();
            if self.ready.is_empty() {
                match self.delay.peek_release() {
                    Some(r) if r <= until_us => {}
                    _ => {
                        self.clock_us = self.clock_us.max(until_us);
                        self.tick_windows();
                        return;
                    }
                }
            }
            if self.clock_us >= until_us {
                return;
            }
            if !self.step() {
                self.clock_us = self.clock_us.max(until_us);
                self.tick_windows();
                return;
            }
        }
    }

    /// CPU utilization over `[0, duration_us]`: busy / duration.
    pub fn utilization(&self, duration_us: u64) -> f64 {
        if duration_us == 0 {
            0.0
        } else {
            self.stats.busy_us as f64 / duration_us as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use strip_storage::{Meter, Op};

    fn charging(kind: &str, release: u64, ops: u64) -> Task {
        Task::at(
            kind,
            release,
            Box::new(move |ctx| ctx.meter.charge(Op::FetchCursor, ops)),
        )
    }

    #[test]
    fn clock_advances_by_charged_time() {
        let mut sim = Simulator::new(CostModel::paper_calibrated(), Policy::Fifo);
        sim.submit(charging("a", 0, 10)); // 100 µs
        sim.submit(charging("b", 50, 10)); // released mid-run of a
        let end = sim.run_to_completion();
        assert_eq!(end, 200);
        assert_eq!(sim.stats().tasks_run, 2);
        assert_eq!(sim.stats().busy_us, 200);
        // b queued from release (50) to start (100).
        assert_eq!(sim.stats().kind("b").queue_us, 50);
    }

    #[test]
    fn idle_time_jumps_clock() {
        let mut sim = Simulator::new(CostModel::paper_calibrated(), Policy::Fifo);
        sim.submit(charging("a", 1000, 1)); // 10 µs of work at t=1000
        let end = sim.run_to_completion();
        assert_eq!(end, 1010);
        assert_eq!(sim.utilization(1010), 10.0 / 1010.0);
    }

    #[test]
    fn spawned_tasks_run_after_parent() {
        let order = Arc::new(AtomicU64::new(0));
        let o1 = order.clone();
        let o2 = order.clone();
        let mut sim = Simulator::new(CostModel::free(), Policy::Fifo);
        sim.submit(Task::immediate(
            "parent",
            Box::new(move |ctx| {
                let o2 = o2.clone();
                ctx.spawn(Task::immediate(
                    "child",
                    Box::new(move |_| {
                        o2.compare_exchange(1, 2, Ordering::SeqCst, Ordering::SeqCst)
                            .unwrap();
                    }),
                ));
                o1.compare_exchange(0, 1, Ordering::SeqCst, Ordering::SeqCst)
                    .unwrap();
            }),
        ));
        sim.run_to_completion();
        assert_eq!(order.load(Ordering::SeqCst), 2);
        assert_eq!(sim.stats().tasks_run, 2);
    }

    #[test]
    fn spawned_delayed_task_waits_out_window() {
        let mut sim = Simulator::new(CostModel::paper_calibrated(), Policy::Fifo);
        sim.submit(Task::immediate(
            "trigger",
            Box::new(|ctx| {
                ctx.meter.charge(Op::CommitTxn, 1); // 25 µs
                let release = ctx.now_us() + 1_000_000; // after 1 second
                ctx.spawn(charging("recompute", release, 1));
            }),
        ));
        let end = sim.run_to_completion();
        assert_eq!(end, 25 + 1_000_000 + 10);
        assert_eq!(sim.stats().kind("recompute").count, 1);
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut sim = Simulator::new(CostModel::paper_calibrated(), Policy::Fifo);
        for i in 0..10 {
            sim.submit(charging("u", i * 1000, 1));
        }
        sim.run_until(5000);
        assert!(sim.now_us() >= 5000);
        assert!(sim.stats().tasks_run >= 5);
        sim.run_to_completion();
        assert_eq!(sim.stats().tasks_run, 10);
    }

    #[test]
    fn per_kind_stats_and_prefix_helpers() {
        let mut sim = Simulator::new(CostModel::paper_calibrated(), Policy::Fifo);
        sim.submit(charging("recompute:f1", 0, 1));
        sim.submit(charging("recompute:f1", 0, 3));
        sim.submit(charging("recompute:f2", 0, 2));
        sim.submit(charging("update", 0, 5));
        sim.run_to_completion();
        let f1 = sim.stats().kind("recompute:f1");
        assert_eq!(f1.count, 2);
        assert_eq!(f1.total_us, 40);
        assert_eq!(f1.max_us, 30);
        assert_eq!(f1.mean_us(), 20.0);
        assert_eq!(sim.stats().count_with_prefix("recompute:"), 3);
        assert_eq!(sim.stats().busy_us_with_prefix("recompute:"), 60);
    }

    #[test]
    fn injected_dispatch_delay_counts_deadline_miss() {
        use crate::fault::{FaultDecision, FaultInjector, FaultPoint};
        struct Slow;
        impl FaultInjector for Slow {
            fn decide(&self, p: FaultPoint, _d: &str) -> FaultDecision {
                if p == FaultPoint::SchedDispatch {
                    FaultDecision::DelayUs(500)
                } else {
                    FaultDecision::Continue
                }
            }
        }
        let mut sim = Simulator::new(CostModel::paper_calibrated(), Policy::EarliestDeadline);
        sim.set_injector(Some(Arc::new(Slow)));
        sim.submit(charging("u", 0, 1).with_deadline(100));
        let end = sim.run_to_completion();
        assert_eq!(end, 510); // 500 µs stall + 10 µs work
        assert_eq!(sim.stats().deadline_misses, 1);

        // Without the injector the same task makes its deadline.
        let mut sim = Simulator::new(CostModel::paper_calibrated(), Policy::EarliestDeadline);
        sim.submit(charging("u", 0, 1).with_deadline(100));
        sim.run_to_completion();
        assert_eq!(sim.stats().deadline_misses, 0);
    }

    #[test]
    fn queue_us_is_start_minus_release() {
        // A 100 µs task at t=0 delays three later tasks; each task's queue
        // time must be exactly its start time minus its release time.
        let mut sim = Simulator::new(CostModel::paper_calibrated(), Policy::Fifo);
        sim.submit(charging("blocker", 0, 10)); // runs [0, 100)
        sim.submit(charging("u", 40, 10)); // starts 100, queued 60
        sim.submit(charging("u", 90, 10)); // starts 200, queued 110
        sim.submit(charging("u", 300, 10)); // idle jump: starts 300, queued 0
        sim.run_to_completion();
        assert_eq!(sim.stats().kind("blocker").queue_us, 0);
        // 60 + 110 + 0 (the idle-jump task queues for nothing).
        assert_eq!(sim.stats().kind("u").queue_us, 170);
    }

    #[test]
    fn deadline_miss_boundary_is_start_at_or_after_deadline() {
        // First task runs [0, 100); the contested task releases at 0 with
        // deadline exactly 100 — starting *at* the deadline counts as a miss.
        let mut sim = Simulator::new(CostModel::paper_calibrated(), Policy::Fifo);
        sim.submit(charging("blocker", 0, 10));
        sim.submit(charging("exact", 0, 1).with_deadline(100));
        sim.run_to_completion();
        assert_eq!(sim.stats().deadline_misses, 1);

        // One µs of slack and the same shape makes its deadline.
        let mut sim = Simulator::new(CostModel::paper_calibrated(), Policy::Fifo);
        sim.submit(charging("blocker", 0, 10));
        sim.submit(charging("exact", 0, 1).with_deadline(101));
        sim.run_to_completion();
        assert_eq!(sim.stats().deadline_misses, 0);
    }

    #[test]
    fn busy_us_with_prefix_sums_only_matching_kinds() {
        let mut sim = Simulator::new(CostModel::paper_calibrated(), Policy::Fifo);
        sim.submit(charging("recompute:a", 0, 1)); // 10 µs
        sim.submit(charging("recompute:b", 0, 2)); // 20 µs
        sim.submit(charging("recompute", 0, 4)); // 40 µs — prefix matches itself
        sim.submit(charging("update", 0, 8)); // 80 µs — excluded
        sim.run_to_completion();
        assert_eq!(sim.stats().busy_us_with_prefix("recompute"), 70);
        assert_eq!(sim.stats().busy_us_with_prefix("recompute:"), 30);
        assert_eq!(sim.stats().busy_us_with_prefix("nope"), 0);
        assert_eq!(
            sim.stats().busy_us_with_prefix(""),
            sim.stats().busy_us,
            "empty prefix matches every kind"
        );
    }

    #[test]
    fn obs_sink_traces_lifecycle_and_histograms() {
        use strip_obs::ObsSink;
        let obs = ObsSink::new(64);
        let mut sim = Simulator::new(CostModel::paper_calibrated(), Policy::Fifo);
        sim.set_obs(Some(obs.clone()));
        sim.submit(charging("blocker", 0, 10)); // runs [0, 100)
        sim.submit(charging("u", 40, 10)); // delayed, released at 40, starts 100
        sim.run_to_completion();

        let kinds: Vec<EventKind> = obs.trace_tail(100).iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EventKind::TxnSubmit));
        assert!(kinds.contains(&EventKind::TxnRelease), "{kinds:?}");
        assert!(kinds.contains(&EventKind::TxnStart));

        let snap = obs.snapshot();
        assert_eq!(snap.queue_us.count, 2);
        assert_eq!(snap.queue_us.sum, 60); // blocker 0 + u 60
        assert_eq!(snap.exec_us.len(), 2);
        let u = snap.exec_us.iter().find(|(k, _)| k == "u").unwrap();
        assert_eq!(u.1.count, 1);
        assert_eq!(u.1.sum, 100);
    }

    #[test]
    fn edf_policy_orders_ready_tasks() {
        let mut sim = Simulator::new(CostModel::free(), Policy::EarliestDeadline);
        let order = Arc::new(parking_lot::Mutex::new(Vec::new()));
        for (kind, dl) in [("late", 900u64), ("urgent", 10)] {
            let o = order.clone();
            let kind_owned = kind.to_string();
            sim.submit(
                Task::immediate(kind, Box::new(move |_| o.lock().push(kind_owned.clone())))
                    .with_deadline(dl),
            );
        }
        sim.run_to_completion();
        assert_eq!(
            *order.lock(),
            vec!["urgent".to_string(), "late".to_string()]
        );
    }
}
