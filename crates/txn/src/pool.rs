//! A wall-clock worker-pool executor.
//!
//! This is the live-mode counterpart of the simulator: "tasks are serviced
//! in STRIP by a pool of processes. Whenever a process becomes free, it
//! moves a task from the ready queue to the running queue and starts
//! executing its code" (§6.2). Delayed tasks (unique transactions inside
//! their `after` window) sit in the shared delay queue until their wall-
//! clock release time.
//!
//! The pool reuses the same `Task` / `TaskCtx` contract as the simulator,
//! so rule actions run unchanged in either mode; costs are still charged to
//! the per-task meter so statistics stay comparable.

use crate::cost::{CostMeter, CostModel};
use crate::sched::{DelayQueue, Policy, ReadyQueue};
use crate::sim::SimStats;
use crate::task::{Task, TaskCtx};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use strip_obs::{EventKind, ObsSink};

struct PoolState {
    delay: DelayQueue,
    ready: ReadyQueue,
    shutdown: bool,
}

struct PoolInner {
    state: Mutex<PoolState>,
    work_cv: Condvar,
    idle_cv: Condvar,
    model: CostModel,
    epoch: Instant,
    stats: Mutex<SimStats>,
    active: AtomicUsize,
    obs: Option<Arc<ObsSink>>,
}

impl PoolInner {
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }
}

/// A pool of worker threads servicing the ready/delay queues.
pub struct WorkerPool {
    inner: Arc<PoolInner>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Start `workers` threads with the given cost model and policy.
    pub fn new(workers: usize, model: CostModel, policy: Policy) -> WorkerPool {
        WorkerPool::new_with_obs(workers, model, policy, None)
    }

    /// Like [`WorkerPool::new`] but with an observability sink. The sink
    /// must be supplied at construction because worker threads start
    /// immediately.
    pub fn new_with_obs(
        workers: usize,
        model: CostModel,
        policy: Policy,
        obs: Option<Arc<ObsSink>>,
    ) -> WorkerPool {
        let inner = Arc::new(PoolInner {
            state: Mutex::new(PoolState {
                delay: DelayQueue::new(),
                ready: ReadyQueue::new(policy),
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            model,
            epoch: Instant::now(),
            stats: Mutex::new(SimStats::default()),
            active: AtomicUsize::new(0),
            obs,
        });
        let handles = (0..workers.max(1))
            .map(|_| {
                let inner = inner.clone();
                std::thread::spawn(move || worker_loop(inner))
            })
            .collect();
        WorkerPool { inner, handles }
    }

    /// Microseconds since the pool started — the time base for release
    /// times of submitted tasks.
    pub fn now_us(&self) -> u64 {
        self.inner.now_us()
    }

    /// Submit a task. `task.release_us` is interpreted on the pool's clock.
    pub fn submit(&self, task: Task) {
        if let Some(obs) = &self.inner.obs {
            obs.event_ctx(
                self.inner.now_us(),
                task.id.0,
                EventKind::TxnSubmit,
                &task.kind,
                0,
                task.trace,
                0,
            );
        }
        let mut st = self.inner.state.lock();
        if task.release_us > self.inner.now_us() {
            st.delay.push(task);
        } else {
            st.ready.push(task);
        }
        drop(st);
        self.inner.work_cv.notify_one();
    }

    /// Block until no task is queued, delayed, or running.
    pub fn wait_idle(&self) {
        let mut st = self.inner.state.lock();
        loop {
            let busy = !st.ready.is_empty()
                || !st.delay.is_empty()
                || self.inner.active.load(Ordering::SeqCst) > 0;
            if !busy {
                return;
            }
            // Bounded wait: a delayed task may become due while we sleep.
            self.inner
                .idle_cv
                .wait_for(&mut st, Duration::from_millis(5));
        }
    }

    /// Snapshot of accumulated statistics.
    pub fn stats(&self) -> SimStats {
        self.inner.stats.lock().clone()
    }

    /// Number of queued + delayed tasks.
    pub fn pending(&self) -> usize {
        let st = self.inner.state.lock();
        st.ready.len() + st.delay.len()
    }

    /// Stop accepting work and join the workers. Remaining queued tasks are
    /// dropped.
    pub fn shutdown(mut self) {
        {
            let mut st = self.inner.state.lock();
            st.shutdown = true;
        }
        self.inner.work_cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.inner.state.lock();
            st.shutdown = true;
        }
        self.inner.work_cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(inner: Arc<PoolInner>) {
    loop {
        let task = {
            let mut st = inner.state.lock();
            loop {
                if st.shutdown {
                    return;
                }
                let now = inner.now_us();
                for t in st.delay.pop_released(now) {
                    st.ready.push(t);
                }
                if let Some(t) = st.ready.pop() {
                    break t;
                }
                // Sleep until the next release or new work.
                match st.delay.peek_release() {
                    Some(r) => {
                        let wait = Duration::from_micros(r.saturating_sub(now).min(5_000));
                        inner
                            .work_cv
                            .wait_for(&mut st, wait.max(Duration::from_micros(100)));
                    }
                    None => {
                        inner.work_cv.wait(&mut st);
                    }
                }
            }
        };

        inner.active.fetch_add(1, Ordering::SeqCst);
        let meter = CostMeter::new(inner.model.clone());
        let start_us = inner.now_us();
        let pool_queue_us = start_us.saturating_sub(task.release_us);
        if let Some(obs) = &inner.obs {
            obs.event_ctx(
                start_us,
                task.id.0,
                EventKind::TxnStart,
                &task.kind,
                pool_queue_us,
                task.trace,
                0,
            );
            obs.record_queue(pool_queue_us);
            if let Some(dl) = task.deadline_us {
                if start_us >= dl {
                    obs.event_ctx(
                        start_us,
                        task.id.0,
                        EventKind::DeadlineMiss,
                        &task.kind,
                        start_us - dl,
                        task.trace,
                        0,
                    );
                }
            }
        }
        let mut ctx = TaskCtx {
            start_us,
            task_id: task.id,
            meter: &meter,
            spawned: Vec::new(),
            trace: task.trace,
        };
        let kind = task.kind.clone();
        let release_us = task.release_us;
        let deadline_us = task.deadline_us;
        (task.work)(&mut ctx);
        let spawned = std::mem::take(&mut ctx.spawned);
        let charged = meter.charged_us();

        let (tasks_run, busy_us) = {
            let mut stats = inner.stats.lock();
            stats.tasks_run += 1;
            if deadline_us.is_some_and(|dl| start_us >= dl) {
                stats.deadline_misses += 1;
            }
            stats.busy_us += charged;
            let ks = stats.by_kind.entry(kind.to_string()).or_default();
            ks.count += 1;
            ks.total_us += charged;
            ks.max_us = ks.max_us.max(charged);
            ks.queue_us += start_us.saturating_sub(release_us);
            (stats.tasks_run, stats.busy_us)
        };
        if let Some(obs) = &inner.obs {
            obs.record_exec(&kind, charged);
            // Pool-mode windows advance over the wall clock; concurrent
            // seal attempts are serialized inside the collector.
            obs.window_tick(inner.now_us(), tasks_run, busy_us);
        }
        if !spawned.is_empty() {
            let mut st = inner.state.lock();
            let now = inner.now_us();
            for t in spawned {
                if t.release_us > now {
                    st.delay.push(t);
                } else {
                    st.ready.push(t);
                }
            }
            drop(st);
            inner.work_cv.notify_all();
        }
        inner.active.fetch_sub(1, Ordering::SeqCst);
        inner.idle_cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_submitted_tasks() {
        let pool = WorkerPool::new(2, CostModel::free(), Policy::Fifo);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..10 {
            let c = counter.clone();
            pool.submit(Task::immediate(
                "t",
                Box::new(move |_| {
                    c.fetch_add(1, Ordering::SeqCst);
                }),
            ));
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::SeqCst), 10);
        assert_eq!(pool.stats().tasks_run, 10);
        pool.shutdown();
    }

    #[test]
    fn delayed_tasks_wait_for_release() {
        let pool = WorkerPool::new(1, CostModel::free(), Policy::Fifo);
        let ran_at = Arc::new(AtomicU64::new(0));
        let r = ran_at.clone();
        let release = pool.now_us() + 30_000; // 30 ms
        pool.submit(Task::at(
            "delayed",
            release,
            Box::new(move |ctx| {
                r.store(ctx.start_us, Ordering::SeqCst);
            }),
        ));
        pool.wait_idle();
        assert!(
            ran_at.load(Ordering::SeqCst) >= release,
            "task ran before its release time"
        );
        pool.shutdown();
    }

    #[test]
    fn spawned_tasks_complete_before_idle() {
        let pool = WorkerPool::new(2, CostModel::free(), Policy::Fifo);
        let counter = Arc::new(AtomicU64::new(0));
        let c = counter.clone();
        pool.submit(Task::immediate(
            "parent",
            Box::new(move |ctx| {
                for _ in 0..5 {
                    let c = c.clone();
                    ctx.spawn(Task::immediate(
                        "child",
                        Box::new(move |_| {
                            c.fetch_add(1, Ordering::SeqCst);
                        }),
                    ));
                }
            }),
        ));
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::SeqCst), 5);
        pool.shutdown();
    }

    #[test]
    fn drop_shuts_down_cleanly() {
        let pool = WorkerPool::new(4, CostModel::free(), Policy::Fifo);
        pool.submit(Task::immediate("t", Box::new(|_| {})));
        pool.wait_idle();
        drop(pool);
    }
}
