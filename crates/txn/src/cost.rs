//! The calibrated cost model (paper Table 1).
//!
//! STRIP's experiments report CPU utilization on an HP-735. We reproduce the
//! *shape* of those results on modern hardware by charging each primitive a
//! fixed virtual cost in microseconds and running the workload on a virtual
//! single CPU (see `sim`). The Table-1 rows sum to the paper's 172 µs for a
//! one-tuple cursor update (begin task + begin txn + get lock + open cursor +
//! fetch + update + close + release lock + commit + end task), giving the
//! paper's ≈5 800 TPS for simple updates.
//!
//! Costs for query-processing and rule-management primitives (not itemized
//! in Table 1) are set to plausible values of the same magnitude; the
//! Black-Scholes model evaluation is priced separately because the paper
//! stresses that derived-data functions are expensive (§1).

use std::cell::Cell;
use strip_storage::{Meter, Op};

/// Virtual cost of each operation, in microseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    costs: [u64; COST_SLOTS],
}

const COST_SLOTS: usize = 25;

fn slot(op: Op) -> usize {
    match op {
        Op::BeginTask => 0,
        Op::EndTask => 1,
        Op::BeginTxn => 2,
        Op::CommitTxn => 3,
        Op::GetLock => 4,
        Op::ReleaseLock => 5,
        Op::OpenCursor => 6,
        Op::FetchCursor => 7,
        Op::UpdateCursor => 8,
        Op::CloseCursor => 9,
        Op::InsertTuple => 10,
        Op::DeleteTuple => 11,
        Op::IndexProbe => 12,
        Op::IndexMaintain => 13,
        Op::TempTupleBuild => 14,
        Op::TempTupleRead => 15,
        Op::EvalExpr => 16,
        Op::AggRow => 17,
        Op::UserFnRow => 18,
        Op::ModelEval => 19,
        Op::UniqueHashOp => 20,
        Op::RuleCheck => 21,
        Op::LogScanRecord => 22,
        Op::WalAppendRecord => 23,
        Op::WalFsync => 24,
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::paper_calibrated()
    }
}

impl CostModel {
    /// The default calibration. Table-1 rows sum to 172 µs.
    pub fn paper_calibrated() -> CostModel {
        let mut m = CostModel {
            costs: [0; COST_SLOTS],
        };
        // -- Table 1 (sums to 172 µs for the simple-update sequence) ------
        m.set(Op::BeginTask, 20);
        m.set(Op::EndTask, 15);
        m.set(Op::BeginTxn, 15);
        m.set(Op::CommitTxn, 25);
        m.set(Op::GetLock, 14);
        m.set(Op::ReleaseLock, 10);
        m.set(Op::OpenCursor, 25);
        m.set(Op::FetchCursor, 10);
        m.set(Op::UpdateCursor, 28);
        m.set(Op::CloseCursor, 10);
        // -- other engine primitives ---------------------------------------
        m.set(Op::InsertTuple, 25);
        m.set(Op::DeleteTuple, 20);
        m.set(Op::IndexProbe, 12);
        m.set(Op::IndexMaintain, 8);
        m.set(Op::TempTupleBuild, 6);
        m.set(Op::TempTupleRead, 3);
        m.set(Op::EvalExpr, 2);
        m.set(Op::AggRow, 4);
        m.set(Op::UserFnRow, 6);
        // An expensive derived-data model evaluation (Black-Scholes with two
        // Φ() evaluations via erf, plus logs/exps, on mid-90s hardware).
        m.set(Op::ModelEval, 250);
        m.set(Op::UniqueHashOp, 5);
        m.set(Op::RuleCheck, 10);
        m.set(Op::LogScanRecord, 2);
        // Durable-mode WAL costs (charged only when a WAL is attached; the
        // paper's 172 µs simple update is non-durable and unaffected). The
        // fsync figure models a battery-backed log device, not a full disk
        // rotation.
        m.set(Op::WalAppendRecord, 3);
        m.set(Op::WalFsync, 40);
        m
    }

    /// A zero-cost model (useful in tests that only count operations).
    pub fn free() -> CostModel {
        CostModel {
            costs: [0; COST_SLOTS],
        }
    }

    /// Set the cost of one operation.
    pub fn set(&mut self, op: Op, us: u64) {
        self.costs[slot(op)] = us;
    }

    /// Cost of one occurrence of `op`.
    pub fn cost(&self, op: Op) -> u64 {
        self.costs[slot(op)]
    }

    /// Total cost of the paper's simple one-tuple cursor-update sequence
    /// (the Table-1 sum).
    pub fn simple_update_us(&self) -> u64 {
        [
            Op::BeginTask,
            Op::BeginTxn,
            Op::GetLock,
            Op::OpenCursor,
            Op::FetchCursor,
            Op::UpdateCursor,
            Op::CloseCursor,
            Op::ReleaseLock,
            Op::CommitTxn,
            Op::EndTask,
        ]
        .iter()
        .map(|&op| self.cost(op))
        .sum()
    }
}

/// A meter that converts operation counts into virtual microseconds using a
/// [`CostModel`]. Single-threaded by design: each task runs on one virtual
/// CPU, and the simulator reads the accumulated charge after each task.
#[derive(Debug)]
pub struct CostMeter {
    model: CostModel,
    charged_us: Cell<u64>,
    ops: Cell<u64>,
}

impl CostMeter {
    /// New meter with the given model.
    pub fn new(model: CostModel) -> CostMeter {
        CostMeter {
            model,
            charged_us: Cell::new(0),
            ops: Cell::new(0),
        }
    }

    /// Microseconds charged so far.
    pub fn charged_us(&self) -> u64 {
        self.charged_us.get()
    }

    /// Total operation count (all ops).
    pub fn op_count(&self) -> u64 {
        self.ops.get()
    }

    /// Reset the accumulators.
    pub fn reset(&self) {
        self.charged_us.set(0);
        self.ops.set(0);
    }

    /// The model in use.
    pub fn model(&self) -> &CostModel {
        &self.model
    }
}

impl Meter for CostMeter {
    #[inline]
    fn charge(&self, op: Op, n: u64) {
        self.charged_us
            .set(self.charged_us.get() + self.model.cost(op) * n);
        self.ops.set(self.ops.get() + n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_sums_to_172us() {
        let m = CostModel::paper_calibrated();
        assert_eq!(m.simple_update_us(), 172);
        // ≈ 5814 TPS, the paper's computed throughput.
        let tps = 1_000_000 / m.simple_update_us();
        assert_eq!(tps, 5813);
    }

    #[test]
    fn meter_accumulates_per_model() {
        let meter = CostMeter::new(CostModel::paper_calibrated());
        meter.charge(Op::FetchCursor, 3);
        meter.charge(Op::GetLock, 1);
        assert_eq!(meter.charged_us(), 3 * 10 + 14);
        assert_eq!(meter.op_count(), 4);
        meter.reset();
        assert_eq!(meter.charged_us(), 0);
    }

    #[test]
    fn free_model_charges_nothing() {
        let meter = CostMeter::new(CostModel::free());
        meter.charge(Op::ModelEval, 100);
        assert_eq!(meter.charged_us(), 0);
        assert_eq!(meter.op_count(), 100);
    }

    #[test]
    fn model_is_tunable() {
        let mut m = CostModel::paper_calibrated();
        m.set(Op::ModelEval, 1000);
        assert_eq!(m.cost(Op::ModelEval), 1000);
    }

    #[test]
    fn every_op_has_a_slot() {
        let m = CostModel::paper_calibrated();
        for &op in strip_storage::meter::ALL_OPS {
            // Must not panic, and Table-1 ops must be non-zero.
            let _ = m.cost(op);
        }
        assert!(m.cost(Op::BeginTask) > 0);
        assert!(m.cost(Op::ModelEval) > m.cost(Op::UserFnRow));
    }
}
