//! Strict two-phase-locking lock manager with deadlock detection and
//! hierarchical (multi-granularity) modes.
//!
//! STRIP transactions hold locks until commit (§6.1: "locks are not held
//! across transactions" — i.e. exactly transaction-scoped). Resources are
//! named: the core layer uses table names for table-granular locks and
//! `table#column=key` (see [`key_resource`]) for key-granular locks under
//! them. The classic five-mode hierarchy applies — a transaction takes
//! IS/IX on the table before S/X on a key resource ([`LockManager::lock_key`]
//! enforces the order), so a full-scan `S` or DDL `X` on the table conflicts
//! exactly with the writers/readers it must conflict with, while writers on
//! *different* keys (IX + disjoint X's) run in parallel. Upgrades follow the
//! mode lattice (`lub(S, IX) = SIX`); waits-for-graph cycle detection spans
//! both granularities and aborts the *requesting* transaction (the paper's
//! real-time flavor prefers restarting the newcomer over disturbing queued
//! work).

use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;

/// Transaction identifier as seen by the lock manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxnId(pub u64);

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Lock mode. The intention modes (`IntentShared`, `IntentExclusive`,
/// `SharedIntentExclusive`) are taken on a *table* to announce S/X locks on
/// key resources below it; plain `Shared`/`Exclusive` work on any resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LockMode {
    /// IS — intends to read individual keys under this table.
    IntentShared,
    /// IX — intends to write individual keys under this table.
    IntentExclusive,
    /// S — reads the whole resource (full scan when taken on a table).
    Shared,
    /// SIX — S + IX: reads the whole table while writing individual keys.
    SharedIntentExclusive,
    /// X — exclusive access to the whole resource.
    Exclusive,
}

impl LockMode {
    /// Classic multi-granularity compatibility matrix.
    ///
    /// |     | IS | IX | S  | SIX | X |
    /// |-----|----|----|----|-----|---|
    /// | IS  | ✓  | ✓  | ✓  | ✓   | ✗ |
    /// | IX  | ✓  | ✓  | ✗  | ✗   | ✗ |
    /// | S   | ✓  | ✗  | ✓  | ✗   | ✗ |
    /// | SIX | ✓  | ✗  | ✗  | ✗   | ✗ |
    /// | X   | ✗  | ✗  | ✗  | ✗   | ✗ |
    pub fn compatible_with(self, other: LockMode) -> bool {
        use LockMode::*;
        match (self, other) {
            (IntentShared, Exclusive) | (Exclusive, IntentShared) => false,
            (IntentShared, _) | (_, IntentShared) => true,
            (IntentExclusive, IntentExclusive) => true,
            (Shared, Shared) => true,
            _ => false,
        }
    }

    /// Does holding `self` satisfy a request for `other`? (Lattice ≥.)
    pub fn covers(self, other: LockMode) -> bool {
        use LockMode::*;
        matches!(
            (self, other),
            (Exclusive, _)
                | (
                    SharedIntentExclusive,
                    IntentShared | IntentExclusive | Shared | SharedIntentExclusive
                )
                | (Shared, IntentShared | Shared)
                | (IntentExclusive, IntentShared | IntentExclusive)
                | (IntentShared, IntentShared)
        )
    }

    /// Least upper bound in the mode lattice — the mode a holder of `self`
    /// must hold after also being granted `other`. The only incomparable
    /// pair is `{S, IX}`, whose join is `SIX`.
    pub fn lub(self, other: LockMode) -> LockMode {
        use LockMode::*;
        if self.covers(other) {
            self
        } else if other.covers(self) {
            other
        } else {
            debug_assert!(matches!(
                (self, other),
                (Shared, IntentExclusive) | (IntentExclusive, Shared)
            ));
            SharedIntentExclusive
        }
    }

    /// The table-level intention mode announcing a key-level `self`.
    pub fn intention(self) -> LockMode {
        use LockMode::*;
        match self {
            IntentShared | Shared => IntentShared,
            IntentExclusive | SharedIntentExclusive | Exclusive => IntentExclusive,
        }
    }

    /// Short diagnostic label (IS/IX/S/SIX/X).
    pub fn label(self) -> &'static str {
        use LockMode::*;
        match self {
            IntentShared => "IS",
            IntentExclusive => "IX",
            Shared => "S",
            SharedIntentExclusive => "SIX",
            Exclusive => "X",
        }
    }
}

/// Separator between a table name and its key-granular sub-resources.
pub const KEY_SEP: char = '#';

/// Encode the key-granular resource name for value `key` of `column` under
/// `table`: `table#column=key`.
pub fn key_resource(table: &str, column: &str, key: &str) -> String {
    format!("{table}{KEY_SEP}{column}={key}")
}

/// True when `res` names a key-granular resource (vs a whole table).
pub fn is_key_resource(res: &str) -> bool {
    res.contains(KEY_SEP)
}

/// The table component of a resource name (identity for table resources).
pub fn resource_table(res: &str) -> &str {
    res.split(KEY_SEP).next().unwrap_or(res)
}

/// Lock-acquisition failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockError {
    /// Granting the request would create a waits-for cycle; the requester
    /// must abort (strict 2PL victim = newcomer).
    Deadlock,
    /// `try_lock` could not grant immediately.
    WouldBlock,
    /// The wait exceeded its budget (real-time lock-wait timeout; in tests
    /// the budget is decided by an injected fault). The requester aborts.
    Timeout,
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockError::Deadlock => f.write_str("deadlock detected; transaction chosen as victim"),
            LockError::WouldBlock => f.write_str("lock unavailable"),
            LockError::Timeout => f.write_str("lock wait timed out"),
        }
    }
}

impl std::error::Error for LockError {}

#[derive(Debug, Default)]
struct ResourceState {
    /// Current holders with their strongest mode.
    holders: HashMap<TxnId, LockMode>,
    /// FIFO wait queue.
    waiters: VecDeque<(TxnId, LockMode)>,
}

impl ResourceState {
    /// Is `mode` compatible with every holder other than `txn` itself?
    fn compatible(&self, txn: TxnId, mode: LockMode) -> bool {
        self.holders
            .iter()
            .all(|(t, m)| *t == txn || m.compatible_with(mode))
    }

    /// The mode `txn` would hold after being granted `mode` (upgrade join).
    fn grant_target(&self, txn: TxnId, mode: LockMode) -> LockMode {
        match self.holders.get(&txn) {
            Some(held) => held.lub(mode),
            None => mode,
        }
    }
}

#[derive(Debug, Default)]
struct LmState {
    resources: HashMap<String, ResourceState>,
    /// txn -> resource it is currently waiting on.
    waiting_on: HashMap<TxnId, String>,
}

impl LmState {
    /// Would `txn` waiting on `res` close a cycle in the waits-for graph?
    fn would_deadlock(&self, txn: TxnId, res: &str) -> bool {
        // Edge: waiter -> each holder of the resource it waits on.
        // DFS from the holders of `res`, looking for `txn`.
        let mut stack: Vec<TxnId> = Vec::new();
        if let Some(r) = self.resources.get(res) {
            stack.extend(r.holders.keys().copied().filter(|t| *t != txn));
        }
        let mut seen: HashSet<TxnId> = stack.iter().copied().collect();
        while let Some(t) = stack.pop() {
            if t == txn {
                return true;
            }
            if let Some(waits) = self.waiting_on.get(&t) {
                if let Some(r) = self.resources.get(waits) {
                    for h in r.holders.keys() {
                        if *h == txn {
                            return true;
                        }
                        if seen.insert(*h) {
                            stack.push(*h);
                        }
                    }
                }
            }
        }
        false
    }

    /// Grant any waiters at the head of `res`'s queue that are now
    /// compatible (FIFO, but multiple compatible shared requests drain
    /// together).
    fn promote_waiters(&mut self, res: &str) {
        let Some(r) = self.resources.get_mut(res) else {
            return;
        };
        let mut promoted = Vec::new();
        while let Some(&(txn, mode)) = r.waiters.front() {
            let target = r.grant_target(txn, mode);
            if r.compatible(txn, target) {
                r.waiters.pop_front();
                r.holders.insert(txn, target);
                promoted.push(txn);
            } else {
                break;
            }
        }
        for t in promoted {
            self.waiting_on.remove(&t);
        }
    }
}

/// The lock manager.
///
/// ```
/// use strip_txn::{LockManager, LockMode, TxnId};
///
/// let lm = LockManager::new();
/// lm.lock(TxnId(1), "stocks", LockMode::Shared).unwrap();
/// lm.lock(TxnId(2), "stocks", LockMode::Shared).unwrap(); // S/S compatible
/// assert!(lm.try_lock(TxnId(3), "stocks", LockMode::Exclusive).is_err());
/// lm.release_all(TxnId(1));
/// lm.release_all(TxnId(2));
/// lm.try_lock(TxnId(3), "stocks", LockMode::Exclusive).unwrap();
/// ```
#[derive(Default)]
pub struct LockManager {
    state: Mutex<LmState>,
    cv: Condvar,
    injector: parking_lot::RwLock<crate::fault::InjectorHandle>,
}

impl fmt::Debug for LockManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LockManager")
            .field("state", &self.state)
            .finish_non_exhaustive()
    }
}

impl LockManager {
    /// New empty lock manager.
    pub fn new() -> LockManager {
        LockManager::default()
    }

    /// Install a fault injector consulted at `LockAcquire` whenever a
    /// request is about to wait: a `Timeout` decision fails the request
    /// instead of queueing it.
    pub fn set_injector(&self, injector: crate::fault::InjectorHandle) {
        *self.injector.write() = injector;
    }

    /// Acquire `mode` on `res` for `txn`, blocking until granted.
    /// Returns `Err(Deadlock)` if waiting would close a waits-for cycle, or
    /// `Err(Timeout)` if an injected lock-wait timeout fires.
    pub fn lock(&self, txn: TxnId, res: &str, mode: LockMode) -> Result<(), LockError> {
        let mut st = self.state.lock();
        loop {
            let r = st.resources.entry(res.to_string()).or_default();
            // Re-entrant / already-held-in-sufficient-mode?
            if let Some(held) = r.holders.get(&txn) {
                if held.covers(mode) {
                    return Ok(());
                }
            }
            // Grant immediately if the post-grant mode (the lattice join for
            // upgrades) is compatible AND no earlier waiter would be starved
            // (FIFO fairness: only bypass the queue if it is empty or we are
            // upgrading).
            let upgrading = r.holders.contains_key(&txn);
            let target = r.grant_target(txn, mode);
            if r.compatible(txn, target) && (r.waiters.is_empty() || upgrading) {
                r.holders.insert(txn, target);
                return Ok(());
            }
            // Must wait: check for deadlock first, then give an injected
            // timeout the chance to fail the wait before it starts.
            if st.would_deadlock(txn, res) {
                return Err(LockError::Deadlock);
            }
            let injected = crate::fault::decide(
                &self.injector.read(),
                crate::fault::FaultPoint::LockAcquire,
                res,
            );
            if injected == crate::fault::FaultDecision::Timeout {
                return Err(LockError::Timeout);
            }
            {
                let r = st.resources.get_mut(res).expect("created above");
                // Upgrades queue at the front so a sole S-holder upgrading
                // cannot be starved by later requests.
                if r.holders.contains_key(&txn) {
                    r.waiters.push_front((txn, mode));
                } else {
                    r.waiters.push_back((txn, mode));
                }
            }
            st.waiting_on.insert(txn, res.to_string());
            self.cv.wait(&mut st);
            // If we are no longer registered as waiting, we were promoted.
            if !st.waiting_on.contains_key(&txn) {
                let r = st.resources.get(res).expect("resource exists");
                if r.holders.contains_key(&txn) {
                    // Promoted with at least the requested strength?
                    if r.holders[&txn].covers(mode) {
                        return Ok(());
                    }
                }
                // Spurious wakeup after release_all (abort path): retry.
            } else {
                // Spurious wakeup while still queued: de-queue and retry the
                // whole protocol to re-check deadlock.
                let r = st.resources.get_mut(res).expect("resource exists");
                r.waiters.retain(|(t, _)| *t != txn);
                st.waiting_on.remove(&txn);
            }
        }
    }

    /// Non-blocking acquire.
    pub fn try_lock(&self, txn: TxnId, res: &str, mode: LockMode) -> Result<(), LockError> {
        let mut st = self.state.lock();
        let r = st.resources.entry(res.to_string()).or_default();
        if let Some(held) = r.holders.get(&txn) {
            if held.covers(mode) {
                return Ok(());
            }
        }
        let upgrading = r.holders.contains_key(&txn);
        let target = r.grant_target(txn, mode);
        if r.compatible(txn, target) && (r.waiters.is_empty() || upgrading) {
            r.holders.insert(txn, target);
            Ok(())
        } else {
            Err(LockError::WouldBlock)
        }
    }

    /// Hierarchical acquire: take the matching intention mode on `table`,
    /// then `mode` on the key resource `table#column=key`. Blocking, with
    /// the same deadlock/timeout semantics as [`LockManager::lock`]. The
    /// intention-before-key order is what keeps a concurrent table-granular
    /// S/X (full scan, DDL) correctly serialized against key-granular work.
    pub fn lock_key(
        &self,
        txn: TxnId,
        table: &str,
        column: &str,
        key: &str,
        mode: LockMode,
    ) -> Result<(), LockError> {
        self.lock(txn, table, mode.intention())?;
        self.lock(txn, &key_resource(table, column, key), mode)
    }

    /// Non-blocking [`LockManager::lock_key`]. A `WouldBlock` on the key
    /// leaves the (harmless, compatible-with-everything-but-X) intention
    /// mode held; callers abort via [`LockManager::release_all`] anyway.
    pub fn try_lock_key(
        &self,
        txn: TxnId,
        table: &str,
        column: &str,
        key: &str,
        mode: LockMode,
    ) -> Result<(), LockError> {
        self.try_lock(txn, table, mode.intention())?;
        self.try_lock(txn, &key_resource(table, column, key), mode)
    }

    /// Release every lock held (and any pending waits) by `txn` — the
    /// strict-2PL commit/abort action.
    pub fn release_all(&self, txn: TxnId) {
        let mut st = self.state.lock();
        st.waiting_on.remove(&txn);
        let resources: Vec<String> = st.resources.keys().cloned().collect();
        for res in resources {
            let r = st.resources.get_mut(&res).expect("listed");
            let held = r.holders.remove(&txn).is_some();
            r.waiters.retain(|(t, _)| *t != txn);
            if held {
                st.promote_waiters(&res);
            }
            // Garbage-collect empty entries to keep the map small.
            let r = st.resources.get(&res).expect("listed");
            if r.holders.is_empty() && r.waiters.is_empty() {
                st.resources.remove(&res);
            }
        }
        drop(st);
        self.cv.notify_all();
    }

    /// Locks currently held by `txn` (test/diagnostic aid).
    pub fn held_by(&self, txn: TxnId) -> Vec<(String, LockMode)> {
        let st = self.state.lock();
        let mut v: Vec<(String, LockMode)> = st
            .resources
            .iter()
            .filter_map(|(res, r)| r.holders.get(&txn).map(|m| (res.clone(), *m)))
            .collect();
        v.sort();
        v
    }

    /// Number of transactions currently blocked.
    pub fn blocked_count(&self) -> usize {
        self.state.lock().waiting_on.len()
    }

    /// Total (transaction, resource) holdings across the whole manager.
    /// Zero at any quiescent point — a nonzero value with no transaction
    /// running means a commit/abort path leaked a lock.
    pub fn held_count(&self) -> usize {
        self.state
            .lock()
            .resources
            .values()
            .map(|r| r.holders.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn shared_locks_coexist() {
        let lm = LockManager::new();
        lm.lock(TxnId(1), "t", LockMode::Shared).unwrap();
        lm.lock(TxnId(2), "t", LockMode::Shared).unwrap();
        assert_eq!(lm.held_by(TxnId(1)).len(), 1);
        assert_eq!(lm.held_by(TxnId(2)).len(), 1);
    }

    #[test]
    fn exclusive_conflicts_with_shared() {
        let lm = LockManager::new();
        lm.lock(TxnId(1), "t", LockMode::Shared).unwrap();
        assert_eq!(
            lm.try_lock(TxnId(2), "t", LockMode::Exclusive),
            Err(LockError::WouldBlock)
        );
        lm.release_all(TxnId(1));
        lm.try_lock(TxnId(2), "t", LockMode::Exclusive).unwrap();
    }

    #[test]
    fn reentrant_and_upgrade() {
        let lm = LockManager::new();
        lm.lock(TxnId(1), "t", LockMode::Shared).unwrap();
        lm.lock(TxnId(1), "t", LockMode::Shared).unwrap();
        // Sole shared holder upgrades in place.
        lm.lock(TxnId(1), "t", LockMode::Exclusive).unwrap();
        assert_eq!(
            lm.held_by(TxnId(1)),
            vec![("t".to_string(), LockMode::Exclusive)]
        );
        // X implies S.
        lm.lock(TxnId(1), "t", LockMode::Shared).unwrap();
    }

    #[test]
    fn blocking_grant_on_release() {
        let lm = Arc::new(LockManager::new());
        lm.lock(TxnId(1), "t", LockMode::Exclusive).unwrap();
        let lm2 = lm.clone();
        let h = thread::spawn(move || {
            lm2.lock(TxnId(2), "t", LockMode::Exclusive).unwrap();
            lm2.release_all(TxnId(2));
        });
        thread::sleep(Duration::from_millis(50));
        assert_eq!(lm.blocked_count(), 1);
        lm.release_all(TxnId(1));
        h.join().unwrap();
        assert_eq!(lm.blocked_count(), 0);
    }

    #[test]
    fn two_txn_deadlock_detected() {
        let lm = Arc::new(LockManager::new());
        lm.lock(TxnId(1), "a", LockMode::Exclusive).unwrap();
        lm.lock(TxnId(2), "b", LockMode::Exclusive).unwrap();
        let lm2 = lm.clone();
        // T1 waits for b (held by T2).
        let h = thread::spawn(move || {
            let r = lm2.lock(TxnId(1), "b", LockMode::Exclusive);
            // T1 may either be granted after T2's deadlock-abort or detect
            // the cycle itself depending on timing; both are acceptable.
            if r.is_ok() {
                lm2.release_all(TxnId(1));
            }
            r
        });
        thread::sleep(Duration::from_millis(50));
        // T2 requesting a closes the cycle: must be denied with Deadlock.
        let r2 = lm.lock(TxnId(2), "a", LockMode::Exclusive);
        assert_eq!(r2, Err(LockError::Deadlock));
        lm.release_all(TxnId(2)); // abort victim
        let r1 = h.join().unwrap();
        assert!(r1.is_ok());
    }

    #[test]
    fn fifo_fairness_no_reader_starvation_of_writer() {
        let lm = Arc::new(LockManager::new());
        lm.lock(TxnId(1), "t", LockMode::Shared).unwrap();
        // Writer queues.
        let lm2 = lm.clone();
        let writer = thread::spawn(move || {
            lm2.lock(TxnId(2), "t", LockMode::Exclusive).unwrap();
            lm2.release_all(TxnId(2));
        });
        thread::sleep(Duration::from_millis(30));
        // A new reader must NOT jump the queued writer.
        assert_eq!(
            lm.try_lock(TxnId(3), "t", LockMode::Shared),
            Err(LockError::WouldBlock)
        );
        lm.release_all(TxnId(1));
        writer.join().unwrap();
    }

    #[test]
    fn compatibility_matrix_is_the_textbook_one() {
        use LockMode::*;
        let modes = [
            IntentShared,
            IntentExclusive,
            Shared,
            SharedIntentExclusive,
            Exclusive,
        ];
        // Row-major over (IS, IX, S, SIX, X) × (IS, IX, S, SIX, X).
        let expect = [
            [true, true, true, true, false],
            [true, true, false, false, false],
            [true, false, true, false, false],
            [true, false, false, false, false],
            [false, false, false, false, false],
        ];
        for (i, a) in modes.iter().enumerate() {
            for (j, b) in modes.iter().enumerate() {
                assert_eq!(
                    a.compatible_with(*b),
                    expect[i][j],
                    "compat({}, {})",
                    a.label(),
                    b.label()
                );
                // Symmetry.
                assert_eq!(a.compatible_with(*b), b.compatible_with(*a));
            }
        }
    }

    #[test]
    fn lattice_laws_hold() {
        use LockMode::*;
        let modes = [
            IntentShared,
            IntentExclusive,
            Shared,
            SharedIntentExclusive,
            Exclusive,
        ];
        for a in modes {
            assert!(a.covers(a), "{} covers itself", a.label());
            for b in modes {
                let j = a.lub(b);
                assert_eq!(j, b.lub(a), "lub commutative");
                assert!(j.covers(a) && j.covers(b), "lub is an upper bound");
                // Anything the join grants that `a` alone would not must be
                // attributable to `b` (no spurious strengthening beyond X).
                if a.covers(b) {
                    assert_eq!(j, a);
                }
            }
        }
        assert_eq!(Shared.lub(IntentExclusive), SharedIntentExclusive);
        assert_eq!(Shared.intention(), IntentShared);
        assert_eq!(Exclusive.intention(), IntentExclusive);
    }

    #[test]
    fn key_writers_on_distinct_keys_coexist() {
        let lm = LockManager::new();
        lm.lock_key(TxnId(1), "stocks", "symbol", "IBM", LockMode::Exclusive)
            .unwrap();
        lm.lock_key(TxnId(2), "stocks", "symbol", "HWP", LockMode::Exclusive)
            .unwrap();
        // Same key conflicts.
        assert_eq!(
            lm.try_lock_key(TxnId(3), "stocks", "symbol", "IBM", LockMode::Exclusive),
            Err(LockError::WouldBlock)
        );
        // A table-granular scan (S) conflicts with the IX holders.
        assert_eq!(
            lm.try_lock(TxnId(3), "stocks", LockMode::Shared),
            Err(LockError::WouldBlock)
        );
        lm.release_all(TxnId(1));
        lm.release_all(TxnId(2));
        lm.release_all(TxnId(3));
        assert_eq!(lm.held_count(), 0);
    }

    #[test]
    fn lock_key_holds_intention_on_the_table_first() {
        let lm = LockManager::new();
        lm.lock_key(TxnId(1), "stocks", "symbol", "IBM", LockMode::Shared)
            .unwrap();
        let held = lm.held_by(TxnId(1));
        assert_eq!(
            held,
            vec![
                ("stocks".to_string(), LockMode::IntentShared),
                (key_resource("stocks", "symbol", "IBM"), LockMode::Shared),
            ]
        );
        // Writing another key joins the table mode to IX.
        lm.lock_key(TxnId(1), "stocks", "symbol", "HWP", LockMode::Exclusive)
            .unwrap();
        assert!(lm
            .held_by(TxnId(1))
            .contains(&("stocks".to_string(), LockMode::IntentExclusive)));
    }

    #[test]
    fn scan_then_keyed_write_upgrades_table_to_six() {
        let lm = LockManager::new();
        lm.lock(TxnId(1), "stocks", LockMode::Shared).unwrap();
        lm.lock_key(TxnId(1), "stocks", "symbol", "IBM", LockMode::Exclusive)
            .unwrap();
        assert!(lm
            .held_by(TxnId(1))
            .contains(&("stocks".to_string(), LockMode::SharedIntentExclusive)));
        // SIX keeps readers of individual keys out of S? No: SIX admits IS.
        lm.lock_key(TxnId(2), "stocks", "symbol", "HWP", LockMode::Shared)
            .unwrap();
        // ...but a second table-granular reader is refused (SIX vs S).
        assert_eq!(
            lm.try_lock(TxnId(3), "stocks", LockMode::Shared),
            Err(LockError::WouldBlock)
        );
    }

    #[test]
    fn cross_granularity_deadlock_detected() {
        let lm = Arc::new(LockManager::new());
        lm.lock_key(TxnId(1), "stocks", "symbol", "IBM", LockMode::Exclusive)
            .unwrap();
        lm.lock_key(TxnId(2), "stocks", "symbol", "HWP", LockMode::Exclusive)
            .unwrap();
        let lm2 = lm.clone();
        let h = thread::spawn(move || {
            let r = lm2.lock_key(TxnId(1), "stocks", "symbol", "HWP", LockMode::Exclusive);
            if r.is_ok() {
                lm2.release_all(TxnId(1));
            }
            r
        });
        thread::sleep(Duration::from_millis(50));
        // T2 requesting T1's key closes an IBM↔HWP cycle across key
        // resources; the requester is the victim.
        let r2 = lm.lock_key(TxnId(2), "stocks", "symbol", "IBM", LockMode::Exclusive);
        assert_eq!(r2, Err(LockError::Deadlock));
        lm.release_all(TxnId(2));
        assert!(h.join().unwrap().is_ok());
    }

    #[test]
    fn table_x_waits_for_all_key_writers() {
        let lm = Arc::new(LockManager::new());
        lm.lock_key(TxnId(1), "stocks", "symbol", "IBM", LockMode::Exclusive)
            .unwrap();
        let lm2 = lm.clone();
        let ddl = thread::spawn(move || {
            lm2.lock(TxnId(9), "stocks", LockMode::Exclusive).unwrap();
            lm2.release_all(TxnId(9));
        });
        thread::sleep(Duration::from_millis(30));
        assert_eq!(lm.blocked_count(), 1);
        // FIFO: a fresh key writer must not overtake the queued table X.
        assert_eq!(
            lm.try_lock(TxnId(3), "stocks", LockMode::IntentExclusive),
            Err(LockError::WouldBlock)
        );
        lm.release_all(TxnId(1));
        ddl.join().unwrap();
        assert_eq!(lm.held_count(), 0);
    }

    #[test]
    fn release_all_is_idempotent_and_scoped() {
        let lm = LockManager::new();
        lm.lock(TxnId(1), "a", LockMode::Shared).unwrap();
        lm.lock(TxnId(1), "b", LockMode::Exclusive).unwrap();
        lm.lock(TxnId(2), "a", LockMode::Shared).unwrap();
        lm.release_all(TxnId(1));
        lm.release_all(TxnId(1));
        assert!(lm.held_by(TxnId(1)).is_empty());
        assert_eq!(lm.held_by(TxnId(2)).len(), 1);
    }
}
