//! Per-transaction operation log.
//!
//! The log serves two purposes, exactly as in STRIP (§6.3):
//!
//! 1. **Rule processing** — at commit, "the transaction's log is scanned to
//!    see which events have occurred"; transition tables are built during
//!    the pass. Each entry carries the `execute_order` sequence number the
//!    paper adds to transition tables.
//! 2. **Abort** — entries are undone in reverse order.
//!
//! Because standard tables are versioned, `Update` entries pin both record
//! versions with `Arc`s: no value copying, and the old version stays alive
//! for transition/bound tables (§6.1).

use strip_storage::{RecordRef, RowId};

/// One logged change.
#[derive(Debug, Clone)]
pub enum LogEntry {
    Insert {
        table: String,
        row: RowId,
        new: RecordRef,
        execute_order: u32,
    },
    Delete {
        table: String,
        row: RowId,
        old: RecordRef,
        execute_order: u32,
    },
    Update {
        table: String,
        row: RowId,
        old: RecordRef,
        new: RecordRef,
        execute_order: u32,
    },
}

impl LogEntry {
    /// The table this entry touches.
    pub fn table(&self) -> &str {
        match self {
            LogEntry::Insert { table, .. }
            | LogEntry::Delete { table, .. }
            | LogEntry::Update { table, .. } => table,
        }
    }

    /// The intra-transaction sequence number.
    pub fn execute_order(&self) -> u32 {
        match self {
            LogEntry::Insert { execute_order, .. }
            | LogEntry::Delete { execute_order, .. }
            | LogEntry::Update { execute_order, .. } => *execute_order,
        }
    }
}

/// The log of one transaction.
#[derive(Debug, Default)]
pub struct TxnLog {
    entries: Vec<LogEntry>,
    next_order: u32,
}

impl TxnLog {
    /// New empty log.
    pub fn new() -> TxnLog {
        TxnLog::default()
    }

    /// Next `execute_order` value (then increments). An update logs one
    /// entry but the old/new transition tuples share the number, which the
    /// paper requires for `new.execute_order = old.execute_order` joins.
    fn next(&mut self) -> u32 {
        let n = self.next_order;
        self.next_order += 1;
        n
    }

    /// Record an insert.
    pub fn log_insert(&mut self, table: &str, row: RowId, new: RecordRef) {
        let execute_order = self.next();
        self.entries.push(LogEntry::Insert {
            table: table.to_string(),
            row,
            new,
            execute_order,
        });
    }

    /// Record a delete.
    pub fn log_delete(&mut self, table: &str, row: RowId, old: RecordRef) {
        let execute_order = self.next();
        self.entries.push(LogEntry::Delete {
            table: table.to_string(),
            row,
            old,
            execute_order,
        });
    }

    /// Record an update (old and new versions pinned).
    pub fn log_update(&mut self, table: &str, row: RowId, old: RecordRef, new: RecordRef) {
        let execute_order = self.next();
        self.entries.push(LogEntry::Update {
            table: table.to_string(),
            row,
            old,
            new,
            execute_order,
        });
    }

    /// All entries, in execution order.
    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }

    /// Drain entries in **reverse** order for undo.
    pub fn drain_for_undo(&mut self) -> Vec<LogEntry> {
        let mut v = std::mem::take(&mut self.entries);
        v.reverse();
        v
    }

    /// Number of logged changes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing was logged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strip_storage::{Schema, StandardTable};

    #[test]
    fn execute_order_is_sequential_and_shared_per_update() {
        let mut t = StandardTable::new(
            "t",
            Schema::of(&[("x", strip_storage::DataType::Int)]).into_ref(),
        );
        let mut log = TxnLog::new();
        let (id, rec) = t.insert(vec![1i64.into()]).unwrap();
        log.log_insert("t", id, rec);
        let (old, new) = t.update(id, vec![2i64.into()]).unwrap();
        log.log_update("t", id, old, new);
        let old = t.delete(id).unwrap();
        log.log_delete("t", id, old);

        assert_eq!(log.len(), 3);
        let orders: Vec<u32> = log.entries().iter().map(|e| e.execute_order()).collect();
        assert_eq!(orders, vec![0, 1, 2]);
        assert!(matches!(log.entries()[1], LogEntry::Update { .. }));
    }

    #[test]
    fn no_net_effect_reduction() {
        // Insert-then-delete of the same row keeps BOTH entries (paper §2:
        // "STRIP does not reduce the transition tables to net effect").
        let mut t = StandardTable::new(
            "t",
            Schema::of(&[("x", strip_storage::DataType::Int)]).into_ref(),
        );
        let mut log = TxnLog::new();
        let (id, rec) = t.insert(vec![7i64.into()]).unwrap();
        log.log_insert("t", id, rec);
        let old = t.delete(id).unwrap();
        log.log_delete("t", id, old);
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn undo_order_is_reversed() {
        let mut t = StandardTable::new(
            "t",
            Schema::of(&[("x", strip_storage::DataType::Int)]).into_ref(),
        );
        let mut log = TxnLog::new();
        let (a, ra) = t.insert(vec![1i64.into()]).unwrap();
        log.log_insert("t", a, ra);
        let (b, rb) = t.insert(vec![2i64.into()]).unwrap();
        log.log_insert("t", b, rb);
        let undo = log.drain_for_undo();
        assert_eq!(undo.len(), 2);
        assert_eq!(undo[0].execute_order(), 1);
        assert_eq!(undo[1].execute_order(), 0);
        assert!(log.is_empty());
    }

    #[test]
    fn update_pins_old_version() {
        let mut t = StandardTable::new(
            "t",
            Schema::of(&[("x", strip_storage::DataType::Int)]).into_ref(),
        );
        let mut log = TxnLog::new();
        let (id, rec) = t.insert(vec![1i64.into()]).unwrap();
        log.log_insert("t", id, rec);
        let (old, new) = t.update(id, vec![2i64.into()]).unwrap();
        log.log_update("t", id, old, new);
        // The old version is readable through the log even after the table
        // has moved on.
        let LogEntry::Update { old, .. } = &log.entries()[1] else {
            panic!()
        };
        assert_eq!(old.get(0).as_i64(), Some(1));
    }
}
