//! Per-transaction operation log.
//!
//! The log serves two purposes, exactly as in STRIP (§6.3):
//!
//! 1. **Rule processing** — at commit, "the transaction's log is scanned to
//!    see which events have occurred"; transition tables are built during
//!    the pass. Each entry carries the `execute_order` sequence number the
//!    paper adds to transition tables.
//! 2. **Abort** — entries are undone in reverse order.
//!
//! Because standard tables are versioned, `Update` entries pin both record
//! versions with `Arc`s: no value copying, and the old version stays alive
//! for transition/bound tables (§6.1).

use crate::fault::{decide, FaultDecision, FaultPoint, InjectorHandle};
use std::collections::{BTreeMap, HashMap};
use strip_storage::{RecordRef, RowId, Value};

/// One logged change.
#[derive(Debug, Clone)]
pub enum LogEntry {
    Insert {
        table: String,
        row: RowId,
        new: RecordRef,
        execute_order: u32,
    },
    Delete {
        table: String,
        row: RowId,
        old: RecordRef,
        execute_order: u32,
    },
    Update {
        table: String,
        row: RowId,
        old: RecordRef,
        new: RecordRef,
        execute_order: u32,
    },
}

impl LogEntry {
    /// The table this entry touches.
    pub fn table(&self) -> &str {
        match self {
            LogEntry::Insert { table, .. }
            | LogEntry::Delete { table, .. }
            | LogEntry::Update { table, .. } => table,
        }
    }

    /// The intra-transaction sequence number.
    pub fn execute_order(&self) -> u32 {
        match self {
            LogEntry::Insert { execute_order, .. }
            | LogEntry::Delete { execute_order, .. }
            | LogEntry::Update { execute_order, .. } => *execute_order,
        }
    }
}

/// The log of one transaction.
#[derive(Debug, Default)]
pub struct TxnLog {
    entries: Vec<LogEntry>,
    next_order: u32,
}

impl TxnLog {
    /// New empty log.
    pub fn new() -> TxnLog {
        TxnLog::default()
    }

    /// Next `execute_order` value (then increments). An update logs one
    /// entry but the old/new transition tuples share the number, which the
    /// paper requires for `new.execute_order = old.execute_order` joins.
    fn next(&mut self) -> u32 {
        let n = self.next_order;
        self.next_order += 1;
        n
    }

    /// Record an insert.
    pub fn log_insert(&mut self, table: &str, row: RowId, new: RecordRef) {
        let execute_order = self.next();
        self.entries.push(LogEntry::Insert {
            table: table.to_string(),
            row,
            new,
            execute_order,
        });
    }

    /// Record a delete.
    pub fn log_delete(&mut self, table: &str, row: RowId, old: RecordRef) {
        let execute_order = self.next();
        self.entries.push(LogEntry::Delete {
            table: table.to_string(),
            row,
            old,
            execute_order,
        });
    }

    /// Record an update (old and new versions pinned).
    pub fn log_update(&mut self, table: &str, row: RowId, old: RecordRef, new: RecordRef) {
        let execute_order = self.next();
        self.entries.push(LogEntry::Update {
            table: table.to_string(),
            row,
            old,
            new,
            execute_order,
        });
    }

    /// All entries, in execution order.
    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }

    /// Drain entries in **reverse** order for undo.
    pub fn drain_for_undo(&mut self) -> Vec<LogEntry> {
        let mut v = std::mem::take(&mut self.entries);
        v.reverse();
        v
    }

    /// Number of logged changes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing was logged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Write-ahead log
// ---------------------------------------------------------------------------

/// WAL append failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalError {
    /// An injected crash fired at this append: the record (and for a crash
    /// at the commit point, the commit marker) was NOT written, and the log
    /// stops accepting writes.
    Crashed,
    /// The log already crashed earlier; nothing further is durable.
    Poisoned,
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Crashed => f.write_str("simulated crash during WAL write"),
            WalError::Poisoned => f.write_str("WAL is dead after a simulated crash"),
        }
    }
}

impl std::error::Error for WalError {}

// Payload tags. Redo-only WAL: updates carry the full new row image, so
// recovery never needs before-images.
const REC_INSERT: u8 = 1;
const REC_DELETE: u8 = 2;
const REC_UPDATE: u8 = 3;
const REC_COMMIT: u8 = 4;

/// FNV-1a 32-bit, the per-record checksum. Any single-byte corruption or
/// truncation of the tail record is detected and treated as a torn write.
fn crc32_fnv(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for b in bytes {
        h ^= *b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// An append-only redo log. Each record is framed
/// `[len: u32][crc: u32][payload]`; a transaction's operation records are
/// followed by a commit marker, and recovery redoes **only** transactions
/// whose marker survived — partial transactions at the tail are discarded,
/// giving atomicity and durability across a crash.
///
/// The log lives in memory: "crash" means the chaos driver stops using the
/// database object and rebuilds a fresh one from these bytes, which is
/// exactly the durability contract a file-backed WAL would have after the
/// kernel dropped un-fsynced pages.
#[derive(Default)]
pub struct Wal {
    buf: Vec<u8>,
    /// Byte offset just past the most recent commit marker. Bytes after
    /// this offset belong to transactions that were never acknowledged, so
    /// torn-tail corruption may only be applied beyond it.
    last_commit_end: usize,
    injector: InjectorHandle,
    poisoned: bool,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("len", &self.buf.len())
            .field("last_commit_end", &self.last_commit_end)
            .field("poisoned", &self.poisoned)
            .finish_non_exhaustive()
    }
}

impl Wal {
    /// New empty log with no fault injection.
    pub fn new() -> Wal {
        Wal::default()
    }

    /// New empty log consulting `injector` at `WalAppend` / `WalCommit`.
    pub fn with_injector(injector: InjectorHandle) -> Wal {
        Wal {
            injector,
            ..Wal::default()
        }
    }

    /// The raw log bytes (what a file would contain).
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Offset just past the last commit marker; see field docs.
    pub fn last_commit_end(&self) -> usize {
        self.last_commit_end
    }

    /// True once an injected crash has fired.
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    fn frame(&mut self, payload: &[u8]) {
        self.buf
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.buf
            .extend_from_slice(&crc32_fnv(payload).to_le_bytes());
        self.buf.extend_from_slice(payload);
    }

    fn op_payload(
        tag: u8,
        txn_id: u64,
        table: &str,
        row: RowId,
        values: Option<&[Value]>,
    ) -> Vec<u8> {
        let mut p = vec![tag];
        p.extend_from_slice(&txn_id.to_le_bytes());
        p.extend_from_slice(&(table.len() as u16).to_le_bytes());
        p.extend_from_slice(table.as_bytes());
        p.extend_from_slice(&row.as_u64().to_le_bytes());
        if let Some(vals) = values {
            p.extend_from_slice(&(vals.len() as u16).to_le_bytes());
            for v in vals {
                v.encode_into(&mut p);
            }
        }
        p
    }

    /// Append a whole committed transaction: one record per logged change,
    /// then the commit marker. On an injected crash the marker is never
    /// written, so recovery will discard the transaction.
    pub fn append_committed(&mut self, txn_id: u64, entries: &[LogEntry]) -> Result<(), WalError> {
        if self.poisoned {
            return Err(WalError::Poisoned);
        }
        for e in entries {
            if decide(&self.injector, FaultPoint::WalAppend, e.table()) == FaultDecision::Crash {
                self.poisoned = true;
                return Err(WalError::Crashed);
            }
            let payload = match e {
                LogEntry::Insert {
                    table, row, new, ..
                } => Self::op_payload(REC_INSERT, txn_id, table, *row, Some(new.values())),
                LogEntry::Delete { table, row, .. } => {
                    Self::op_payload(REC_DELETE, txn_id, table, *row, None)
                }
                LogEntry::Update {
                    table, row, new, ..
                } => Self::op_payload(REC_UPDATE, txn_id, table, *row, Some(new.values())),
            };
            self.frame(&payload);
        }
        // The durability point: losing the marker loses the transaction.
        let detail = format!("txn:{txn_id}");
        if decide(&self.injector, FaultPoint::WalCommit, &detail) == FaultDecision::Crash {
            self.poisoned = true;
            return Err(WalError::Crashed);
        }
        let mut p = vec![REC_COMMIT];
        p.extend_from_slice(&txn_id.to_le_bytes());
        self.frame(&p);
        self.last_commit_end = self.buf.len();
        Ok(())
    }

    /// Parse log bytes back into committed transactions. Scanning stops at
    /// the first torn record (short frame, checksum mismatch, or malformed
    /// payload) — everything before it is trusted, everything after is the
    /// crashed tail.
    pub fn recover(bytes: &[u8]) -> RecoveredState {
        let mut pending: HashMap<u64, WalTxn> = HashMap::new();
        let mut committed: Vec<WalTxn> = Vec::new();
        let mut pos = 0usize;
        let mut torn = false;
        while pos < bytes.len() {
            let Some(rec) = next_record(bytes, &mut pos) else {
                torn = true;
                break;
            };
            let Some((tag, txn_id, rest)) = rec.split_first().and_then(|(tag, rest)| {
                let id = u64::from_le_bytes(rest.get(..8)?.try_into().ok()?);
                Some((*tag, id, &rest[8..]))
            }) else {
                torn = true;
                break;
            };
            if tag == REC_COMMIT {
                // Marker: promote the pending ops (possibly none — an
                // empty transaction is still a valid commit).
                let t = pending.remove(&txn_id).unwrap_or(WalTxn {
                    txn_id,
                    ops: Vec::new(),
                });
                committed.push(t);
                continue;
            }
            let Some(op) = decode_op(tag, rest) else {
                torn = true;
                break;
            };
            pending
                .entry(txn_id)
                .or_insert(WalTxn {
                    txn_id,
                    ops: Vec::new(),
                })
                .ops
                .push(op);
        }
        let in_flight: Vec<u64> = {
            let mut v: Vec<u64> = pending.keys().copied().collect();
            v.sort_unstable();
            v
        };
        RecoveredState {
            txns: committed,
            torn_tail: torn,
            in_flight,
        }
    }
}

/// Pull one framed record out of `bytes`, verifying length and checksum.
fn next_record<'a>(bytes: &'a [u8], pos: &mut usize) -> Option<&'a [u8]> {
    let hdr = bytes.get(*pos..*pos + 8)?;
    let len = u32::from_le_bytes(hdr[..4].try_into().ok()?) as usize;
    let crc = u32::from_le_bytes(hdr[4..8].try_into().ok()?);
    let payload = bytes.get(*pos + 8..*pos + 8 + len)?;
    if crc32_fnv(payload) != crc {
        return None;
    }
    *pos += 8 + len;
    Some(payload)
}

fn decode_op(tag: u8, rest: &[u8]) -> Option<WalOp> {
    let tlen = u16::from_le_bytes(rest.get(..2)?.try_into().ok()?) as usize;
    let table = std::str::from_utf8(rest.get(2..2 + tlen)?)
        .ok()?
        .to_string();
    let mut pos = 2 + tlen;
    let row = u64::from_le_bytes(rest.get(pos..pos + 8)?.try_into().ok()?);
    pos += 8;
    match tag {
        REC_DELETE => Some(WalOp::Delete { table, row }),
        REC_INSERT | REC_UPDATE => {
            let n = u16::from_le_bytes(rest.get(pos..pos + 2)?.try_into().ok()?) as usize;
            pos += 2;
            let mut values = Vec::with_capacity(n);
            for _ in 0..n {
                values.push(Value::decode_from(rest, &mut pos)?);
            }
            if tag == REC_INSERT {
                Some(WalOp::Insert { table, row, values })
            } else {
                Some(WalOp::Update { table, row, values })
            }
        }
        _ => None,
    }
}

/// One redo operation recovered from the WAL. `row` is the packed
/// [`RowId`] of the original slot, used only as a replay key.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    Insert {
        table: String,
        row: u64,
        values: Vec<Value>,
    },
    Update {
        table: String,
        row: u64,
        values: Vec<Value>,
    },
    Delete {
        table: String,
        row: u64,
    },
}

/// One committed transaction recovered from the WAL, in commit order.
#[derive(Debug, Clone, PartialEq)]
pub struct WalTxn {
    pub txn_id: u64,
    pub ops: Vec<WalOp>,
}

/// Output of [`Wal::recover`].
#[derive(Debug, Clone)]
pub struct RecoveredState {
    /// Committed transactions in marker (= commit) order.
    pub txns: Vec<WalTxn>,
    /// True if scanning stopped at a torn/corrupt record.
    pub torn_tail: bool,
    /// Transactions with ops in the readable prefix but no commit marker —
    /// in flight at the crash; their ops are discarded.
    pub in_flight: Vec<u64>,
}

impl RecoveredState {
    /// Replay all committed transactions into final per-table row images,
    /// keyed by the original row id (deterministic iteration order).
    pub fn tables(&self) -> BTreeMap<String, BTreeMap<u64, Vec<Value>>> {
        let mut out: BTreeMap<String, BTreeMap<u64, Vec<Value>>> = BTreeMap::new();
        for t in &self.txns {
            for op in &t.ops {
                match op {
                    WalOp::Insert { table, row, values } | WalOp::Update { table, row, values } => {
                        out.entry(table.clone())
                            .or_default()
                            .insert(*row, values.clone());
                    }
                    WalOp::Delete { table, row } => {
                        out.entry(table.clone()).or_default().remove(row);
                    }
                }
            }
        }
        out
    }

    /// Ids of committed transactions, in commit order.
    pub fn committed_ids(&self) -> Vec<u64> {
        self.txns.iter().map(|t| t.txn_id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strip_storage::{Schema, StandardTable};

    #[test]
    fn execute_order_is_sequential_and_shared_per_update() {
        let t = StandardTable::new(
            "t",
            Schema::of(&[("x", strip_storage::DataType::Int)]).into_ref(),
        );
        let mut log = TxnLog::new();
        let (id, rec) = t.insert(vec![1i64.into()]).unwrap();
        log.log_insert("t", id, rec);
        let (old, new) = t.update(id, vec![2i64.into()]).unwrap();
        log.log_update("t", id, old, new);
        let old = t.delete(id).unwrap();
        log.log_delete("t", id, old);

        assert_eq!(log.len(), 3);
        let orders: Vec<u32> = log.entries().iter().map(|e| e.execute_order()).collect();
        assert_eq!(orders, vec![0, 1, 2]);
        assert!(matches!(log.entries()[1], LogEntry::Update { .. }));
    }

    #[test]
    fn no_net_effect_reduction() {
        // Insert-then-delete of the same row keeps BOTH entries (paper §2:
        // "STRIP does not reduce the transition tables to net effect").
        let t = StandardTable::new(
            "t",
            Schema::of(&[("x", strip_storage::DataType::Int)]).into_ref(),
        );
        let mut log = TxnLog::new();
        let (id, rec) = t.insert(vec![7i64.into()]).unwrap();
        log.log_insert("t", id, rec);
        let old = t.delete(id).unwrap();
        log.log_delete("t", id, old);
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn undo_order_is_reversed() {
        let t = StandardTable::new(
            "t",
            Schema::of(&[("x", strip_storage::DataType::Int)]).into_ref(),
        );
        let mut log = TxnLog::new();
        let (a, ra) = t.insert(vec![1i64.into()]).unwrap();
        log.log_insert("t", a, ra);
        let (b, rb) = t.insert(vec![2i64.into()]).unwrap();
        log.log_insert("t", b, rb);
        let undo = log.drain_for_undo();
        assert_eq!(undo.len(), 2);
        assert_eq!(undo[0].execute_order(), 1);
        assert_eq!(undo[1].execute_order(), 0);
        assert!(log.is_empty());
    }

    #[test]
    fn update_pins_old_version() {
        let t = StandardTable::new(
            "t",
            Schema::of(&[("x", strip_storage::DataType::Int)]).into_ref(),
        );
        let mut log = TxnLog::new();
        let (id, rec) = t.insert(vec![1i64.into()]).unwrap();
        log.log_insert("t", id, rec);
        let (old, new) = t.update(id, vec![2i64.into()]).unwrap();
        log.log_update("t", id, old, new);
        // The old version is readable through the log even after the table
        // has moved on.
        let LogEntry::Update { old, .. } = &log.entries()[1] else {
            panic!()
        };
        assert_eq!(old.get(0).as_i64(), Some(1));
    }
}
