//! # strip-txn
//!
//! Task/transaction management for the STRIP reproduction (paper §4.4, §6.2).
//!
//! * [`cost`] — the Table-1 calibrated cost model and the per-task meter.
//! * [`fault`] — named fault-injection points threaded through the WAL,
//!   lock manager, and schedulers (the `strip-chaos` harness's hooks).
//! * [`lock`] — strict-2PL lock manager with waits-for deadlock detection.
//! * [`log`] — per-transaction change log (event detection + undo), with
//!   the paper's `execute_order` sequencing, plus the redo-only write-ahead
//!   log and its torn-tail-tolerant recovery.
//! * [`task`] — tasks, the unit of scheduling; each carries a release time.
//! * [`sched`] — delay queue and policy-ordered ready queue (FIFO / EDF /
//!   value-density).
//! * [`sim`] — deterministic discrete-event executor on a virtual single
//!   CPU; produces the utilization / N_r / transaction-length statistics of
//!   Figures 9–14.
//! * [`pool`] — wall-clock worker-pool executor for live use.

pub mod cost;
pub mod fault;
pub mod lock;
pub mod log;
pub mod pool;
pub mod sched;
pub mod sim;
pub mod task;

pub use cost::{CostMeter, CostModel};
pub use fault::{FaultDecision, FaultInjector, FaultPoint, InjectorHandle};
pub use lock::{
    is_key_resource, key_resource, resource_table, LockError, LockManager, LockMode, TxnId,
};
pub use log::{LogEntry, RecoveredState, TxnLog, Wal, WalError, WalOp, WalTxn};
pub use pool::WorkerPool;
pub use sched::{DelayQueue, Policy, ReadyQueue};
pub use sim::{KindStats, SimStats, Simulator};
pub use task::{Task, TaskCtx, TaskId, TaskWork};
