//! Tasks — STRIP's unit of scheduling (§4.4, §6.2).
//!
//! "Transactions must be executed within a task ... a task can contain zero
//! or more transactions but every transaction must be contained within
//! exactly one task." Every task has a release time; tasks with future
//! release times sit in the delay queue (this is how `after`-delayed unique
//! transactions are implemented).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use strip_obs::TraceCtx;

/// Task identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u64);

static NEXT_TASK_ID: AtomicU64 = AtomicU64::new(1);

impl TaskId {
    /// Allocate a fresh id.
    pub fn fresh() -> TaskId {
        TaskId(NEXT_TASK_ID.fetch_add(1, Ordering::Relaxed))
    }
}

/// Execution context handed to a task's work closure by the executor.
pub struct TaskCtx<'a> {
    /// Virtual (or wall) time at which the task started running, in µs.
    pub start_us: u64,
    /// The task's own id.
    pub task_id: TaskId,
    /// Cost meter charged by everything the task does.
    pub meter: &'a crate::cost::CostMeter,
    /// Tasks created while running (rule actions); drained by the executor
    /// after the work closure returns.
    pub spawned: Vec<Task>,
    /// Causal identity inherited from the task (untraced for plain feeds;
    /// the action span for rule actions).
    pub trace: TraceCtx,
}

impl TaskCtx<'_> {
    /// Current virtual time: start time plus the work charged so far. This
    /// is what commit timestamps and `after`-delay release times are
    /// computed from.
    pub fn now_us(&self) -> u64 {
        self.start_us + self.meter.charged_us()
    }

    /// Submit a task created by this one (e.g. a triggered rule action).
    pub fn spawn(&mut self, task: Task) {
        self.spawned.push(task);
    }
}

/// The work a task performs. Boxed `FnOnce` so rule actions can capture
/// their payload (`Arc` to the shared bound-table set).
pub type TaskWork = Box<dyn FnOnce(&mut TaskCtx<'_>) + Send>;

/// A schedulable task.
pub struct Task {
    /// Unique id.
    pub id: TaskId,
    /// Earliest time the task may run, in µs. Tasks whose release time is in
    /// the future wait in the delay queue.
    pub release_us: u64,
    /// Optional deadline (for EDF scheduling).
    pub deadline_us: Option<u64>,
    /// Value for value-density scheduling (higher = more important).
    pub value: f64,
    /// Label used for statistics grouping (e.g. `"update"` or
    /// `"recompute:compute_comps3"`).
    pub kind: Arc<str>,
    /// Causal identity: rule actions carry the action span minted at
    /// dispatch so their scheduler lifecycle events join the trace DAG.
    pub trace: TraceCtx,
    /// The work closure.
    pub work: TaskWork,
}

impl std::fmt::Debug for Task {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Task")
            .field("id", &self.id)
            .field("release_us", &self.release_us)
            .field("deadline_us", &self.deadline_us)
            .field("kind", &self.kind)
            .finish_non_exhaustive()
    }
}

impl Task {
    /// Build a task with an immediate release time.
    pub fn immediate(kind: &str, work: TaskWork) -> Task {
        Task {
            id: TaskId::fresh(),
            release_us: 0,
            deadline_us: None,
            value: 1.0,
            kind: Arc::from(kind),
            trace: TraceCtx::NONE,
            work,
        }
    }

    /// Build a task released at `release_us`.
    pub fn at(kind: &str, release_us: u64, work: TaskWork) -> Task {
        Task {
            release_us,
            ..Task::immediate(kind, work)
        }
    }

    /// Set a deadline (builder style).
    pub fn with_deadline(mut self, deadline_us: u64) -> Task {
        self.deadline_us = Some(deadline_us);
        self
    }

    /// Set a value (builder style).
    pub fn with_value(mut self, value: f64) -> Task {
        self.value = value;
        self
    }

    /// Attach causal identity (builder style).
    pub fn with_trace(mut self, trace: TraceCtx) -> Task {
        self.trace = trace;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{CostMeter, CostModel};
    use strip_storage::Meter;

    #[test]
    fn ids_are_unique() {
        let a = TaskId::fresh();
        let b = TaskId::fresh();
        assert_ne!(a, b);
    }

    #[test]
    fn ctx_now_advances_with_charge() {
        let meter = CostMeter::new(CostModel::paper_calibrated());
        let mut ctx = TaskCtx {
            start_us: 1000,
            task_id: TaskId::fresh(),
            meter: &meter,
            spawned: Vec::new(),
            trace: TraceCtx::NONE,
        };
        assert_eq!(ctx.now_us(), 1000);
        meter.charge(strip_storage::Op::GetLock, 1); // 14 µs
        assert_eq!(ctx.now_us(), 1014);
        ctx.spawn(Task::immediate("noop", Box::new(|_| {})));
        assert_eq!(ctx.spawned.len(), 1);
    }

    #[test]
    fn builders() {
        let t = Task::at("update", 500, Box::new(|_| {}))
            .with_deadline(900)
            .with_value(3.0);
        assert_eq!(t.release_us, 500);
        assert_eq!(t.deadline_us, Some(900));
        assert_eq!(t.value, 3.0);
        assert_eq!(&*t.kind, "update");
    }
}
