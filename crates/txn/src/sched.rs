//! Task queues and scheduling policies (paper §6.2, \[Ade96\]).
//!
//! * The **delay queue** holds tasks whose release time is in the future —
//!   in particular unique transactions waiting out their `after` window.
//! * The **ready queue** holds released tasks, ordered by a scheduling
//!   policy: FIFO (by release time), earliest-deadline-first, or
//!   value-density-first ("standard real-time scheduling algorithms for
//!   tasks such as earliest-deadline and value-density first").

use crate::task::Task;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Scheduling policy for the ready queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Policy {
    /// First released, first served (ties by creation order).
    #[default]
    Fifo,
    /// Earliest deadline first; tasks without deadlines run last.
    EarliestDeadline,
    /// Highest value density first: value / estimated remaining work. With
    /// no execution-time estimates available, plain value is used, which is
    /// the degenerate density with unit cost.
    ValueDensity,
    /// Deterministic pseudo-random order: the pop order is a seed-keyed
    /// permutation of arrival order. The chaos harness's interleaving
    /// explorer sweeps seeds to exercise many ready-queue orders while each
    /// individual run stays exactly reproducible.
    Seeded(u64),
}

/// SplitMix64 — the permutation key for [`Policy::Seeded`]. Mixing the seed
/// with the queue's own arrival counter (not the global task id) keeps
/// replays of the same workload identical within one process.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Min-heap of tasks by release time.
#[derive(Debug, Default)]
pub struct DelayQueue {
    heap: BinaryHeap<Reverse<(u64, u64, TaskBox)>>,
    seq: u64,
}

/// Wrapper to keep `Task` (not `Ord`) inside the heap tuple.
struct TaskBox(Task);

impl std::fmt::Debug for TaskBox {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

impl PartialEq for TaskBox {
    fn eq(&self, other: &Self) -> bool {
        self.0.id == other.0.id
    }
}
impl Eq for TaskBox {}
impl PartialOrd for TaskBox {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TaskBox {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.id.cmp(&other.0.id)
    }
}

impl DelayQueue {
    /// New empty queue.
    pub fn new() -> DelayQueue {
        DelayQueue::default()
    }

    /// Enqueue a task keyed by its release time.
    pub fn push(&mut self, task: Task) {
        let seq = self.seq;
        self.seq += 1;
        self.heap
            .push(Reverse((task.release_us, seq, TaskBox(task))));
    }

    /// Release time of the earliest task, if any.
    pub fn peek_release(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse((r, _, _))| *r)
    }

    /// Pop every task with `release_us <= now`.
    pub fn pop_released(&mut self, now: u64) -> Vec<Task> {
        let mut out = Vec::new();
        while let Some(Reverse((r, _, _))) = self.heap.peek() {
            if *r <= now {
                let Reverse((_, _, TaskBox(t))) = self.heap.pop().expect("peeked");
                out.push(t);
            } else {
                break;
            }
        }
        out
    }

    /// Number of delayed tasks.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no delayed tasks.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Policy-ordered queue of released tasks.
#[derive(Debug)]
pub struct ReadyQueue {
    policy: Policy,
    heap: BinaryHeap<Reverse<(u64, u64, TaskBox)>>,
    seq: u64,
}

impl ReadyQueue {
    /// New queue with the given policy.
    pub fn new(policy: Policy) -> ReadyQueue {
        ReadyQueue {
            policy,
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// The active policy.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    fn key(&self, t: &Task, seq: u64) -> u64 {
        match self.policy {
            Policy::Fifo => t.release_us,
            Policy::EarliestDeadline => t.deadline_us.unwrap_or(u64::MAX),
            // Higher value should pop first; invert into a min-key. Values
            // are finite positives in practice.
            Policy::ValueDensity => {
                let v = t.value.max(0.0);
                u64::MAX - (v * 1_000.0) as u64
            }
            Policy::Seeded(seed) => splitmix64(seed ^ seq),
        }
    }

    /// Enqueue a released task.
    pub fn push(&mut self, task: Task) {
        let seq = self.seq;
        self.seq += 1;
        let key = self.key(&task, seq);
        self.heap.push(Reverse((key, seq, TaskBox(task))));
    }

    /// Pop the next task per policy.
    pub fn pop(&mut self) -> Option<Task> {
        self.heap.pop().map(|Reverse((_, _, TaskBox(t)))| t)
    }

    /// Number of ready tasks.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noop(kind: &str, release: u64) -> Task {
        Task::at(kind, release, Box::new(|_| {}))
    }

    #[test]
    fn delay_queue_releases_in_time_order() {
        let mut q = DelayQueue::new();
        q.push(noop("c", 300));
        q.push(noop("a", 100));
        q.push(noop("b", 200));
        assert_eq!(q.peek_release(), Some(100));
        let r = q.pop_released(250);
        assert_eq!(r.len(), 2);
        assert_eq!(&*r[0].kind, "a");
        assert_eq!(&*r[1].kind, "b");
        assert_eq!(q.len(), 1);
        assert!(q.pop_released(299).is_empty());
        assert_eq!(q.pop_released(300).len(), 1);
        assert!(q.is_empty());
    }

    #[test]
    fn fifo_orders_by_release_then_insertion() {
        let mut q = ReadyQueue::new(Policy::Fifo);
        q.push(noop("second", 10));
        q.push(noop("first", 5));
        q.push(noop("third", 10));
        assert_eq!(&*q.pop().unwrap().kind, "first");
        assert_eq!(&*q.pop().unwrap().kind, "second");
        assert_eq!(&*q.pop().unwrap().kind, "third");
        assert!(q.pop().is_none());
    }

    #[test]
    fn edf_orders_by_deadline() {
        let mut q = ReadyQueue::new(Policy::EarliestDeadline);
        q.push(noop("no_deadline", 0));
        q.push(noop("late", 0).with_deadline(900));
        q.push(noop("urgent", 0).with_deadline(100));
        assert_eq!(&*q.pop().unwrap().kind, "urgent");
        assert_eq!(&*q.pop().unwrap().kind, "late");
        assert_eq!(&*q.pop().unwrap().kind, "no_deadline");
    }

    #[test]
    fn value_density_prefers_high_value() {
        let mut q = ReadyQueue::new(Policy::ValueDensity);
        q.push(noop("cheap", 0).with_value(1.0));
        q.push(noop("vip", 0).with_value(10.0));
        assert_eq!(&*q.pop().unwrap().kind, "vip");
        assert_eq!(&*q.pop().unwrap().kind, "cheap");
    }

    #[test]
    fn seeded_policy_permutes_deterministically() {
        let pops = |seed: u64| {
            let mut q = ReadyQueue::new(Policy::Seeded(seed));
            for name in ["a", "b", "c", "d", "e", "f"] {
                q.push(noop(name, 0));
            }
            let mut out = Vec::new();
            while let Some(t) = q.pop() {
                out.push(t.kind.to_string());
            }
            out
        };
        // Same seed → same order; it is a permutation of the inputs.
        assert_eq!(pops(7), pops(7));
        let mut sorted = pops(7);
        sorted.sort();
        assert_eq!(sorted, vec!["a", "b", "c", "d", "e", "f"]);
        // Some seed disagrees with FIFO arrival order (6! orders, 64 seeds).
        let fifo: Vec<String> = ["a", "b", "c", "d", "e", "f"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!((0..64).any(|s| pops(s) != fifo));
    }

    #[test]
    fn equal_keys_fall_back_to_insertion_order() {
        let mut q = ReadyQueue::new(Policy::EarliestDeadline);
        q.push(noop("a", 0).with_deadline(5));
        q.push(noop("b", 0).with_deadline(5));
        assert_eq!(&*q.pop().unwrap().kind, "a");
        assert_eq!(&*q.pop().unwrap().kind, "b");
    }
}
