//! Property-based tests for the lock manager: a single-threaded model check
//! over random `try_lock`/`release_all` sequences asserting that no two
//! transactions ever hold conflicting locks, plus delay/ready queue laws.

use proptest::prelude::*;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use strip_txn::fault::{FaultDecision, FaultInjector, FaultPoint};
use strip_txn::{DelayQueue, LockError, LockManager, LockMode, Policy, ReadyQueue, Task, TxnId};

#[derive(Debug, Clone)]
enum LockOp {
    TryLock(u8, u8, bool), // (txn, resource, exclusive)
    Release(u8),
}

fn lock_op() -> impl Strategy<Value = LockOp> {
    prop_oneof![
        (0..4u8, 0..3u8, any::<bool>()).prop_map(|(t, r, x)| LockOp::TryLock(t, r, x)),
        (0..4u8).prop_map(LockOp::Release),
    ]
}

proptest! {
    #[test]
    fn no_conflicting_grants_ever(ops in proptest::collection::vec(lock_op(), 1..200)) {
        let lm = LockManager::new();
        // Model: resource -> (txn -> mode).
        let mut held: HashMap<u8, HashMap<u8, LockMode>> = HashMap::new();
        for op in ops {
            match op {
                LockOp::TryLock(t, r, exclusive) => {
                    let mode = if exclusive {
                        LockMode::Exclusive
                    } else {
                        LockMode::Shared
                    };
                    let res = format!("r{r}");
                    let granted = lm.try_lock(TxnId(t as u64), &res, mode).is_ok();
                    let holders = held.entry(r).or_default();
                    // The model's compatibility rule.
                    let compatible = match mode {
                        LockMode::Shared => holders
                            .iter()
                            .all(|(h, m)| *h == t || *m == LockMode::Shared),
                        LockMode::Exclusive => holders.keys().all(|h| *h == t),
                    };
                    // try_lock may be *more* conservative than the model
                    // (FIFO fairness can refuse a compatible request while
                    // waiters queue — but with try_lock-only traffic there
                    // are never waiters, so grant ⇔ compatible).
                    prop_assert_eq!(granted, compatible, "txn {} mode {:?} on {}", t, mode, r);
                    if granted {
                        let e = holders.entry(t).or_insert(mode);
                        if mode == LockMode::Exclusive {
                            *e = LockMode::Exclusive;
                        }
                    }
                }
                LockOp::Release(t) => {
                    lm.release_all(TxnId(t as u64));
                    for holders in held.values_mut() {
                        holders.remove(&t);
                    }
                }
            }
            // Invariant: at most one writer per resource, and never a
            // writer alongside another holder.
            for (r, holders) in &held {
                let writers = holders.values().filter(|m| **m == LockMode::Exclusive).count();
                prop_assert!(writers <= 1, "two writers on r{}", r);
                if writers == 1 {
                    prop_assert_eq!(holders.len(), 1, "writer + reader on r{}", r);
                }
            }
        }
        // Cross-check the manager's view of held locks.
        for t in 0..4u8 {
            let expect: HashSet<String> = held
                .iter()
                .filter(|(_, hs)| hs.contains_key(&t))
                .map(|(r, _)| format!("r{r}"))
                .collect();
            let got: HashSet<String> = lm
                .held_by(TxnId(t as u64))
                .into_iter()
                .map(|(r, _)| r)
                .collect();
            prop_assert_eq!(got, expect);
        }
    }
}

/// Injects a lock-wait timeout on every would-block acquisition — the same
/// `LockAcquire` fault point the chaos harness drives.
struct AlwaysTimeout;

impl FaultInjector for AlwaysTimeout {
    fn decide(&self, point: FaultPoint, _detail: &str) -> FaultDecision {
        if point == FaultPoint::LockAcquire {
            FaultDecision::Timeout
        } else {
            FaultDecision::Continue
        }
    }
}

// Law 1: abort (release_all) must drop *every* lock and queued wait of the
// aborting transaction and nothing of anyone else's, regardless of the grant
// history — the "no lock leaked after abort" oracle as a property.
//
// Law 2: with timeout injection at the `LockAcquire` fault point, no request
// ever blocks, so no waits-for cycle can form; timed-out transactions abort
// cleanly.
proptest! {
    #[test]
    fn abort_releases_all_locks(
        ops in proptest::collection::vec(lock_op(), 1..200),
        perm in 0..24usize,
    ) {
        // Decode `perm` as a Lehmer index into the 24 orders of [0,1,2,3].
        let mut pool: Vec<u8> = vec![0, 1, 2, 3];
        let mut abort_order = Vec::new();
        let (mut idx, mut base) = (perm, 24);
        for k in (1..=4).rev() {
            base /= k;
            abort_order.push(pool.remove(idx / base));
            idx %= base;
        }
        let lm = LockManager::new();
        lm.set_injector(Some(Arc::new(AlwaysTimeout)));
        let mut alive: HashSet<u8> = (0..4).collect();
        for op in ops {
            match op {
                LockOp::TryLock(t, r, exclusive) => {
                    let mode = if exclusive { LockMode::Exclusive } else { LockMode::Shared };
                    // Blocking path is safe single-threaded: the injector
                    // turns every would-block wait into a Timeout error.
                    let _ = lm.lock(TxnId(t as u64), &format!("r{r}"), mode);
                }
                LockOp::Release(t) => lm.release_all(TxnId(t as u64)),
            }
        }
        for t in abort_order {
            lm.release_all(TxnId(t as u64)); // abort
            alive.remove(&t);
            prop_assert!(lm.held_by(TxnId(t as u64)).is_empty(), "txn {} leaked a lock", t);
            let survivors: usize = alive
                .iter()
                .map(|t| lm.held_by(TxnId(*t as u64)).len())
                .sum();
            prop_assert_eq!(lm.held_count(), survivors);
        }
        prop_assert_eq!(lm.held_count(), 0);
        prop_assert_eq!(lm.blocked_count(), 0);
    }

    #[test]
    fn no_deadlock_under_timeout(ops in proptest::collection::vec(lock_op(), 1..300)) {
        let lm = LockManager::new();
        lm.set_injector(Some(Arc::new(AlwaysTimeout)));
        for op in ops {
            match op {
                LockOp::TryLock(t, r, exclusive) => {
                    let mode = if exclusive { LockMode::Exclusive } else { LockMode::Shared };
                    match lm.lock(TxnId(t as u64), &format!("r{r}"), mode) {
                        Ok(()) => {}
                        Err(LockError::Timeout) => {
                            // Real-time semantics: a timed-out transaction
                            // aborts, releasing everything it held.
                            lm.release_all(TxnId(t as u64));
                            prop_assert!(lm.held_by(TxnId(t as u64)).is_empty());
                        }
                        Err(e) => prop_assert!(false, "unexpected lock error {:?}", e),
                    }
                }
                LockOp::Release(t) => lm.release_all(TxnId(t as u64)),
            }
            // Nobody ever waits under timeout injection.
            prop_assert_eq!(lm.blocked_count(), 0);
        }
    }

    #[test]
    fn delay_queue_releases_in_nondecreasing_time(
        releases in proptest::collection::vec(0..10_000u64, 1..100),
        step in 1..2_000u64,
    ) {
        let mut q = DelayQueue::new();
        for &r in &releases {
            q.push(Task::at("t", r, Box::new(|_| {})));
        }
        let mut popped = Vec::new();
        let mut now = 0;
        while !q.is_empty() {
            now += step;
            for t in q.pop_released(now) {
                prop_assert!(t.release_us <= now);
                popped.push(t.release_us);
            }
        }
        // Everything released, in nondecreasing release order.
        prop_assert_eq!(popped.len(), releases.len());
        prop_assert!(popped.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn edf_pops_in_deadline_order(deadlines in proptest::collection::vec(0..10_000u64, 1..100)) {
        let mut q = ReadyQueue::new(Policy::EarliestDeadline);
        for &d in &deadlines {
            q.push(Task::immediate("t", Box::new(|_| {})).with_deadline(d));
        }
        let mut got = Vec::new();
        while let Some(t) = q.pop() {
            got.push(t.deadline_us.unwrap());
        }
        let mut want = deadlines.clone();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn fifo_is_stable_for_equal_release_times(n in 1..60usize) {
        let mut q = ReadyQueue::new(Policy::Fifo);
        for i in 0..n {
            q.push(Task::at(&format!("t{i}"), 7, Box::new(|_| {})));
        }
        for i in 0..n {
            prop_assert_eq!(&*q.pop().unwrap().kind, format!("t{i}"));
        }
    }
}
