//! Property-based tests for the lock manager: a single-threaded model check
//! over random `try_lock`/`release_all` sequences asserting that no two
//! transactions ever hold conflicting locks, plus delay/ready queue laws.

use proptest::prelude::*;
use std::collections::{HashMap, HashSet};
use strip_txn::{DelayQueue, LockManager, LockMode, Policy, ReadyQueue, Task, TxnId};

#[derive(Debug, Clone)]
enum LockOp {
    TryLock(u8, u8, bool), // (txn, resource, exclusive)
    Release(u8),
}

fn lock_op() -> impl Strategy<Value = LockOp> {
    prop_oneof![
        (0..4u8, 0..3u8, any::<bool>()).prop_map(|(t, r, x)| LockOp::TryLock(t, r, x)),
        (0..4u8).prop_map(LockOp::Release),
    ]
}

proptest! {
    #[test]
    fn no_conflicting_grants_ever(ops in proptest::collection::vec(lock_op(), 1..200)) {
        let lm = LockManager::new();
        // Model: resource -> (txn -> mode).
        let mut held: HashMap<u8, HashMap<u8, LockMode>> = HashMap::new();
        for op in ops {
            match op {
                LockOp::TryLock(t, r, exclusive) => {
                    let mode = if exclusive {
                        LockMode::Exclusive
                    } else {
                        LockMode::Shared
                    };
                    let res = format!("r{r}");
                    let granted = lm.try_lock(TxnId(t as u64), &res, mode).is_ok();
                    let holders = held.entry(r).or_default();
                    // The model's compatibility rule.
                    let compatible = match mode {
                        LockMode::Shared => holders
                            .iter()
                            .all(|(h, m)| *h == t || *m == LockMode::Shared),
                        LockMode::Exclusive => holders.keys().all(|h| *h == t),
                    };
                    // try_lock may be *more* conservative than the model
                    // (FIFO fairness can refuse a compatible request while
                    // waiters queue — but with try_lock-only traffic there
                    // are never waiters, so grant ⇔ compatible).
                    prop_assert_eq!(granted, compatible, "txn {} mode {:?} on {}", t, mode, r);
                    if granted {
                        let e = holders.entry(t).or_insert(mode);
                        if mode == LockMode::Exclusive {
                            *e = LockMode::Exclusive;
                        }
                    }
                }
                LockOp::Release(t) => {
                    lm.release_all(TxnId(t as u64));
                    for holders in held.values_mut() {
                        holders.remove(&t);
                    }
                }
            }
            // Invariant: at most one writer per resource, and never a
            // writer alongside another holder.
            for (r, holders) in &held {
                let writers = holders.values().filter(|m| **m == LockMode::Exclusive).count();
                prop_assert!(writers <= 1, "two writers on r{}", r);
                if writers == 1 {
                    prop_assert_eq!(holders.len(), 1, "writer + reader on r{}", r);
                }
            }
        }
        // Cross-check the manager's view of held locks.
        for t in 0..4u8 {
            let expect: HashSet<String> = held
                .iter()
                .filter(|(_, hs)| hs.contains_key(&t))
                .map(|(r, _)| format!("r{r}"))
                .collect();
            let got: HashSet<String> = lm
                .held_by(TxnId(t as u64))
                .into_iter()
                .map(|(r, _)| r)
                .collect();
            prop_assert_eq!(got, expect);
        }
    }
}

proptest! {
    #[test]
    fn delay_queue_releases_in_nondecreasing_time(
        releases in proptest::collection::vec(0..10_000u64, 1..100),
        step in 1..2_000u64,
    ) {
        let mut q = DelayQueue::new();
        for &r in &releases {
            q.push(Task::at("t", r, Box::new(|_| {})));
        }
        let mut popped = Vec::new();
        let mut now = 0;
        while !q.is_empty() {
            now += step;
            for t in q.pop_released(now) {
                prop_assert!(t.release_us <= now);
                popped.push(t.release_us);
            }
        }
        // Everything released, in nondecreasing release order.
        prop_assert_eq!(popped.len(), releases.len());
        prop_assert!(popped.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn edf_pops_in_deadline_order(deadlines in proptest::collection::vec(0..10_000u64, 1..100)) {
        let mut q = ReadyQueue::new(Policy::EarliestDeadline);
        for &d in &deadlines {
            q.push(Task::immediate("t", Box::new(|_| {})).with_deadline(d));
        }
        let mut got = Vec::new();
        while let Some(t) = q.pop() {
            got.push(t.deadline_us.unwrap());
        }
        let mut want = deadlines.clone();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn fifo_is_stable_for_equal_release_times(n in 1..60usize) {
        let mut q = ReadyQueue::new(Policy::Fifo);
        for i in 0..n {
            q.push(Task::at(&format!("t{i}"), 7, Box::new(|_| {})));
        }
        for i in 0..n {
            prop_assert_eq!(&*q.pop().unwrap().kind, format!("t{i}"));
        }
    }
}
