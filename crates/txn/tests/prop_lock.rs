//! Property-based tests for the hierarchical lock manager: a model check
//! over random acquire/upgrade/release sequences mixing table-level modes
//! (IS/IX/S/SIX/X) with key-granular resources, asserting that no two
//! transactions ever hold incompatible locks, that the intention protocol
//! is respected (a key-mode grant implies the covering intention mode on
//! its table), that deadlocks are reported exactly when a waits-for cycle
//! exists, plus delay/ready queue laws.

use proptest::prelude::*;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use strip_txn::fault::{FaultDecision, FaultInjector, FaultPoint};
use strip_txn::{
    key_resource, resource_table, DelayQueue, LockError, LockManager, LockMode, Policy, ReadyQueue,
    Task, TxnId,
};

const MODES: [LockMode; 5] = [
    LockMode::IntentShared,
    LockMode::IntentExclusive,
    LockMode::Shared,
    LockMode::SharedIntentExclusive,
    LockMode::Exclusive,
];

#[derive(Debug, Clone)]
enum LockOp {
    /// Table-granular acquire: (txn, table, mode).
    TryLock(u8, u8, LockMode),
    /// Hierarchical acquire: (txn, table, key, exclusive) — takes the
    /// intention mode on the table, then S/X on `table#c=k<key>`.
    TryLockKey(u8, u8, u8, bool),
    Release(u8),
}

fn lock_op() -> impl Strategy<Value = LockOp> {
    prop_oneof![
        (0..4u8, 0..3u8, 0..5usize).prop_map(|(t, r, m)| LockOp::TryLock(t, r, MODES[m])),
        (0..4u8, 0..3u8, 0..2u8, any::<bool>())
            .prop_map(|(t, r, k, x)| LockOp::TryLockKey(t, r, k, x)),
        (0..4u8).prop_map(LockOp::Release),
    ]
}

/// Reference model of a single `try_lock`: re-entrant covers check, then
/// upgrade-join compatibility against every other holder. (With try-only
/// traffic the manager never has waiters, so FIFO fairness never bites and
/// grant ⇔ model-compatible.)
fn model_try(
    held: &mut HashMap<String, HashMap<u8, LockMode>>,
    t: u8,
    res: &str,
    mode: LockMode,
) -> bool {
    let holders = held.entry(res.to_string()).or_default();
    if let Some(h) = holders.get(&t) {
        if h.covers(mode) {
            return true;
        }
    }
    let target = holders.get(&t).map_or(mode, |h| h.lub(mode));
    let ok = holders
        .iter()
        .all(|(h, m)| *h == t || m.compatible_with(target));
    if ok {
        holders.insert(t, target);
    }
    ok
}

proptest! {
    #[test]
    fn no_conflicting_grants_ever(ops in proptest::collection::vec(lock_op(), 1..250)) {
        let lm = LockManager::new();
        // Model: resource name -> (txn -> strongest granted mode).
        let mut held: HashMap<String, HashMap<u8, LockMode>> = HashMap::new();
        for op in ops {
            match op {
                LockOp::TryLock(t, r, mode) => {
                    let res = format!("r{r}");
                    let granted = lm.try_lock(TxnId(t as u64), &res, mode).is_ok();
                    let expect = model_try(&mut held, t, &res, mode);
                    prop_assert_eq!(granted, expect, "txn {} mode {:?} on {}", t, mode, res);
                }
                LockOp::TryLockKey(t, r, k, exclusive) => {
                    let mode = if exclusive { LockMode::Exclusive } else { LockMode::Shared };
                    let table = format!("r{r}");
                    let key = format!("k{k}");
                    let granted = lm
                        .try_lock_key(TxnId(t as u64), &table, "c", &key, mode)
                        .is_ok();
                    // Model mirrors the two-step protocol: intention on the
                    // table first; the key mode is attempted only if the
                    // intention was granted.
                    let expect = model_try(&mut held, t, &table, mode.intention())
                        && model_try(&mut held, t, &key_resource(&table, "c", &key), mode);
                    prop_assert_eq!(
                        granted, expect,
                        "txn {} key-mode {:?} on {}#c={}", t, mode, table, key
                    );
                }
                LockOp::Release(t) => {
                    lm.release_all(TxnId(t as u64));
                    for holders in held.values_mut() {
                        holders.remove(&t);
                    }
                }
            }
            for (res, holders) in &held {
                // Invariant 1: all grants on a resource are pairwise
                // compatible (the multi-granularity matrix, including
                // IS/IX/SIX coexistence and X's total exclusivity).
                let hs: Vec<(&u8, &LockMode)> = holders.iter().collect();
                for (i, (t1, m1)) in hs.iter().enumerate() {
                    for (t2, m2) in &hs[i + 1..] {
                        prop_assert!(
                            m1.compatible_with(**m2),
                            "txn {} ({:?}) vs txn {} ({:?}) on {}", t1, m1, t2, m2, res
                        );
                    }
                }
                // Invariant 2 (hierarchy): a key-mode grant implies its
                // covering intention mode held on the parent table.
                if res.contains('#') {
                    let table = resource_table(res);
                    for (t, m) in holders {
                        let parent = held.get(table).and_then(|h| h.get(t));
                        prop_assert!(
                            parent.is_some_and(|p| p.covers(m.intention())),
                            "txn {} holds {:?} on {} without {:?} on {}",
                            t, m, res, m.intention(), table
                        );
                    }
                }
            }
        }
        // Cross-check the manager's view of held locks and modes.
        for t in 0..4u8 {
            let mut expect: Vec<(String, LockMode)> = held
                .iter()
                .filter_map(|(res, hs)| hs.get(&t).map(|m| (res.clone(), *m)))
                .collect();
            expect.sort();
            prop_assert_eq!(lm.held_by(TxnId(t as u64)), expect);
        }
    }
}

/// Injects a lock-wait timeout on every would-block acquisition — the same
/// `LockAcquire` fault point the chaos harness drives.
struct AlwaysTimeout;

impl FaultInjector for AlwaysTimeout {
    fn decide(&self, point: FaultPoint, _detail: &str) -> FaultDecision {
        if point == FaultPoint::LockAcquire {
            FaultDecision::Timeout
        } else {
            FaultDecision::Continue
        }
    }
}

// Law 1: abort (release_all) must drop *every* lock and queued wait of the
// aborting transaction and nothing of anyone else's, regardless of the grant
// history — the "no lock leaked after abort" oracle as a property.
//
// Law 2: with timeout injection at the `LockAcquire` fault point, no request
// ever blocks, so no waits-for edge exists; the manager must then never
// report `Deadlock` (deadlock ⇒ a real waits-for cycle), and timed-out
// transactions abort cleanly.
proptest! {
    #[test]
    fn abort_releases_all_locks(
        ops in proptest::collection::vec(lock_op(), 1..200),
        perm in 0..24usize,
    ) {
        // Decode `perm` as a Lehmer index into the 24 orders of [0,1,2,3].
        let mut pool: Vec<u8> = vec![0, 1, 2, 3];
        let mut abort_order = Vec::new();
        let (mut idx, mut base) = (perm, 24);
        for k in (1..=4).rev() {
            base /= k;
            abort_order.push(pool.remove(idx / base));
            idx %= base;
        }
        let lm = LockManager::new();
        lm.set_injector(Some(Arc::new(AlwaysTimeout)));
        let mut alive: HashSet<u8> = (0..4).collect();
        for op in ops {
            // Blocking path is safe single-threaded: the injector turns
            // every would-block wait into a Timeout error.
            match op {
                LockOp::TryLock(t, r, mode) => {
                    let _ = lm.lock(TxnId(t as u64), &format!("r{r}"), mode);
                }
                LockOp::TryLockKey(t, r, k, exclusive) => {
                    let mode = if exclusive { LockMode::Exclusive } else { LockMode::Shared };
                    let _ = lm.lock_key(
                        TxnId(t as u64), &format!("r{r}"), "c", &format!("k{k}"), mode,
                    );
                }
                LockOp::Release(t) => lm.release_all(TxnId(t as u64)),
            }
        }
        for t in abort_order {
            lm.release_all(TxnId(t as u64)); // abort
            alive.remove(&t);
            prop_assert!(lm.held_by(TxnId(t as u64)).is_empty(), "txn {} leaked a lock", t);
            let survivors: usize = alive
                .iter()
                .map(|t| lm.held_by(TxnId(*t as u64)).len())
                .sum();
            prop_assert_eq!(lm.held_count(), survivors);
        }
        prop_assert_eq!(lm.held_count(), 0);
        prop_assert_eq!(lm.blocked_count(), 0);
    }

    #[test]
    fn no_deadlock_without_waiters(ops in proptest::collection::vec(lock_op(), 1..300)) {
        let lm = LockManager::new();
        lm.set_injector(Some(Arc::new(AlwaysTimeout)));
        let check = |lm: &LockManager, result: Result<(), LockError>, t: u8|
            -> Result<(), TestCaseError>
        {
            match result {
                Ok(()) => {}
                Err(LockError::Timeout) => {
                    // Real-time semantics: a timed-out transaction aborts,
                    // releasing everything it held.
                    lm.release_all(TxnId(t as u64));
                    prop_assert!(lm.held_by(TxnId(t as u64)).is_empty());
                }
                // Deadlock requires a waits-for cycle; with timeout
                // injection nobody ever waits, so a `Deadlock` here would
                // be a false positive from the cycle detector.
                Err(e) => prop_assert!(false, "unexpected lock error {:?}", e),
            }
            Ok(())
        };
        for op in ops {
            match op {
                LockOp::TryLock(t, r, mode) => {
                    check(&lm, lm.lock(TxnId(t as u64), &format!("r{r}"), mode), t)?;
                }
                LockOp::TryLockKey(t, r, k, exclusive) => {
                    let mode = if exclusive { LockMode::Exclusive } else { LockMode::Shared };
                    check(
                        &lm,
                        lm.lock_key(TxnId(t as u64), &format!("r{r}"), "c", &format!("k{k}"), mode),
                        t,
                    )?;
                }
                LockOp::Release(t) => lm.release_all(TxnId(t as u64)),
            }
            // Nobody ever waits under timeout injection.
            prop_assert_eq!(lm.blocked_count(), 0);
        }
    }

    #[test]
    fn delay_queue_releases_in_nondecreasing_time(
        releases in proptest::collection::vec(0..10_000u64, 1..100),
        step in 1..2_000u64,
    ) {
        let mut q = DelayQueue::new();
        for &r in &releases {
            q.push(Task::at("t", r, Box::new(|_| {})));
        }
        let mut popped = Vec::new();
        let mut now = 0;
        while !q.is_empty() {
            now += step;
            for t in q.pop_released(now) {
                prop_assert!(t.release_us <= now);
                popped.push(t.release_us);
            }
        }
        // Everything released, in nondecreasing release order.
        prop_assert_eq!(popped.len(), releases.len());
        prop_assert!(popped.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn edf_pops_in_deadline_order(deadlines in proptest::collection::vec(0..10_000u64, 1..100)) {
        let mut q = ReadyQueue::new(Policy::EarliestDeadline);
        for &d in &deadlines {
            q.push(Task::immediate("t", Box::new(|_| {})).with_deadline(d));
        }
        let mut got = Vec::new();
        while let Some(t) = q.pop() {
            got.push(t.deadline_us.unwrap());
        }
        let mut want = deadlines.clone();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn fifo_is_stable_for_equal_release_times(n in 1..60usize) {
        let mut q = ReadyQueue::new(Policy::Fifo);
        for i in 0..n {
            q.push(Task::at(&format!("t{i}"), 7, Box::new(|_| {})));
        }
        for i in 0..n {
            prop_assert_eq!(&*q.pop().unwrap().kind, format!("t{i}"));
        }
    }
}

// Deadlock ⇐ real waits-for cycle: a forced two-transaction cycle (X on a,
// X on b, then each requesting the other) must surface `Deadlock` to at
// least one side, and the survivor must then complete. Run across table-only,
// key-only, and mixed table/key cycles so the detector is exercised over
// both granularities.
proptest! {
    #[test]
    fn real_cycles_are_detected(shape in 0..3usize) {
        use std::sync::Barrier;
        let lm = Arc::new(LockManager::new());
        let barrier = Arc::new(Barrier::new(2));
        fn grab(lm: &LockManager, t: u64, which: usize, shape: usize) -> Result<(), LockError> {
            match (shape, which) {
                (0, w) => lm.lock(TxnId(t), if w == 0 { "a" } else { "b" }, LockMode::Exclusive),
                (1, w) => lm.lock_key(
                    TxnId(t), "a", "c", if w == 0 { "k0" } else { "k1" }, LockMode::Exclusive,
                ),
                (_, 0) => lm.lock(TxnId(t), "a", LockMode::Exclusive),
                (_, _) => lm.lock_key(TxnId(t), "b", "c", "k0", LockMode::Exclusive),
            }
        }
        let mut handles = Vec::new();
        for id in 0..2u64 {
            let lm = Arc::clone(&lm);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                let mine = id as usize;
                let theirs = 1 - mine;
                grab(&lm, id + 1, mine, shape).expect("first lock is uncontended");
                barrier.wait();
                // Both now request the other's resource: a 2-cycle. The
                // requester whose wait would close the cycle gets `Deadlock`
                // and aborts; the other blocks until the victim's abort
                // frees its resource, then commits.
                let deadlocked = match grab(&lm, id + 1, theirs, shape) {
                    Ok(()) => false,
                    Err(LockError::Deadlock) => {
                        lm.release_all(TxnId(id + 1)); // victim aborts
                        true
                    }
                    Err(e) => panic!("unexpected lock error {e:?}"),
                };
                if !deadlocked {
                    lm.release_all(TxnId(id + 1));
                }
                deadlocked
            }));
        }
        let victims: Vec<bool> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        prop_assert!(
            victims.iter().any(|v| *v),
            "cycle closed but no Deadlock reported (shape {})", shape
        );
        prop_assert_eq!(lm.held_count(), 0);
        prop_assert_eq!(lm.blocked_count(), 0);
    }

    // Random concurrent strict-2PL traffic over a small hot resource set:
    // every thread acquires blocking table and key locks and aborts on
    // Deadlock/Timeout. The property is liveness — with cycle detection
    // picking victims, all threads terminate — and cleanliness: no lock or
    // waiter survives the storm.
    #[test]
    fn concurrent_2pl_storm_terminates_cleanly(
        seqs in proptest::collection::vec(
            proptest::collection::vec((0..2u8, 0..2u8, any::<bool>()), 1..12),
            3,
        ),
    ) {
        let lm = Arc::new(LockManager::new());
        let mut handles = Vec::new();
        for (i, seq) in seqs.into_iter().enumerate() {
            let lm = Arc::clone(&lm);
            handles.push(std::thread::spawn(move || {
                let txn = TxnId(i as u64 + 1);
                for (r, k, exclusive) in seq {
                    let mode = if exclusive { LockMode::Exclusive } else { LockMode::Shared };
                    let res = if k == 0 {
                        lm.lock(txn, &format!("r{r}"), mode)
                    } else {
                        lm.lock_key(txn, &format!("r{r}"), "c", "k", mode)
                    };
                    if res.is_err() {
                        lm.release_all(txn); // abort; strict 2PL drops everything
                        return;
                    }
                }
                lm.release_all(txn); // commit
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        prop_assert_eq!(lm.held_count(), 0);
        prop_assert_eq!(lm.blocked_count(), 0);
    }
}
