//! Crash-recovery round trips for the write-ahead log in `log.rs`,
//! independent of the chaos harness: clean shutdown, mid-commit crash, and
//! torn/truncated final records.

use std::sync::Arc;
use strip_storage::{DataType, Schema, StandardTable, Value};
use strip_txn::fault::{FaultDecision, FaultInjector, FaultPoint};
use strip_txn::{TxnLog, Wal, WalError};

fn stocks_table() -> StandardTable {
    StandardTable::new(
        "stocks",
        Schema::of(&[("symbol", DataType::Str), ("price", DataType::Float)]).into_ref(),
    )
}

/// Run some transactions against a real table, mirroring each change into a
/// `TxnLog` and appending each commit to the WAL. Returns the WAL and the
/// final expected row images keyed by packed row id.
fn committed_workload(wal: &mut Wal) -> Vec<(u64, Vec<Value>)> {
    let t = stocks_table();

    // Txn 1: insert two stocks.
    let mut log = TxnLog::new();
    let (ibm, rec) = t.insert(vec![Value::str("IBM"), 100.0.into()]).unwrap();
    log.log_insert("stocks", ibm, rec);
    let (hp, rec) = t.insert(vec![Value::str("HP"), 50.0.into()]).unwrap();
    log.log_insert("stocks", hp, rec);
    wal.append_committed(1, log.entries()).unwrap();

    // Txn 2: update one, delete the other, insert a third.
    let mut log = TxnLog::new();
    let (old, new) = t
        .update(ibm, vec![Value::str("IBM"), 105.5.into()])
        .unwrap();
    log.log_update("stocks", ibm, old, new);
    let old = t.delete(hp).unwrap();
    log.log_delete("stocks", hp, old);
    let (sun, rec) = t.insert(vec![Value::str("SUN"), 20.25.into()]).unwrap();
    log.log_insert("stocks", sun, rec);
    wal.append_committed(2, log.entries()).unwrap();

    vec![
        (ibm.as_u64(), vec![Value::str("IBM"), 105.5.into()]),
        (sun.as_u64(), vec![Value::str("SUN"), 20.25.into()]),
    ]
}

#[test]
fn clean_shutdown_round_trips_every_commit() {
    let mut wal = Wal::new();
    let expected = committed_workload(&mut wal);

    let rec = Wal::recover(wal.bytes());
    assert!(!rec.torn_tail);
    assert!(rec.in_flight.is_empty());
    assert_eq!(rec.committed_ids(), vec![1, 2]);

    let tables = rec.tables();
    let stocks = &tables["stocks"];
    assert_eq!(stocks.len(), expected.len());
    for (row, values) in expected {
        assert_eq!(stocks[&row], values);
    }
}

/// Crashes exactly at the nth hit of one fault point.
struct CrashAt {
    point: FaultPoint,
    nth: std::sync::atomic::AtomicU64,
}

impl CrashAt {
    fn new(point: FaultPoint, nth: u64) -> Arc<CrashAt> {
        Arc::new(CrashAt {
            point,
            nth: std::sync::atomic::AtomicU64::new(nth),
        })
    }
}

impl FaultInjector for CrashAt {
    fn decide(&self, point: FaultPoint, _detail: &str) -> FaultDecision {
        if point == self.point && self.nth.fetch_sub(1, std::sync::atomic::Ordering::SeqCst) == 1 {
            FaultDecision::Crash
        } else {
            FaultDecision::Continue
        }
    }
}

#[test]
fn crash_before_commit_marker_loses_only_the_in_flight_txn() {
    let mut wal = Wal::with_injector(Some(CrashAt::new(FaultPoint::WalCommit, 3)));
    let expected = committed_workload(&mut wal); // commits 1 and 2 survive

    // Txn 3 writes its op records but crashes at the fsync point.
    let t = stocks_table();
    let mut log = TxnLog::new();
    let (id, rec) = t.insert(vec![Value::str("DEC"), 9.0.into()]).unwrap();
    log.log_insert("stocks", id, rec);
    assert_eq!(
        wal.append_committed(3, log.entries()),
        Err(WalError::Crashed)
    );
    assert!(wal.poisoned());
    // A dead log accepts nothing further.
    assert_eq!(wal.append_committed(4, &[]), Err(WalError::Poisoned));

    let rec = Wal::recover(wal.bytes());
    assert_eq!(rec.committed_ids(), vec![1, 2]);
    assert_eq!(rec.in_flight, vec![3]); // ops present, marker missing
    let tables = rec.tables();
    assert_eq!(tables["stocks"].len(), expected.len());
    assert!(tables["stocks"]
        .values()
        .all(|v| v[0].as_str() != Some("DEC")));
}

#[test]
fn crash_mid_append_discards_partial_txn() {
    // Crash on the 2nd op record of txn 1: no record of txn 1 is
    // recoverable (its first op has no commit marker).
    let mut wal = Wal::with_injector(Some(CrashAt::new(FaultPoint::WalAppend, 2)));
    let t = stocks_table();
    let mut log = TxnLog::new();
    let (a, rec) = t.insert(vec![Value::str("A"), 1.0.into()]).unwrap();
    log.log_insert("stocks", a, rec);
    let (b, rec) = t.insert(vec![Value::str("B"), 2.0.into()]).unwrap();
    log.log_insert("stocks", b, rec);
    assert_eq!(
        wal.append_committed(1, log.entries()),
        Err(WalError::Crashed)
    );

    let rec = Wal::recover(wal.bytes());
    assert!(rec.txns.is_empty());
    assert_eq!(rec.in_flight, vec![1]);
    assert!(rec.tables().get("stocks").is_none_or(|t| t.is_empty()));
}

#[test]
fn torn_final_record_is_ignored_at_every_truncation_point() {
    let mut wal = Wal::new();
    let expected = committed_workload(&mut wal);
    let committed_prefix = wal.last_commit_end();
    assert_eq!(committed_prefix, wal.bytes().len());

    // Append op records for an unacknowledged txn, then cut the tail at
    // every possible byte boundary: recovery must always return exactly the
    // two committed transactions, flagging a torn tail whenever the cut
    // leaves a partial record.
    let t = stocks_table();
    let mut log = TxnLog::new();
    let (id, rec) = t.insert(vec![Value::str("TORN"), 7.0.into()]).unwrap();
    log.log_insert("stocks", id, rec);
    wal.append_committed(3, log.entries()).unwrap();

    let bytes = wal.bytes();
    for cut in committed_prefix..bytes.len() {
        let rec = Wal::recover(&bytes[..cut]);
        let ids = rec.committed_ids();
        assert!(
            ids == vec![1, 2] || (cut == bytes.len() && ids == vec![1, 2, 3]),
            "cut at {cut} produced commits {ids:?}"
        );
        let tables = rec.tables();
        assert_eq!(tables["stocks"].len(), expected.len(), "cut at {cut}");
        if cut > committed_prefix {
            assert!(rec.torn_tail || rec.in_flight == vec![3], "cut at {cut}");
        }
    }

    // Flipping any byte of the tail record corrupts its checksum: the
    // committed prefix still recovers.
    for flip in committed_prefix..bytes.len() {
        let mut corrupt = bytes.to_vec();
        corrupt[flip] ^= 0xff;
        let rec = Wal::recover(&corrupt);
        assert_eq!(rec.committed_ids(), vec![1, 2], "flip at {flip}");
    }
}

#[test]
fn empty_and_header_only_logs_recover_to_nothing() {
    let rec = Wal::recover(&[]);
    assert!(rec.txns.is_empty() && !rec.torn_tail);
    // A few garbage bytes: torn, nothing recovered, no panic.
    let rec = Wal::recover(&[0x13, 0x37, 0xff]);
    assert!(rec.txns.is_empty() && rec.torn_tail);
}
