//! Guard: observability must be effectively free when the sink is disabled.
//!
//! The ISSUE's acceptance bar is that the instrumented simulator stays
//! within 5% of an uninstrumented run on a bench-like workload when the
//! no-op sink is installed. Wall-clock microbenchmarks are noisy, so the
//! test (a) interleaves the two configurations, (b) takes the minimum of
//! several repetitions (minimum is the standard noise-robust statistic for
//! "how fast can this go"), and (c) allows a small absolute epsilon so a
//! sub-millisecond baseline can't fail on scheduler jitter alone. Run in
//! release mode (CI `obs` job); under `debug_assertions` it is ignored.

use std::time::{Duration, Instant};
use strip_obs::ObsSink;
use strip_storage::{Meter, Op};
use strip_txn::{CostModel, Policy, Simulator, Task};

const TASKS: usize = 4_000;
const REPS: usize = 7;

/// A bench-like mix: short updates plus occasional spawning triggers, with
/// staggered releases so the delay queue and queue-time accounting are
/// exercised.
fn run_workload(with_obs: bool) -> Duration {
    run_workload_with(if with_obs {
        Some(ObsSink::disabled())
    } else {
        None
    })
}

fn run_workload_with(obs: Option<std::sync::Arc<ObsSink>>) -> Duration {
    let mut sim = Simulator::new(CostModel::paper_calibrated(), Policy::Fifo);
    sim.set_obs(obs);
    let t0 = Instant::now();
    for i in 0..TASKS {
        let release = (i as u64) * 40;
        if i % 16 == 0 {
            sim.submit(Task::at(
                "trigger",
                release,
                Box::new(|ctx| {
                    ctx.meter.charge(Op::CommitTxn, 1);
                    let at = ctx.now_us() + 500;
                    ctx.spawn(Task::at(
                        "recompute:f",
                        at,
                        Box::new(|ctx| ctx.meter.charge(Op::ModelEval, 2)),
                    ));
                }),
            ));
        } else {
            sim.submit(Task::at(
                "update",
                release,
                Box::new(|ctx| ctx.meter.charge(Op::UpdateCursor, 3)),
            ));
        }
        // Keep the queues bounded the way the bench driver does.
        if i % 64 == 0 {
            sim.run_until(release);
        }
    }
    sim.run_to_completion();
    let dt = t0.elapsed();
    assert!(
        sim.stats().tasks_run as usize > TASKS,
        "workload must spawn"
    );
    dt
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "wall-clock guard is only meaningful in release mode (CI obs job runs it with --release)"
)]
fn disabled_sink_overhead_within_noise() {
    // Warm-up to populate allocator caches and fault in code pages.
    run_workload(false);
    run_workload(true);

    let mut base = Duration::MAX;
    let mut inst = Duration::MAX;
    for _ in 0..REPS {
        base = base.min(run_workload(false));
        inst = inst.min(run_workload(true));
    }

    let base_s = base.as_secs_f64();
    let inst_s = inst.as_secs_f64();
    // 5% relative budget plus 2ms absolute slack for timer/scheduler noise.
    let budget = base_s * 1.05 + 0.002;
    assert!(
        inst_s <= budget,
        "instrumented (no-op sink) min {:?} exceeds baseline min {:?} + 5% (budget {:.6}s)",
        inst,
        base,
        budget
    );
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "wall-clock guard is only meaningful in release mode (CI obs job runs it with --release)"
)]
fn windowed_collector_overhead_within_budget() {
    // Isolate the windowed collector's cost: both runs use a fully enabled
    // sink; the baseline's window width is effectively infinite (the open
    // window never seals, so ticks take only the fast path), while the
    // candidate seals a frame every virtual millisecond — the workload
    // spans ~160 virtual ms, so ~160 seals, far denser than the default
    // 1-second windows.
    let frequent = || run_workload_with(Some(ObsSink::with_windows(4096, 1_000, 256)));
    let never = || run_workload_with(Some(ObsSink::with_windows(4096, u64::MAX, 256)));
    frequent();
    never();

    let mut base = Duration::MAX;
    let mut inst = Duration::MAX;
    for _ in 0..REPS {
        base = base.min(never());
        inst = inst.min(frequent());
    }

    let budget = base.as_secs_f64() * 1.05 + 0.002;
    assert!(
        inst.as_secs_f64() <= budget,
        "windowed collector min {:?} exceeds non-sealing baseline min {:?} + 5% (budget {:.6}s)",
        inst,
        base,
        budget
    );
}
