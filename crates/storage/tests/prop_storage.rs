//! Property-based tests for the storage engine: the red-black tree against
//! a `BTreeMap` model, table/index coherence under random DML, and the
//! §6.1 version-retention invariant.

use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;
use strip_storage::rbtree::RbMap;
use strip_storage::{
    ColumnSource, DataType, IndexKind, Schema, StandardTable, StaticMap, TempTable, Value,
};

#[derive(Debug, Clone)]
enum MapOp {
    Insert(i32, i32),
    Remove(i32),
    Get(i32),
}

fn map_op() -> impl Strategy<Value = MapOp> {
    prop_oneof![
        (0..64i32, any::<i32>()).prop_map(|(k, v)| MapOp::Insert(k, v)),
        (0..64i32).prop_map(MapOp::Remove),
        (0..64i32).prop_map(MapOp::Get),
    ]
}

proptest! {
    #[test]
    fn rbtree_matches_btreemap_model(ops in proptest::collection::vec(map_op(), 1..200)) {
        let mut rb = RbMap::new();
        let mut model = BTreeMap::new();
        for op in ops {
            match op {
                MapOp::Insert(k, v) => {
                    prop_assert_eq!(rb.insert(k, v), model.insert(k, v));
                }
                MapOp::Remove(k) => {
                    prop_assert_eq!(rb.remove(&k), model.remove(&k));
                }
                MapOp::Get(k) => {
                    prop_assert_eq!(rb.get(&k), model.get(&k));
                }
            }
            rb.check_invariants().map_err(|e| {
                TestCaseError::fail(format!("red-black invariant broken: {e}"))
            })?;
            prop_assert_eq!(rb.len(), model.len());
        }
        // Full-order agreement at the end.
        let got: Vec<(i32, i32)> = rb.iter().map(|(k, v)| (*k, *v)).collect();
        let want: Vec<(i32, i32)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn rbtree_range_matches_model(
        keys in proptest::collection::btree_set(0..1000i32, 0..100),
        lo in 0..1000i32,
        hi in 0..1000i32,
    ) {
        let (lo, hi) = (lo.min(hi), lo.max(hi));
        let mut rb = RbMap::new();
        for &k in &keys {
            rb.insert(k, k);
        }
        let got: Vec<i32> = rb.range(&lo, &hi).into_iter().map(|(k, _)| *k).collect();
        let want: Vec<i32> = keys.range(lo..=hi).copied().collect();
        prop_assert_eq!(got, want);
    }
}

#[derive(Debug, Clone)]
enum TableOp {
    Insert(i64, f64),
    /// Update the i-th live row (modulo current size).
    Update(usize, f64),
    /// Delete the i-th live row (modulo current size).
    Delete(usize),
}

fn table_op() -> impl Strategy<Value = TableOp> {
    prop_oneof![
        (0..20i64, -100.0..100.0f64).prop_map(|(k, v)| TableOp::Insert(k, v)),
        (any::<usize>(), -100.0..100.0f64).prop_map(|(i, v)| TableOp::Update(i, v)),
        any::<usize>().prop_map(TableOp::Delete),
    ]
}

proptest! {
    #[test]
    fn table_and_index_stay_coherent(ops in proptest::collection::vec(table_op(), 1..150)) {
        let schema = Schema::of(&[("k", DataType::Int), ("v", DataType::Float)]);
        let t = StandardTable::new("t", schema.into_ref());
        t.create_index("ix_k", "k", IndexKind::Hash).unwrap();
        t.create_index("ix_v", "v", IndexKind::RbTree).unwrap();
        let mut live = Vec::new(); // model: Vec<(RowId, k, v)>
        for op in ops {
            match op {
                TableOp::Insert(k, v) => {
                    let (id, _) = t.insert(vec![k.into(), v.into()]).unwrap();
                    live.push((id, k, v));
                }
                TableOp::Update(i, v) if !live.is_empty() => {
                    let i = i % live.len();
                    let (id, k, _) = live[i];
                    t.update(id, vec![k.into(), v.into()]).unwrap();
                    live[i].2 = v;
                }
                TableOp::Delete(i) if !live.is_empty() => {
                    let i = i % live.len();
                    let (id, _, _) = live.remove(i);
                    t.delete(id).unwrap();
                }
                _ => {}
            }
            prop_assert_eq!(t.len(), live.len());
            t.check_index_integrity().map_err(|e| {
                TestCaseError::fail(format!("index integrity: {e}"))
            })?;
        }
        // Every modeled row is retrievable by id and by index probe.
        for (id, k, v) in &live {
            let rec = t.get(*id).unwrap();
            prop_assert_eq!(rec.get(0).as_i64(), Some(*k));
            let hits = t.index_lookup(0, &Value::Int(*k)).unwrap();
            prop_assert!(hits.contains(id));
            let hits = t.index_lookup(1, &Value::Float(*v)).unwrap();
            prop_assert!(hits.contains(id));
        }
    }

    #[test]
    fn pinned_versions_survive_any_update_sequence(
        updates in proptest::collection::vec(-1000.0..1000.0f64, 1..50),
        pin_at in 0..49usize,
    ) {
        // Pin the version that exists after `pin_at` updates; apply the
        // rest; the pinned snapshot must still read its value, and must be
        // freed when the pin is dropped.
        let schema = Schema::of(&[("v", DataType::Float)]);
        let t = StandardTable::new("t", schema.clone().into_ref());
        let (id, _) = t.insert(vec![0.0.into()]).unwrap();

        let pin_at = pin_at % updates.len();
        let mut bound = None;
        let mut pinned_value = 0.0;
        for (i, v) in updates.iter().enumerate() {
            let (_old, new) = t.update(id, vec![(*v).into()]).unwrap();
            if i == pin_at {
                let map = StaticMap::new(vec![ColumnSource::Pointer { ptr: 0, offset: 0 }]).unwrap();
                let mut b = TempTable::new("b", schema.clone().into_ref(), map).unwrap();
                b.push(vec![new.clone()], vec![]).unwrap();
                pinned_value = *v;
                bound = Some((b, Arc::downgrade(&new)));
            }
        }
        let (b, weak) = bound.unwrap();
        prop_assert_eq!(b.value(0, 0).as_f64(), Some(pinned_value));
        // Publish the whole chain and GC with no live snapshots: superseded
        // versions are pruned from the chain, so the pinned one is now held
        // only by the bound table.
        t.publish_versions(id, 1);
        t.collect_versions(1);
        prop_assert_eq!(b.value(0, 0).as_f64(), Some(pinned_value));
        if pin_at < updates.len() - 1 {
            prop_assert!(weak.upgrade().is_some());
        }
        drop(b);
        if pin_at < updates.len() - 1 {
            prop_assert!(weak.upgrade().is_none(), "freed once the pin drops");
        }
    }
}
