//! Property-based proof that the byte meters are **exact**: after any
//! interleaving of inserts, updates, deletes, index DDL, pin churn, commit
//! publishing, snapshot pinning, and version GC, the incrementally-
//! maintained counters equal the deep-walk oracle's recompute — for the
//! table as a whole and summed across shards. Doubles as the storage-level
//! snapshot-consistency oracle: every pinned snapshot's `scan_at` image is
//! recorded at pin time and must be re-readable, bit for bit, for as long
//! as the snapshot is held, no matter how much DML and GC runs meanwhile.

use proptest::prelude::*;
use strip_storage::{
    DataType, IndexKind, RowId, Schema, StandardTable, TableMem, Value, SHARD_COUNT,
};

#[derive(Debug, Clone)]
enum MemOp {
    /// Insert a row with a variable-length symbol (string payloads make the
    /// byte model non-trivial).
    Insert(u8, f64),
    /// Update the i-th live row (modulo size) to a new symbol + price,
    /// pinning the superseded version when the flag is set.
    Update(usize, u8, f64, bool),
    /// Delete the i-th live row, pinning the final version when set.
    Delete(usize, bool),
    /// Drop the i-th held pin (modulo pin count).
    Unpin(usize),
    /// Create a hash index over `symbol` (first occurrence only).
    IndexSymbol,
    /// Create an rb-tree index over `price` (first occurrence only).
    IndexPrice,
    /// Commit: stamp every pending version with the next commit timestamp.
    Commit,
    /// Pin a snapshot at the current committed timestamp, recording its
    /// full table image as the oracle expectation.
    PinSnapshot,
    /// Drop the i-th held snapshot (modulo snapshot count).
    DropSnapshot(usize),
    /// Run version GC at the correct horizon (min pinned snapshot ts, or
    /// the commit clock when none).
    Collect,
}

fn mem_op() -> impl Strategy<Value = MemOp> {
    // The vendored prop_oneof! is unweighted; repeat the DML arms to bias
    // generation toward mutations over (idempotent) DDL.
    prop_oneof![
        (0..30u8, -100.0..100.0f64).prop_map(|(s, p)| MemOp::Insert(s, p)),
        (0..30u8, -100.0..100.0f64).prop_map(|(s, p)| MemOp::Insert(s, p)),
        (any::<usize>(), 0..30u8, -100.0..100.0f64, any::<bool>())
            .prop_map(|(i, s, p, pin)| MemOp::Update(i, s, p, pin)),
        (any::<usize>(), 0..30u8, -100.0..100.0f64, any::<bool>())
            .prop_map(|(i, s, p, pin)| MemOp::Update(i, s, p, pin)),
        (any::<usize>(), any::<bool>()).prop_map(|(i, pin)| MemOp::Delete(i, pin)),
        any::<usize>().prop_map(MemOp::Unpin),
        Just(MemOp::IndexSymbol),
        Just(MemOp::IndexPrice),
        Just(MemOp::Commit),
        Just(MemOp::Commit),
        Just(MemOp::PinSnapshot),
        any::<usize>().prop_map(MemOp::DropSnapshot),
        Just(MemOp::Collect),
        Just(MemOp::Collect),
    ]
}

/// Symbols of varying byte length so row and key sizes differ across ops.
fn symbol(s: u8) -> Value {
    Value::str("S".repeat((s % 7) as usize + 1) + &s.to_string())
}

/// Canonical, order-independent form of a snapshot image for comparison.
fn image_at(t: &StandardTable, ts: u64) -> Vec<(u64, Vec<Value>)> {
    let mut rows: Vec<(u64, Vec<Value>)> = t
        .scan_at(ts)
        .into_iter()
        .map(|(id, rec)| (id.as_u64(), rec.values().to_vec()))
        .collect();
    rows.sort();
    rows
}

proptest! {
    #[test]
    fn metered_bytes_equal_walked_bytes(ops in proptest::collection::vec(mem_op(), 1..120)) {
        let schema = Schema::of(&[("symbol", DataType::Str), ("price", DataType::Float)]);
        let t = StandardTable::new("t", schema.into_ref());
        let mut live = Vec::new(); // RowIds of live rows
        let mut touched: Vec<RowId> = Vec::new(); // every id ever handed out
        let mut pins: Vec<strip_storage::RecordRef> = Vec::new();
        // Pinned snapshots: (ts, expected image captured at pin time).
        let mut snaps: Vec<(u64, Vec<(u64, Vec<Value>)>)> = Vec::new();
        let mut clock = 0u64; // last published commit timestamp
        let (mut have_ix_sym, mut have_ix_price) = (false, false);
        for op in ops {
            match op {
                MemOp::Insert(s, p) => {
                    let (id, _) = t.insert(vec![symbol(s), p.into()]).unwrap();
                    live.push(id);
                    touched.push(id);
                }
                MemOp::Update(i, s, p, pin) if !live.is_empty() => {
                    let id = live[i % live.len()];
                    let (old, _) = t.update(id, vec![symbol(s), p.into()]).unwrap();
                    if pin {
                        pins.push(old);
                    }
                }
                MemOp::Delete(i, pin) if !live.is_empty() => {
                    let id = live.remove(i % live.len());
                    let old = t.delete(id).unwrap();
                    if pin {
                        pins.push(old);
                    }
                }
                MemOp::Unpin(i) if !pins.is_empty() => {
                    pins.remove(i % pins.len());
                }
                MemOp::IndexSymbol if !have_ix_sym => {
                    t.create_index("ix_sym", "symbol", IndexKind::Hash).unwrap();
                    have_ix_sym = true;
                }
                MemOp::IndexPrice if !have_ix_price => {
                    t.create_index("ix_price", "price", IndexKind::RbTree).unwrap();
                    have_ix_price = true;
                }
                MemOp::Commit => {
                    clock += 1;
                    for id in &touched {
                        t.publish_versions(*id, clock);
                    }
                }
                MemOp::PinSnapshot => {
                    snaps.push((clock, image_at(&t, clock)));
                }
                MemOp::DropSnapshot(i) if !snaps.is_empty() => {
                    snaps.remove(i % snaps.len());
                }
                MemOp::Collect => {
                    let horizon = snaps.iter().map(|(ts, _)| *ts).min().unwrap_or(clock);
                    t.collect_versions(horizon);
                }
                _ => {}
            }
            // The incremental meters must equal the from-scratch recompute
            // after EVERY operation, not just at the end.
            let metered = t.mem();
            let walked = t.__walk_mem();
            prop_assert_eq!(metered, walked);
            // Σ shard == table is the defining identity of the table total;
            // assert it against an independent re-read of the shards.
            let mut sum = TableMem::default();
            for shard in 0..SHARD_COUNT {
                sum.add(t.shard_mem(shard));
            }
            prop_assert_eq!(sum, t.mem());
            // Snapshot-consistency oracle: every pinned snapshot re-reads
            // its exact pin-time image, whatever DML/GC ran since.
            for (ts, expected) in &snaps {
                prop_assert_eq!(&image_at(&t, *ts), expected,
                    "snapshot at ts={} drifted", ts);
            }
        }
        // Readers drained, pins dropped, everything published + collected:
        // the version-chain class returns to the no-snapshot baseline (0).
        snaps.clear();
        pins.clear();
        clock += 1;
        for id in &touched {
            t.publish_versions(*id, clock);
        }
        t.collect_versions(clock);
        prop_assert_eq!(t.mem().version_bytes, 0);
        prop_assert_eq!(t.mem(), t.__walk_mem());
        prop_assert_eq!(t.gc_backlog(), 0);
        if have_ix_sym || have_ix_price {
            t.check_index_integrity().map_err(|e| {
                TestCaseError::fail(format!("index integrity after GC: {e}"))
            })?;
        }
    }
}

/// Mutant self-test: a GC horizon off by one collects versions a pinned
/// snapshot can still see, and the snapshot-image oracle above catches it.
/// Proves the oracle is sensitive to retention bugs, not vacuously green.
#[test]
fn gc_horizon_off_by_one_is_caught_by_snapshot_oracle() {
    let schema = Schema::of(&[("symbol", DataType::Str), ("price", DataType::Float)]);
    let t = StandardTable::new("t", schema.into_ref());
    let (id, _) = t.insert(vec!["IBM".into(), 100.0.into()]).unwrap();
    t.publish_versions(id, 1);

    // Pin a snapshot at ts=1 and record its image.
    let expected = image_at(&t, 1);
    assert_eq!(expected.len(), 1);

    // A writer supersedes the row at ts=2 while the snapshot is live.
    t.update(id, vec!["IBM".into(), 101.0.into()]).unwrap();
    t.publish_versions(id, 2);

    // Correct GC at horizon 1 retains the snapshot's version.
    t.collect_versions(1);
    assert_eq!(image_at(&t, 1), expected, "correct GC must not disturb the snapshot");

    // The off-by-one mutant collects it; the oracle comparison now fails.
    t.__collect_versions_overshoot(1);
    assert_ne!(
        image_at(&t, 1),
        expected,
        "mutant GC should have destroyed the snapshot image — oracle is blind"
    );
}
