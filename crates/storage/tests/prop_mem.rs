//! Property-based proof that the byte meters are **exact**: after any
//! interleaving of inserts, updates, deletes, index DDL, and pin churn, the
//! incrementally-maintained counters equal the deep-walk oracle's recompute
//! — for the table as a whole and summed across shards.

use proptest::prelude::*;
use strip_storage::{DataType, IndexKind, Schema, StandardTable, TableMem, Value, SHARD_COUNT};

#[derive(Debug, Clone)]
enum MemOp {
    /// Insert a row with a variable-length symbol (string payloads make the
    /// byte model non-trivial).
    Insert(u8, f64),
    /// Update the i-th live row (modulo size) to a new symbol + price,
    /// pinning the superseded version when the flag is set.
    Update(usize, u8, f64, bool),
    /// Delete the i-th live row, pinning the final version when set.
    Delete(usize, bool),
    /// Drop the i-th held pin (modulo pin count).
    Unpin(usize),
    /// Create a hash index over `symbol` (first occurrence only).
    IndexSymbol,
    /// Create an rb-tree index over `price` (first occurrence only).
    IndexPrice,
}

fn mem_op() -> impl Strategy<Value = MemOp> {
    // The vendored prop_oneof! is unweighted; repeat the DML arms to bias
    // generation toward mutations over (idempotent) DDL.
    prop_oneof![
        (0..30u8, -100.0..100.0f64).prop_map(|(s, p)| MemOp::Insert(s, p)),
        (0..30u8, -100.0..100.0f64).prop_map(|(s, p)| MemOp::Insert(s, p)),
        (any::<usize>(), 0..30u8, -100.0..100.0f64, any::<bool>())
            .prop_map(|(i, s, p, pin)| MemOp::Update(i, s, p, pin)),
        (any::<usize>(), 0..30u8, -100.0..100.0f64, any::<bool>())
            .prop_map(|(i, s, p, pin)| MemOp::Update(i, s, p, pin)),
        (any::<usize>(), any::<bool>()).prop_map(|(i, pin)| MemOp::Delete(i, pin)),
        any::<usize>().prop_map(MemOp::Unpin),
        Just(MemOp::IndexSymbol),
        Just(MemOp::IndexPrice),
    ]
}

/// Symbols of varying byte length so row and key sizes differ across ops.
fn symbol(s: u8) -> Value {
    Value::str("S".repeat((s % 7) as usize + 1) + &s.to_string())
}

proptest! {
    #[test]
    fn metered_bytes_equal_walked_bytes(ops in proptest::collection::vec(mem_op(), 1..120)) {
        let schema = Schema::of(&[("symbol", DataType::Str), ("price", DataType::Float)]);
        let t = StandardTable::new("t", schema.into_ref());
        let mut live = Vec::new(); // RowIds of live rows
        let mut pins: Vec<strip_storage::RecordRef> = Vec::new();
        let (mut have_ix_sym, mut have_ix_price) = (false, false);
        for op in ops {
            match op {
                MemOp::Insert(s, p) => {
                    let (id, _) = t.insert(vec![symbol(s), p.into()]).unwrap();
                    live.push(id);
                }
                MemOp::Update(i, s, p, pin) if !live.is_empty() => {
                    let id = live[i % live.len()];
                    let (old, _) = t.update(id, vec![symbol(s), p.into()]).unwrap();
                    if pin {
                        pins.push(old);
                    }
                }
                MemOp::Delete(i, pin) if !live.is_empty() => {
                    let id = live.remove(i % live.len());
                    let old = t.delete(id).unwrap();
                    if pin {
                        pins.push(old);
                    }
                }
                MemOp::Unpin(i) if !pins.is_empty() => {
                    pins.remove(i % pins.len());
                }
                MemOp::IndexSymbol if !have_ix_sym => {
                    t.create_index("ix_sym", "symbol", IndexKind::Hash).unwrap();
                    have_ix_sym = true;
                }
                MemOp::IndexPrice if !have_ix_price => {
                    t.create_index("ix_price", "price", IndexKind::RbTree).unwrap();
                    have_ix_price = true;
                }
                _ => {}
            }
            // The incremental meters must equal the from-scratch recompute
            // after EVERY operation, not just at the end.
            let metered = t.mem();
            let walked = t.__walk_mem();
            prop_assert_eq!(metered, walked);
            // Σ shard == table is the defining identity of the table total;
            // assert it against an independent re-read of the shards.
            let mut sum = TableMem::default();
            for shard in 0..SHARD_COUNT {
                sum.add(t.shard_mem(shard));
            }
            prop_assert_eq!(sum, t.mem());
        }
        // With every pin dropped, the version chain owes nothing.
        pins.clear();
        prop_assert_eq!(t.mem().version_bytes, 0);
        prop_assert_eq!(t.mem(), t.__walk_mem());
    }
}
