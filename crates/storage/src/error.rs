//! Error type for the storage engine.

use std::fmt;

/// Errors produced by the storage layer.
///
/// The storage engine is deliberately strict: schema violations, unknown
/// names, and type mismatches are surfaced immediately rather than coerced,
/// because the rule engine relies on bound-table schemas being stable across
/// batched firings (paper §2: bound tables merged across rules "must be
/// defined identically").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A table with this name already exists in the catalog.
    TableExists(String),
    /// No table with this name exists in the catalog.
    NoSuchTable(String),
    /// No column with this name exists in the schema.
    NoSuchColumn(String),
    /// An index with this name already exists.
    IndexExists(String),
    /// No index with this name exists.
    NoSuchIndex(String),
    /// A value's runtime type does not match the column's declared type.
    TypeMismatch {
        column: String,
        expected: &'static str,
        got: &'static str,
    },
    /// A row id does not refer to a live record.
    DeadRow(u64),
    /// The row arity does not match the schema arity.
    ArityMismatch { expected: usize, got: usize },
    /// Two schemas that must be identical (e.g. bound tables merged by the
    /// unique-transaction manager) differ.
    SchemaMismatch(String),
    /// Catch-all for invariant violations with a message.
    Invariant(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::TableExists(n) => write!(f, "table `{n}` already exists"),
            StorageError::NoSuchTable(n) => write!(f, "no such table `{n}`"),
            StorageError::NoSuchColumn(n) => write!(f, "no such column `{n}`"),
            StorageError::IndexExists(n) => write!(f, "index `{n}` already exists"),
            StorageError::NoSuchIndex(n) => write!(f, "no such index `{n}`"),
            StorageError::TypeMismatch {
                column,
                expected,
                got,
            } => write!(
                f,
                "type mismatch for column `{column}`: expected {expected}, got {got}"
            ),
            StorageError::DeadRow(id) => write!(f, "row id {id} does not refer to a live record"),
            StorageError::ArityMismatch { expected, got } => {
                write!(f, "row arity mismatch: expected {expected}, got {got}")
            }
            StorageError::SchemaMismatch(m) => write!(f, "schema mismatch: {m}"),
            StorageError::Invariant(m) => write!(f, "storage invariant violated: {m}"),
        }
    }
}

impl std::error::Error for StorageError {}

/// Convenience alias used throughout the storage crate.
pub type Result<T> = std::result::Result<T, StorageError>;
