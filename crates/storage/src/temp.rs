//! Temporary tables: intermediate results, transition tables, bound tables.
//!
//! Paper §6.1 (after \[Rou82\]): instead of copying attribute values, a
//! temporary tuple stores **one pointer per standard tuple that contributes
//! at least one attribute**, plus materialized slots for aggregate, computed,
//! or timestamp attributes whose values "don't exist anywhere else and hence
//! cannot be pointed to". A per-table **static map** records, for each
//! visible column, which pointer to follow and the attribute offset within
//! the referenced record — or which materialized slot to read.
//!
//! Because each pointer is an `Arc<RecordData>`, holding a temporary tuple
//! pins the exact record *versions* that existed when the tuple was built:
//! this is what makes bound tables read the condition-time snapshot even
//! though the action transaction runs later without locks held (§6.1).

use crate::error::{Result, StorageError};
use crate::schema::SchemaRef;
use crate::table::RecordRef;
use crate::value::Value;
use std::sync::Arc;

/// Where one visible column of a temporary table gets its value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnSource {
    /// Follow `ptr`-th record pointer, read the attribute at `offset`.
    Pointer { ptr: usize, offset: usize },
    /// Read the `slot`-th materialized value stored in the tuple itself.
    Slot(usize),
}

/// The static map: one [`ColumnSource`] per visible column, plus the tuple
/// layout arities. Built once per temporary table (§6.1: "a static mapping
/// is built when the temporary table is created").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticMap {
    sources: Vec<ColumnSource>,
    n_ptrs: usize,
    n_slots: usize,
}

impl StaticMap {
    /// Build and validate a static map. `n_ptrs`/`n_slots` are inferred from
    /// the largest indexes used; every pointer and slot must be referenced
    /// contiguously from zero.
    pub fn new(sources: Vec<ColumnSource>) -> Result<StaticMap> {
        let mut ptr_seen = Vec::new();
        let mut slot_seen = Vec::new();
        for s in &sources {
            match *s {
                ColumnSource::Pointer { ptr, .. } => {
                    if ptr_seen.len() <= ptr {
                        ptr_seen.resize(ptr + 1, false);
                    }
                    ptr_seen[ptr] = true;
                }
                ColumnSource::Slot(slot) => {
                    if slot_seen.len() <= slot {
                        slot_seen.resize(slot + 1, false);
                    }
                    slot_seen[slot] = true;
                }
            }
        }
        if ptr_seen.iter().any(|b| !b) {
            return Err(StorageError::Invariant(
                "static map references pointers non-contiguously".into(),
            ));
        }
        if slot_seen.iter().any(|b| !b) {
            return Err(StorageError::Invariant(
                "static map references slots non-contiguously".into(),
            ));
        }
        Ok(StaticMap {
            n_ptrs: ptr_seen.len(),
            n_slots: slot_seen.len(),
            sources,
        })
    }

    /// A map where every column is a materialized slot (fully-copied rows).
    /// Used for computed query outputs (projections with expressions) and as
    /// the ablation baseline for the pointer scheme.
    pub fn all_slots(arity: usize) -> StaticMap {
        StaticMap {
            sources: (0..arity).map(ColumnSource::Slot).collect(),
            n_ptrs: 0,
            n_slots: arity,
        }
    }

    /// Sources per visible column.
    pub fn sources(&self) -> &[ColumnSource] {
        &self.sources
    }

    /// Number of record pointers each tuple carries.
    pub fn n_ptrs(&self) -> usize {
        self.n_ptrs
    }

    /// Number of materialized slots each tuple carries.
    pub fn n_slots(&self) -> usize {
        self.n_slots
    }
}

/// One temporary tuple: record pointers + materialized slots.
#[derive(Debug, Clone)]
pub struct TempTuple {
    ptrs: Box<[RecordRef]>,
    slots: Box<[Value]>,
}

impl TempTuple {
    /// The pinned record versions.
    pub fn ptrs(&self) -> &[RecordRef] {
        &self.ptrs
    }

    /// The materialized values.
    pub fn slots(&self) -> &[Value] {
        &self.slots
    }
}

/// A temporary table.
///
/// ```
/// use strip_storage::{DataType, Schema, TempTable};
///
/// let schema = Schema::of(&[("comp", DataType::Str), ("diff", DataType::Float)]);
/// let mut t = TempTable::materialized("matches", schema.into_ref());
/// t.push_row(vec!["C1".into(), 0.5.into()]).unwrap();
/// assert_eq!(t.len(), 1);
/// assert_eq!(t.value(0, 0).as_str(), Some("C1"));
/// ```
#[derive(Debug, Clone)]
pub struct TempTable {
    name: String,
    schema: SchemaRef,
    map: Arc<StaticMap>,
    tuples: Vec<TempTuple>,
    /// Incrementally-maintained byte footprint of `tuples` under the model
    /// of [`crate::mem`]: per tuple, a fixed header plus one pointer word
    /// per pin plus the materialized slot values. Pinned record versions
    /// themselves are accounted at their owning table.
    tuple_bytes: u64,
}

impl TempTable {
    /// Create an empty temporary table with the given visible schema and
    /// static map. The map must have one source per schema column.
    pub fn new(name: impl Into<String>, schema: SchemaRef, map: StaticMap) -> Result<TempTable> {
        if map.sources.len() != schema.arity() {
            return Err(StorageError::Invariant(format!(
                "static map has {} sources but schema has {} columns",
                map.sources.len(),
                schema.arity()
            )));
        }
        Ok(TempTable {
            name: name.into(),
            schema,
            map: Arc::new(map),
            tuples: Vec::new(),
            tuple_bytes: 0,
        })
    }

    /// Create a fully-materialized temporary table (every column a slot).
    pub fn materialized(name: impl Into<String>, schema: SchemaRef) -> TempTable {
        let arity = schema.arity();
        TempTable {
            name: name.into(),
            schema,
            map: Arc::new(StaticMap::all_slots(arity)),
            tuples: Vec::new(),
            tuple_bytes: 0,
        }
    }

    /// Table name (e.g. the `bind as` name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename (bound tables are renamed at bind time, §2).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Visible schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// The static map.
    pub fn static_map(&self) -> &StaticMap {
        &self.map
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Append a tuple. Arities must match the static map.
    pub fn push(&mut self, ptrs: Vec<RecordRef>, slots: Vec<Value>) -> Result<()> {
        if ptrs.len() != self.map.n_ptrs || slots.len() != self.map.n_slots {
            return Err(StorageError::Invariant(format!(
                "temp tuple layout mismatch in `{}`: got {} ptrs / {} slots, want {} / {}",
                self.name,
                ptrs.len(),
                slots.len(),
                self.map.n_ptrs,
                self.map.n_slots
            )));
        }
        let tuple = TempTuple {
            ptrs: ptrs.into_boxed_slice(),
            slots: slots.into_boxed_slice(),
        };
        self.tuple_bytes += tuple_bytes(&tuple);
        self.tuples.push(tuple);
        Ok(())
    }

    /// Convenience for fully-materialized tables: push a plain row.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<()> {
        if self.map.n_ptrs != 0 {
            return Err(StorageError::Invariant(format!(
                "push_row on pointer-mapped temp table `{}`",
                self.name
            )));
        }
        let row = self.schema.check_row(row)?;
        self.push(Vec::new(), row)
    }

    /// Resolve the value of `col` in tuple `row` through the static map.
    pub fn value(&self, row: usize, col: usize) -> &Value {
        let t = &self.tuples[row];
        match self.map.sources[col] {
            ColumnSource::Pointer { ptr, offset } => t.ptrs[ptr].get(offset),
            ColumnSource::Slot(slot) => &t.slots[slot],
        }
    }

    /// Materialize tuple `row` as a plain value vector.
    pub fn row_values(&self, row: usize) -> Vec<Value> {
        (0..self.schema.arity())
            .map(|c| self.value(row, c).clone())
            .collect()
    }

    /// Iterate materialized rows.
    pub fn iter_rows(&self) -> impl Iterator<Item = Vec<Value>> + '_ {
        (0..self.len()).map(|i| self.row_values(i))
    }

    /// Raw tuples (pointer/slot view), for tests of the §6.1 layout.
    pub fn tuples(&self) -> &[TempTuple] {
        &self.tuples
    }

    /// Append all tuples of `other`. This is the unique-transaction merge
    /// step (paper §2: "the tuples of the bound tables of the new rule firing
    /// are appended to those of the bound tables of the currently enqueued
    /// transaction"). Schemas and static maps must be identical — the paper
    /// requires bound tables merged across rules to "be defined identically".
    pub fn append_from(&mut self, other: &TempTable) -> Result<()> {
        if self.schema != other.schema {
            return Err(StorageError::SchemaMismatch(format!(
                "cannot merge bound table `{}` {} into `{}` {}",
                other.name, other.schema, self.name, self.schema
            )));
        }
        if *self.map != *other.map {
            return Err(StorageError::SchemaMismatch(format!(
                "bound tables `{}` and `{}` have different static maps",
                other.name, self.name
            )));
        }
        self.tuples.extend(other.tuples.iter().cloned());
        self.tuple_bytes += other.tuple_bytes;
        Ok(())
    }

    /// Total strong-reference pins this table holds on record versions.
    /// Test/diagnostic aid for the §6.1 retention scheme.
    pub fn pinned_versions(&self) -> usize {
        self.tuples.iter().map(|t| t.ptrs.len()).sum()
    }

    /// Byte footprint of this table's own tuples (headers + pointer words +
    /// materialized slot values). Maintained incrementally on every push
    /// and merge; the versions pinned through the pointers are charged at
    /// the owning standard table, never here (no double counting).
    pub fn mem_bytes(&self) -> u64 {
        self.tuple_bytes
    }

    /// Deep-walk size oracle: recompute [`Self::mem_bytes`] from scratch.
    #[doc(hidden)]
    pub fn __walk_mem(&self) -> u64 {
        self.tuples.iter().map(tuple_bytes).sum()
    }
}

/// Modeled bytes of one temporary tuple.
fn tuple_bytes(t: &TempTuple) -> u64 {
    crate::mem::TEMP_TUPLE_HEADER_BYTES
        + t.ptrs.len() as u64 * crate::mem::TEMP_PTR_BYTES
        + crate::mem::row_bytes(&t.slots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::table::StandardTable;
    use crate::value::DataType;
    use std::sync::Arc;

    /// Build the paper's worked example: V(A,B,C,D,E) as a join of
    /// R(A,B,C), S(C,D), T(D,E). S contributes no attributes, so V's tuples
    /// store pointers only to R and T.
    #[test]
    fn paper_static_map_example() {
        let r_schema = Schema::of(&[
            ("a", DataType::Int),
            ("b", DataType::Int),
            ("c", DataType::Int),
        ]);
        let t_schema = Schema::of(&[("d", DataType::Int), ("e", DataType::Int)]);
        let r = StandardTable::new("r", r_schema.into_ref());
        let t = StandardTable::new("t", t_schema.into_ref());
        let (_, r_rec) = r
            .insert(vec![1i64.into(), 2i64.into(), 3i64.into()])
            .unwrap();
        let (_, t_rec) = t.insert(vec![4i64.into(), 5i64.into()]).unwrap();

        let v_schema = Schema::of(&[
            ("a", DataType::Int),
            ("b", DataType::Int),
            ("c", DataType::Int),
            ("d", DataType::Int),
            ("e", DataType::Int),
        ]);
        // Static map: [(R,θA),(R,θB),(R,θC),(T,θD),(T,θE)]
        let map = StaticMap::new(vec![
            ColumnSource::Pointer { ptr: 0, offset: 0 },
            ColumnSource::Pointer { ptr: 0, offset: 1 },
            ColumnSource::Pointer { ptr: 0, offset: 2 },
            ColumnSource::Pointer { ptr: 1, offset: 0 },
            ColumnSource::Pointer { ptr: 1, offset: 1 },
        ])
        .unwrap();
        assert_eq!(map.n_ptrs(), 2, "no pointer to S is stored");
        let mut v = TempTable::new("v", v_schema.into_ref(), map).unwrap();
        v.push(vec![r_rec, t_rec], vec![]).unwrap();
        assert_eq!(
            v.row_values(0),
            vec![
                1i64.into(),
                2i64.into(),
                3i64.into(),
                4i64.into(),
                5i64.into()
            ]
        );
        assert_eq!(v.pinned_versions(), 2);
    }

    #[test]
    fn pinned_version_survives_table_update() {
        let schema = Schema::of(&[("symbol", DataType::Str), ("price", DataType::Float)]);
        let stocks = StandardTable::new("stocks", schema.clone().into_ref());
        let (id, rec) = stocks.insert(vec!["IBM".into(), 100.0.into()]).unwrap();

        let map = StaticMap::new(vec![
            ColumnSource::Pointer { ptr: 0, offset: 0 },
            ColumnSource::Pointer { ptr: 0, offset: 1 },
        ])
        .unwrap();
        let mut bound = TempTable::new("matches", schema.into_ref(), map).unwrap();
        bound.push(vec![rec], vec![]).unwrap();

        // Update the base row: the bound table must keep reading the old
        // version (condition-time snapshot).
        stocks.update(id, vec!["IBM".into(), 200.0.into()]).unwrap();
        assert_eq!(bound.value(0, 1).as_f64(), Some(100.0));
        assert_eq!(stocks.get(id).unwrap().get(1).as_f64(), Some(200.0));
    }

    #[test]
    fn old_version_freed_when_bound_table_retires() {
        let schema = Schema::of(&[("x", DataType::Int)]);
        let t = StandardTable::new("t", schema.clone().into_ref());
        let (id, old_rec) = t.insert(vec![1i64.into()]).unwrap();
        let weak = Arc::downgrade(&old_rec);

        let map = StaticMap::new(vec![ColumnSource::Pointer { ptr: 0, offset: 0 }]).unwrap();
        let mut bound = TempTable::new("b", schema.into_ref(), map).unwrap();
        bound.push(vec![old_rec], vec![]).unwrap();
        drop(t.update(id, vec![2i64.into()]).unwrap());
        // Publish and GC the chain so the superseded version is held only
        // by the bound table (the chain itself retains it until collected).
        t.publish_versions(id, 1);
        t.collect_versions(1);

        assert!(weak.upgrade().is_some(), "pinned by bound table");
        drop(bound);
        assert!(
            weak.upgrade().is_none(),
            "freed once last bound table retires"
        );
    }

    #[test]
    fn mixed_pointer_and_slot_columns() {
        let schema = Schema::of(&[("x", DataType::Int), ("sum", DataType::Float)]);
        let base = Schema::of(&[("x", DataType::Int)]);
        let t = StandardTable::new("t", base.into_ref());
        let (_, rec) = t.insert(vec![7i64.into()]).unwrap();
        let map = StaticMap::new(vec![
            ColumnSource::Pointer { ptr: 0, offset: 0 },
            ColumnSource::Slot(0),
        ])
        .unwrap();
        let mut tmp = TempTable::new("tmp", schema.into_ref(), map).unwrap();
        tmp.push(vec![rec], vec![Value::Float(1.5)]).unwrap();
        assert_eq!(tmp.value(0, 0).as_i64(), Some(7));
        assert_eq!(tmp.value(0, 1).as_f64(), Some(1.5));
    }

    #[test]
    fn append_from_requires_identical_definition() {
        let s1 = Schema::of(&[("a", DataType::Int)]).into_ref();
        let s2 = Schema::of(&[("b", DataType::Int)]).into_ref();
        let mut t1 = TempTable::materialized("m", s1.clone());
        let t2 = TempTable::materialized("m", s2);
        assert!(matches!(
            t1.append_from(&t2),
            Err(StorageError::SchemaMismatch(_))
        ));
        let mut t3 = TempTable::materialized("m", s1.clone());
        t3.push_row(vec![1i64.into()]).unwrap();
        let mut t4 = TempTable::materialized("m", s1);
        t4.push_row(vec![2i64.into()]).unwrap();
        t3.append_from(&t4).unwrap();
        assert_eq!(t3.len(), 2);
        assert_eq!(t3.value(1, 0).as_i64(), Some(2));
    }

    #[test]
    fn push_arity_checks() {
        let s = Schema::of(&[("a", DataType::Int)]).into_ref();
        let mut t = TempTable::materialized("m", s);
        assert!(t.push(vec![], vec![]).is_err());
        assert!(t.push_row(vec![1i64.into(), 2i64.into()]).is_err());
        assert!(t.push_row(vec!["bad".into()]).is_err());
    }

    #[test]
    fn non_contiguous_static_map_rejected() {
        assert!(StaticMap::new(vec![ColumnSource::Pointer { ptr: 1, offset: 0 }]).is_err());
        assert!(StaticMap::new(vec![ColumnSource::Slot(2)]).is_err());
    }

    #[test]
    fn mem_bytes_tracks_pushes_and_merges_exactly() {
        let s = Schema::of(&[("sym", DataType::Str), ("v", DataType::Float)]).into_ref();
        let mut t = TempTable::materialized("m", s.clone());
        assert_eq!(t.mem_bytes(), 0);
        t.push_row(vec!["IBM".into(), 1.0.into()]).unwrap();
        t.push_row(vec!["SUNW".into(), 2.0.into()]).unwrap();
        assert_eq!(t.mem_bytes(), t.__walk_mem());
        assert!(t.mem_bytes() > 0);
        let mut merged = TempTable::materialized("m", s);
        merged.push_row(vec!["HWP".into(), 3.0.into()]).unwrap();
        merged.append_from(&t).unwrap();
        assert_eq!(merged.mem_bytes(), merged.__walk_mem());
        // Pointer tuples charge header + pointer words, not the pinned
        // record's bytes (those stay with the owning standard table).
        let base = Schema::of(&[("x", DataType::Int)]);
        let st = StandardTable::new("t", base.clone().into_ref());
        let (_, rec) = st.insert(vec![7i64.into()]).unwrap();
        let map = StaticMap::new(vec![ColumnSource::Pointer { ptr: 0, offset: 0 }]).unwrap();
        let mut ptr_t = TempTable::new("b", base.into_ref(), map).unwrap();
        ptr_t.push(vec![rec], vec![]).unwrap();
        assert_eq!(
            ptr_t.mem_bytes(),
            crate::mem::TEMP_TUPLE_HEADER_BYTES + crate::mem::TEMP_PTR_BYTES
        );
        assert_eq!(ptr_t.mem_bytes(), ptr_t.__walk_mem());
    }
}
