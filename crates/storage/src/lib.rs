//! # strip-storage
//!
//! The in-memory storage engine of the STRIP reproduction (paper §6.1).
//!
//! * [`value`] / [`schema`] — fixed-width runtime values and table schemas.
//! * [`table`] — standard tables as **versioned** record stores: updates
//!   never modify a record in place; old versions stay alive while any
//!   transition/bound table references them (reference counting via `Arc`).
//! * [`temp`] — temporary tables with pointer-array tuples and static
//!   column maps (the Roussopoulos scheme the paper adopts).
//! * [`index`] / [`rbtree`] — hash and red-black-tree secondary indexes.
//! * [`catalog`] — named tables and view definitions.
//! * [`meter`] — the operation-accounting vocabulary shared by every layer;
//!   the cost model itself lives in `strip-txn`.
//! * [`mem`] — the exact byte-metering model: every table/index/version/
//!   temp-tuple byte is priced by one deterministic model, maintained
//!   incrementally and pinned against a deep-walk oracle.

pub mod catalog;
pub mod error;
pub mod index;
pub mod mem;
pub mod meter;
pub mod rbtree;
pub mod schema;
pub mod table;
pub mod temp;
pub mod value;

pub use catalog::{Catalog, TableRef, ViewDef};
pub use error::{Result, StorageError};
pub use index::{Index, IndexKind};
pub use mem::{record_bytes, row_bytes, value_bytes, TableMem};
pub use meter::{CountingMeter, Meter, NullMeter, Op};
pub use schema::{Column, Schema, SchemaRef};
pub use table::{
    estimate_distinct, GcStats, LatchObserver, RecordData, RecordRef, RowId, StandardTable,
    TableIndex, SHARD_BITS, SHARD_COUNT, TS_PENDING,
};
pub use temp::{ColumnSource, StaticMap, TempTable, TempTuple};
pub use value::{DataType, Value};
