//! Runtime values and column data types.
//!
//! STRIP v2.0 only supported fixed-length fields (paper §6.1). We keep the
//! same spirit: the value set is small and every value is cheap to copy.
//! Strings are interned-ish via `Arc<str>` so that copying a symbol between
//! tuples never reallocates the character data.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// Declared type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float (prices, weights).
    Float,
    /// Symbol / fixed-length string (stock tickers, composite names).
    Str,
    /// Boolean.
    Bool,
    /// Microseconds since an arbitrary epoch. Used for `commit_time` and
    /// `execute_order`-style system columns as well as user timestamps.
    Timestamp,
}

impl DataType {
    /// Human-readable name, used in error messages.
    pub fn name(self) -> &'static str {
        match self {
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Str => "str",
            DataType::Bool => "bool",
            DataType::Timestamp => "timestamp",
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A runtime value. `Null` is permitted in intermediate query results (e.g.
/// aggregates over empty groups) even though base tables are non-nullable.
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Int(i64),
    Float(f64),
    Str(Arc<str>),
    Bool(bool),
    Timestamp(u64),
}

impl Value {
    /// Construct a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// The runtime type of this value, or `None` for `Null`.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
            Value::Bool(_) => Some(DataType::Bool),
            Value::Timestamp(_) => Some(DataType::Timestamp),
        }
    }

    /// Name of the runtime type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self.data_type() {
            Some(t) => t.name(),
            None => "null",
        }
    }

    /// True if this value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view: ints and timestamps widen to f64. Used by arithmetic
    /// and aggregation.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Timestamp(t) => Some(*t as f64),
            _ => None,
        }
    }

    /// Integer view (no float truncation; floats are rejected).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Timestamp(t) => Some(*t as i64),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Checks whether this value may be stored in a column of type `ty`.
    /// Ints are implicitly widened into float columns, matching the parser's
    /// treatment of numeric literals.
    pub fn conforms_to(&self, ty: DataType) -> bool {
        matches!(
            (self, ty),
            (
                Value::Int(_),
                DataType::Int | DataType::Float | DataType::Timestamp
            ) | (Value::Float(_), DataType::Float)
                | (Value::Str(_), DataType::Str)
                | (Value::Bool(_), DataType::Bool)
                | (Value::Timestamp(_), DataType::Timestamp | DataType::Int)
        )
    }

    /// Coerce into the declared column type (only the widenings accepted by
    /// [`Value::conforms_to`]).
    pub fn coerce(self, ty: DataType) -> Value {
        match (self, ty) {
            (Value::Int(i), DataType::Float) => Value::Float(i as f64),
            (Value::Int(i), DataType::Timestamp) => Value::Timestamp(i as u64),
            (Value::Timestamp(t), DataType::Int) => Value::Int(t as i64),
            (v, _) => v,
        }
    }

    /// Append a self-describing binary encoding of this value (one tag byte
    /// followed by a fixed- or length-prefixed payload). This is the
    /// serialization used by the write-ahead log.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        match self {
            Value::Null => buf.push(0),
            Value::Int(i) => {
                buf.push(1);
                buf.extend_from_slice(&i.to_le_bytes());
            }
            Value::Float(f) => {
                buf.push(2);
                buf.extend_from_slice(&f.to_bits().to_le_bytes());
            }
            Value::Str(s) => {
                buf.push(3);
                buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
                buf.extend_from_slice(s.as_bytes());
            }
            Value::Bool(b) => {
                buf.push(4);
                buf.push(*b as u8);
            }
            Value::Timestamp(t) => {
                buf.push(5);
                buf.extend_from_slice(&t.to_le_bytes());
            }
        }
    }

    /// Decode one value from `buf` starting at `*pos`, advancing `*pos` past
    /// it. Returns `None` on truncation or an unknown tag (a torn record).
    pub fn decode_from(buf: &[u8], pos: &mut usize) -> Option<Value> {
        fn take<'a>(buf: &'a [u8], pos: &mut usize, n: usize) -> Option<&'a [u8]> {
            let s = buf.get(*pos..*pos + n)?;
            *pos += n;
            Some(s)
        }
        let tag = *buf.get(*pos)?;
        *pos += 1;
        match tag {
            0 => Some(Value::Null),
            1 => Some(Value::Int(i64::from_le_bytes(
                take(buf, pos, 8)?.try_into().ok()?,
            ))),
            2 => Some(Value::Float(f64::from_bits(u64::from_le_bytes(
                take(buf, pos, 8)?.try_into().ok()?,
            )))),
            3 => {
                let len = u32::from_le_bytes(take(buf, pos, 4)?.try_into().ok()?) as usize;
                let bytes = take(buf, pos, len)?;
                Some(Value::Str(Arc::from(std::str::from_utf8(bytes).ok()?)))
            }
            4 => Some(Value::Bool(*take(buf, pos, 1)?.first()? != 0)),
            5 => Some(Value::Timestamp(u64::from_le_bytes(
                take(buf, pos, 8)?.try_into().ok()?,
            ))),
            _ => None,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp_total(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_total(other)
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        std::mem::discriminant(self).hash(state);
        match self {
            Value::Null => {}
            Value::Int(i) => i.hash(state),
            // Hash floats by their bit pattern, normalizing -0.0 so that
            // `-0.0 == 0.0` implies equal hashes, consistent with cmp_total.
            Value::Float(f) => {
                let f = if *f == 0.0 { 0.0f64 } else { *f };
                f.to_bits().hash(state)
            }
            Value::Str(s) => s.hash(state),
            Value::Bool(b) => b.hash(state),
            Value::Timestamp(t) => t.hash(state),
        }
    }
}

impl Value {
    /// Total order over all values: Null < Bool < numeric < Str < Timestamp,
    /// with NaN ordered after every other float (total float order).
    /// Ints and floats compare numerically so mixed-type predicates behave
    /// as SQL users expect.
    fn cmp_total(&self, other: &Value) -> Ordering {
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Null => 0,
                Bool(_) => 1,
                Int(_) | Float(_) => 2,
                Str(_) => 3,
                Timestamp(_) => 4,
            }
        }
        // Normalize -0.0 to 0.0 so `-0.0 == 0.0` (SQL semantics) while NaN
        // stays totally ordered via total_cmp.
        fn norm(f: f64) -> f64 {
            if f == 0.0 {
                0.0
            } else {
                f
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => norm(*a).total_cmp(&norm(*b)),
            (Int(a), Float(b)) => (*a as f64).total_cmp(&norm(*b)),
            (Float(a), Int(b)) => norm(*a).total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.as_ref().cmp(b.as_ref()),
            (Timestamp(a), Timestamp(b)) => a.cmp(b),
            _ => rank(self).cmp(&rank(other)),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Timestamp(t) => write!(f, "@{t}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn h(v: &Value) -> u64 {
        let mut s = DefaultHasher::new();
        v.hash(&mut s);
        s.finish()
    }

    #[test]
    fn int_float_compare_numerically() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert!(Value::Int(2) < Value::Float(2.5));
        assert!(Value::Float(2.5) < Value::Int(3));
    }

    #[test]
    fn nan_is_totally_ordered() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert!(Value::Float(f64::INFINITY) < nan);
    }

    #[test]
    fn negative_zero_equals_zero_and_hashes_equal() {
        let a = Value::Float(0.0);
        let b = Value::Float(-0.0);
        assert_eq!(a, b);
        assert_eq!(h(&a), h(&b));
    }

    #[test]
    fn cross_type_rank_is_stable() {
        assert!(Value::Null < Value::Bool(false));
        assert!(Value::Bool(true) < Value::Int(0));
        assert!(Value::Int(i64::MAX) < Value::str(""));
        assert!(Value::str("zzz") < Value::Timestamp(0));
    }

    #[test]
    fn coercions() {
        assert_eq!(Value::Int(3).coerce(DataType::Float), Value::Float(3.0));
        assert!(Value::Int(1).conforms_to(DataType::Float));
        assert!(!Value::Float(1.0).conforms_to(DataType::Int));
        assert!(Value::str("x").conforms_to(DataType::Str));
    }

    #[test]
    fn views() {
        assert_eq!(Value::Int(7).as_f64(), Some(7.0));
        assert_eq!(Value::Float(1.5).as_f64(), Some(1.5));
        assert_eq!(Value::str("ab").as_str(), Some("ab"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Timestamp(9).as_i64(), Some(9));
        assert_eq!(Value::str("x").as_f64(), None);
    }

    #[test]
    fn encode_decode_round_trip() {
        let values = vec![
            Value::Null,
            Value::Int(-42),
            Value::Float(3.25),
            Value::str("IBM"),
            Value::Bool(true),
            Value::Timestamp(1_000_000),
        ];
        let mut buf = Vec::new();
        for v in &values {
            v.encode_into(&mut buf);
        }
        let mut pos = 0;
        for v in &values {
            assert_eq!(Value::decode_from(&buf, &mut pos).as_ref(), Some(v));
        }
        assert_eq!(pos, buf.len());
        // Truncation is detected, not panicked on.
        let mut pos = 0;
        assert!(Value::decode_from(&buf[..buf.len() - 1], &mut pos).is_some());
        let mut short = buf.clone();
        short.truncate(3); // mid-Int
        let mut pos = 0;
        assert_eq!(Value::decode_from(&short, &mut pos), Some(Value::Null));
        assert!(Value::decode_from(&short, &mut pos).is_none());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(-4).to_string(), "-4");
        assert_eq!(Value::str("IBM").to_string(), "IBM");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Timestamp(5).to_string(), "@5");
    }
}
