//! Standard tables: versioned, in-memory record stores with sharded latches.
//!
//! Paper §6.1: "standard table records are not changed in place — a new
//! record is created and linked into the relation. The old record is removed
//! from the relation but kept in the system until the last bound table that
//! references it is retired, as determined by a reference counting scheme."
//!
//! We extend the paper's reference-counted retention into full **version
//! chains**: each row slot holds an ordered chain of record versions, newest
//! last, each stamped with the commit timestamp of the transaction that
//! produced it (or [`TS_PENDING`] while that transaction is still running).
//! Writers under strict 2PL always act on the newest version, exactly as
//! before; read-only transactions pinned to a snapshot timestamp `ts`
//! resolve the newest version with `commit_ts <= ts` via [`get_at`] /
//! [`scan_at`] without touching the lock manager. Superseded versions are
//! reclaimed by [`collect_versions`] once no live snapshot can see them
//! (the caller supplies the GC horizon = minimum active snapshot ts).
//!
//! [`get_at`]: StandardTable::get_at
//! [`scan_at`]: StandardTable::scan_at
//! [`collect_versions`]: StandardTable::collect_versions
//!
//! # Sharding and latch discipline
//!
//! Row storage is split into [`SHARD_COUNT`] independently-latched buckets
//! so writers on different rows never contend on the same `RwLock` (the
//! PTA's thousands of distinct-symbol quote transactions are the motivating
//! workload). A [`RowId`]'s slot word packs the shard into its low
//! [`SHARD_BITS`] bits, so locating a row never consults shared state.
//! Secondary indexes carry their own latches. The latch order is
//! **shard before index**: version GC (and the integrity walker) hold a
//! shard latch while taking an index latch, so postings and the chain they
//! describe change atomically; no code path ever takes latches in the
//! opposite order (probes acquire and fully release the index latch before
//! touching a shard), so physical latching cannot deadlock. *Logical*
//! consistency between a row and its index entries remains the lock
//! manager's job (strict 2PL over key resources) for read-write
//! transactions; snapshot readers instead revalidate the fetched version's
//! key against the probe key, because index postings for superseded
//! versions are only removed at GC time.

use crate::error::{Result, StorageError};
use crate::index::{Index, IndexKind};
use crate::mem::{self, TableMem};
use crate::schema::SchemaRef;
use crate::value::Value;
use parking_lot::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::collections::{BTreeSet, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::time::Instant;

/// Callback invoked when a shard latch acquisition was *contended*:
/// `(resource_label, wait_us)` with labels of the form `table/shard<i>`.
/// Defined here (the bottom of the crate stack) as a plain callback so
/// storage needs no dependency on the observability crate; `strip-core`
/// installs one that feeds the obs contention map.
pub type LatchObserver = Arc<dyn Fn(&str, u64) + Send + Sync>;

/// Monotonic version-id source, global across tables so tests can track
/// version identity.
static VERSION_IDS: AtomicU64 = AtomicU64::new(1);

/// Number of independently-latched row buckets per table (power of two).
pub const SHARD_COUNT: usize = 16;
/// Bits of a `RowId` slot word that select the shard.
pub const SHARD_BITS: u32 = SHARD_COUNT.trailing_zeros();

/// Commit timestamp of a version whose transaction has not committed yet.
/// `u64::MAX`, so a pending version is invisible to every snapshot (all
/// real snapshot timestamps are smaller) while still being "the newest
/// version" for strict-2PL readers, which ignore timestamps entirely.
pub const TS_PENDING: u64 = u64::MAX;

/// One immutable version of a record. Attribute values are stored inline
/// (paper §6.1: standard tuples store values, not pointers).
#[derive(Debug)]
pub struct RecordData {
    /// Globally unique id of this version, for diagnostics and tests.
    version_id: u64,
    values: Box<[Value]>,
}

impl RecordData {
    fn new(values: Vec<Value>) -> Arc<RecordData> {
        Arc::new(RecordData {
            version_id: VERSION_IDS.fetch_add(1, Ordering::Relaxed),
            values: values.into_boxed_slice(),
        })
    }

    /// The attribute values of this version.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Value at a column offset.
    pub fn get(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// Globally unique version id.
    pub fn version_id(&self) -> u64 {
        self.version_id
    }
}

/// Shared handle to one record version.
pub type RecordRef = Arc<RecordData>;

/// Identifies a row slot within one table. Carries a generation counter so a
/// stale `RowId` for a reclaimed-then-reused slot is detected instead of
/// silently reading an unrelated row. The slot word packs the owning shard
/// into its low [`SHARD_BITS`] bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RowId {
    slot: u32,
    generation: u32,
}

impl RowId {
    fn pack(shard: usize, local: u32, generation: u32) -> RowId {
        RowId {
            slot: (local << SHARD_BITS) | shard as u32,
            generation,
        }
    }

    fn shard(self) -> usize {
        (self.slot as usize) & (SHARD_COUNT - 1)
    }

    fn local(self) -> u32 {
        self.slot >> SHARD_BITS
    }

    /// Packed representation for error messages.
    pub fn as_u64(self) -> u64 {
        ((self.slot as u64) << 32) | self.generation as u64
    }
}

impl fmt::Display for RowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.slot, self.generation)
    }
}

/// One entry of a slot's version chain. `rec: None` is a **tombstone**: the
/// row was deleted by the transaction that committed at `commit_ts`. A
/// tombstone is always the newest entry of its chain (slots are only reused
/// after GC clears the whole chain).
#[derive(Debug)]
struct Version {
    rec: Option<RecordRef>,
    commit_ts: u64,
}

impl Version {
    fn pending(rec: Option<RecordRef>) -> Version {
        Version {
            rec,
            commit_ts: TS_PENDING,
        }
    }
}

/// A row slot: generation counter plus the version chain, oldest first.
/// An empty chain means the slot is free (on its shard's free list).
#[derive(Debug)]
struct Slot {
    generation: u32,
    versions: Vec<Version>,
}

impl Slot {
    /// The current version's record: what strict-2PL readers see. `None`
    /// when the chain is empty (free slot) or the newest entry is a
    /// tombstone (deleted row).
    fn current(&self) -> Option<&RecordRef> {
        self.versions.last().and_then(|v| v.rec.as_ref())
    }

    /// MVCC visibility: the newest version with `commit_ts <= ts`. Returns
    /// `None` when no version is visible at `ts` *or* the visible version
    /// is a tombstone — both mean "no row here" to a snapshot reader.
    fn visible_at(&self, ts: u64) -> Option<RecordRef> {
        self.versions
            .iter()
            .rev()
            .find(|v| v.commit_ts <= ts)
            .and_then(|v| v.rec.clone())
    }

    /// True if some retained version (tombstones excluded) carries `key` in
    /// `column` — i.e. an index posting `(key, id)` already exists for this
    /// slot, since postings are deduplicated per (slot, key).
    fn chain_has_key(&self, column: usize, key: &Value) -> bool {
        self.versions
            .iter()
            .any(|v| v.rec.as_ref().is_some_and(|r| r.get(column) == key))
    }
}

/// One independently-latched bucket of row slots.
#[derive(Debug, Default)]
struct Shard {
    slots: Vec<Slot>,
    /// Local indices of reclaimed slots available for reuse.
    free: Vec<u32>,
}

/// Sweep the retired-version list inline once it reaches this length, so a
/// sustained update churn with short-lived pins keeps the list bounded.
const RETIRED_SWEEP_LEN: usize = 256;

/// Per-shard byte meters (model: [`crate::mem`]). Each DML charge lands on
/// the mutated row's shard, so the table total is *defined* as the sum of
/// the shards — Σ shard bytes == table bytes holds by construction.
#[derive(Debug, Default)]
struct ShardMem {
    /// Bytes of current record versions referenced by this shard's slots.
    row_bytes: AtomicU64,
    /// Bytes of index entries charged to this shard (postings for its rows,
    /// plus each distinct key first introduced by one of its rows).
    index_bytes: AtomicU64,
    /// Bytes of superseded (non-current) versions still retained on their
    /// slots' chains, awaiting GC. The version-chain meter proper.
    chain_bytes: AtomicU64,
    /// Versions pruned from a chain by GC but still pinned by a transition
    /// or bound table (strong count > 0 at prune time), kept as weak
    /// references with their modeled byte price; released versions are
    /// dropped by the lazy sweep.
    retired: Mutex<Vec<(Weak<RecordData>, u64)>>,
}

impl ShardMem {
    /// Record a GC-pruned version that is still externally pinned. Its
    /// bytes stay on the version-chain meter until the last pin drops.
    fn retire(&self, rec: &RecordRef) {
        let bytes = mem::record_bytes(rec);
        let mut r = self.retired.lock();
        if r.len() >= RETIRED_SWEEP_LEN {
            r.retain(|(w, _)| w.strong_count() > 0);
        }
        r.push((Arc::downgrade(rec), bytes));
    }

    /// Version-chain bytes: retained chain versions plus pruned-but-pinned
    /// retirees (sweeps released ones).
    fn version_bytes(&self) -> u64 {
        let chained = self.chain_bytes.load(Ordering::Relaxed);
        let mut r = self.retired.lock();
        r.retain(|(w, _)| w.strong_count() > 0);
        chained + r.iter().map(|(_, b)| *b).sum::<u64>()
    }
}

/// Counters returned by one [`StandardTable::collect_versions`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Superseded versions pruned from chains.
    pub pruned: u64,
    /// Slots whose whole chain (ending in a committed tombstone) was
    /// reclaimed for reuse.
    pub freed_slots: u64,
}

impl GcStats {
    /// Component-wise sum, for rolling up across tables.
    pub fn add(&mut self, other: GcStats) {
        self.pruned += other.pruned;
        self.freed_slots += other.freed_slots;
    }
}

/// A standard (user-visible, SQL-created) table. All methods take `&self`:
/// row storage is sharded behind per-bucket latches and indexes carry their
/// own, so catalog handles are plain `Arc<StandardTable>`.
#[derive(Debug)]
pub struct StandardTable {
    name: String,
    schema: SchemaRef,
    shards: Vec<RwLock<Shard>>,
    /// Round-robin cursor for spreading fresh inserts across shards.
    next_shard: AtomicUsize,
    /// Total reclaimed slots awaiting reuse, across all shards.
    free_count: AtomicUsize,
    live: AtomicUsize,
    /// Statistics epoch: bumped whenever the live-row count crosses a
    /// power-of-two size class, i.e. whenever the table's cardinality has
    /// changed by enough to plausibly flip a cost-based plan choice. Cached
    /// physical plans key on this (combined with the schema epoch) so a
    /// table growing from 10 to 10 000 rows invalidates plans that chose a
    /// nested-loop join when it was small. Row-level churn inside one size
    /// class does not bump it, so steady-state workloads keep their plans.
    stats_epoch: AtomicU64,
    indexes: RwLock<Vec<Arc<TableIndex>>>,
    /// Per-column distinct-count estimates for *unindexed* columns, computed
    /// on demand from a bounded sample and cached as `(stats_epoch, value)`.
    /// The cache invalidates on the same size-class signal as cached plans,
    /// so a plan and the statistics it priced stay in step.
    distinct_cache: RwLock<Vec<Option<(u64, usize)>>>,
    /// Contention observer for shard latches (see [`LatchObserver`]).
    latch_obs: ObserverCell,
    /// Per-shard byte meters; the table footprint is their sum.
    mem: Vec<ShardMem>,
    /// Slot words (shard packed in the low bits) whose chains may hold
    /// collectible versions: populated by update/delete, drained by
    /// [`Self::collect_versions`]. A `BTreeSet` so repeated churn on one
    /// row costs one entry.
    gc_dirty: Mutex<BTreeSet<u32>>,
}

/// Holder for the optional latch observer; exists so `StandardTable` can
/// keep deriving `Debug` (closures have no `Debug` impl).
#[derive(Default)]
struct ObserverCell(RwLock<Option<LatchObserver>>);

impl fmt::Debug for ObserverCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.0.read().is_some() {
            "ObserverCell(installed)"
        } else {
            "ObserverCell(none)"
        })
    }
}

/// Power-of-two size class of a row count: 0, 1, 2–3, 4–7, 8–15, … each
/// form one class. Crossing a class boundary signals a cardinality change
/// worth replanning for.
fn size_class(n: usize) -> u32 {
    match n {
        0 => 0,
        _ => n.ilog2() + 1,
    }
}

/// Scale a sample's distinct count to the full table. Exact when the whole
/// table was sampled. A duplicate-free sample means the column is key-like
/// (distinct ≈ rows); otherwise the sample's distinct ratio is scaled
/// linearly, which is exact for uniformly repeated keys and a conservative
/// over-count under skew (an over-count shrinks the rows-per-key estimate,
/// never inflating join-output estimates).
pub fn estimate_distinct(d_sample: usize, sampled: usize, rows: usize) -> usize {
    if sampled == 0 {
        return 0;
    }
    if sampled >= rows {
        return d_sample;
    }
    if d_sample == sampled {
        rows
    } else {
        (d_sample * rows / sampled).clamp(d_sample, rows)
    }
}

/// A secondary index over one column of a standard table, with its own
/// latch. Handles are shared (`Arc`) so probes never hold the table's
/// index-list latch.
#[derive(Debug)]
pub struct TableIndex {
    name: String,
    column: usize,
    kind: IndexKind,
    index: RwLock<Index>,
}

impl TableIndex {
    /// Index name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Indexed column offset.
    pub fn column(&self) -> usize {
        self.column
    }

    /// Implementation kind.
    pub fn kind(&self) -> IndexKind {
        self.kind
    }

    /// Point probe: row ids whose indexed column equals `key` in *some
    /// retained version* — callers must revalidate against the fetched
    /// record (postings for superseded versions persist until GC).
    pub fn lookup(&self, key: &Value) -> Vec<RowId> {
        self.index.read().lookup(key)
    }

    /// Range probe (ordered indexes only): `lo <= key <= hi`. Same staleness
    /// contract as [`Self::lookup`].
    pub fn range(&self, lo: &Value, hi: &Value) -> Option<Vec<RowId>> {
        self.index.read().range(lo, hi)
    }

    /// Number of (key, row) entries.
    pub fn entry_count(&self) -> usize {
        self.index.read().entry_count()
    }

    /// Number of distinct keys, for planner selectivity estimates.
    pub fn distinct_keys(&self) -> usize {
        self.index.read().distinct_keys()
    }
}

impl StandardTable {
    /// Create an empty table.
    pub fn new(name: impl Into<String>, schema: SchemaRef) -> StandardTable {
        StandardTable {
            name: name.into(),
            schema,
            shards: (0..SHARD_COUNT)
                .map(|_| RwLock::new(Shard::default()))
                .collect(),
            next_shard: AtomicUsize::new(0),
            free_count: AtomicUsize::new(0),
            live: AtomicUsize::new(0),
            stats_epoch: AtomicU64::new(0),
            indexes: RwLock::new(Vec::new()),
            distinct_cache: RwLock::new(Vec::new()),
            latch_obs: ObserverCell::default(),
            mem: (0..SHARD_COUNT).map(|_| ShardMem::default()).collect(),
            gc_dirty: Mutex::new(BTreeSet::new()),
        }
    }

    /// Charge one index posting (plus the key, when `new_key`) to a shard.
    fn charge_index_insert(&self, shard: usize, key: &Value, new_key: bool) {
        let mut bytes = mem::INDEX_POSTING_BYTES;
        if new_key {
            bytes += mem::index_key_bytes(key);
        }
        self.mem[shard]
            .index_bytes
            .fetch_add(bytes, Ordering::Relaxed);
    }

    /// Release one index posting from a shard. Key bytes are *not* released:
    /// an emptied posting list keeps its key allocated (and metered) until
    /// the index is dropped, matching [`Index::distinct_keys`].
    fn charge_index_remove(&self, shard: usize) {
        self.mem[shard]
            .index_bytes
            .fetch_sub(mem::INDEX_POSTING_BYTES, Ordering::Relaxed);
    }

    /// Install (or clear) the shard-latch contention observer. Subsequent
    /// *contended* latch acquisitions report `("{table}/shard{i}", wait_us)`
    /// to it; uncontended acquisitions never touch the observer.
    pub fn set_latch_observer(&self, obs: Option<LatchObserver>) {
        *self.latch_obs.0.write() = obs;
    }

    /// Acquire a shard's read latch. Uncontended acquisitions take the
    /// try-lock fast path (no timing, no observer lookup); contended ones
    /// measure the blocking wait and report it.
    fn shard_read(&self, shard: usize) -> RwLockReadGuard<'_, Shard> {
        if let Some(g) = self.shards[shard].try_read() {
            return g;
        }
        let t0 = Instant::now();
        let g = self.shards[shard].read();
        self.note_latch_wait(shard, t0.elapsed());
        g
    }

    /// Write-latch counterpart of [`Self::shard_read`].
    fn shard_write(&self, shard: usize) -> RwLockWriteGuard<'_, Shard> {
        if let Some(g) = self.shards[shard].try_write() {
            return g;
        }
        let t0 = Instant::now();
        let g = self.shards[shard].write();
        self.note_latch_wait(shard, t0.elapsed());
        g
    }

    fn note_latch_wait(&self, shard: usize, waited: std::time::Duration) {
        if let Some(obs) = self.latch_obs.0.read().clone() {
            // Round sub-µs waits up to 1 so every contended acquisition
            // carries weight in the hot-key map.
            let us = (waited.as_micros() as u64).max(1);
            obs(&format!("{}/shard{shard}", self.name), us);
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live.load(Ordering::Acquire)
    }

    /// True if no live rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current statistics epoch (see the field docs: bumped when the live
    /// row count crosses a power-of-two size class).
    pub fn stats_epoch(&self) -> u64 {
        self.stats_epoch.load(Ordering::Acquire)
    }

    /// Bump the stats epoch iff the live count moved between size classes.
    fn note_cardinality_change(&self, before: usize, after: usize) {
        if size_class(before) != size_class(after) {
            self.stats_epoch.fetch_add(1, Ordering::AcqRel);
        }
    }

    /// Mark a slot's chain as potentially collectible.
    fn mark_dirty(&self, id: RowId) {
        self.gc_dirty.lock().insert(id.slot);
    }

    /// Slots currently queued for version GC (observability / tests).
    pub fn gc_backlog(&self) -> usize {
        self.gc_dirty.lock().len()
    }

    /// Insert a row as a new pending version. Returns its `RowId`.
    /// Reclaimed slots are reused before new ones are allocated; fresh
    /// allocations round-robin across shards.
    pub fn insert(&self, row: Vec<Value>) -> Result<(RowId, RecordRef)> {
        let row = self.schema.check_row(row)?;
        let rec = RecordData::new(row);
        let start = self.next_shard.fetch_add(1, Ordering::Relaxed);
        let id = 'placed: {
            if self.free_count.load(Ordering::Acquire) > 0 {
                for i in 0..SHARD_COUNT {
                    let shard = (start + i) % SHARD_COUNT;
                    let mut s = self.shard_write(shard);
                    if let Some(local) = s.free.pop() {
                        self.free_count.fetch_sub(1, Ordering::AcqRel);
                        let slot = &mut s.slots[local as usize];
                        debug_assert!(slot.versions.is_empty(), "free slot has versions");
                        slot.versions.push(Version::pending(Some(rec.clone())));
                        break 'placed RowId::pack(shard, local, slot.generation);
                    }
                }
            }
            let shard = start % SHARD_COUNT;
            let mut s = self.shard_write(shard);
            let local = s.slots.len() as u32;
            s.slots.push(Slot {
                generation: 0,
                versions: vec![Version::pending(Some(rec.clone()))],
            });
            RowId::pack(shard, local, 0)
        };
        self.mem[id.shard()]
            .row_bytes
            .fetch_add(mem::record_bytes(&rec), Ordering::Relaxed);
        let before = self.live.fetch_add(1, Ordering::AcqRel);
        self.note_cardinality_change(before, before + 1);
        for ix in self.indexes() {
            let key = rec.get(ix.column);
            let new_key = ix.index.write().insert(key.clone(), id);
            self.charge_index_insert(id.shard(), key, new_key);
        }
        Ok((id, rec))
    }

    /// Fetch the current (newest) version of a row: the strict-2PL read.
    pub fn get(&self, id: RowId) -> Result<RecordRef> {
        let s = self.shard_read(id.shard());
        let slot = s
            .slots
            .get(id.local() as usize)
            .ok_or(StorageError::DeadRow(id.as_u64()))?;
        if slot.generation != id.generation {
            return Err(StorageError::DeadRow(id.as_u64()));
        }
        slot.current()
            .cloned()
            .ok_or(StorageError::DeadRow(id.as_u64()))
    }

    /// Snapshot read: the newest version visible at snapshot timestamp
    /// `ts` (`commit_ts <= ts`). `None` means the row does not exist at
    /// that snapshot — never born yet, already deleted, or the slot was
    /// reclaimed (in which case no snapshot at `ts` could see it anyway).
    /// Takes no locks beyond the shard latch.
    pub fn get_at(&self, id: RowId, ts: u64) -> Option<RecordRef> {
        let s = self.shard_read(id.shard());
        let slot = s.slots.get(id.local() as usize)?;
        if slot.generation != id.generation {
            return None;
        }
        slot.visible_at(ts)
    }

    /// Update a row to new attribute values. A **new pending version** is
    /// appended to the chain (paper §6.1); the superseded version is
    /// returned so callers (transition-table builders) may pin it, and
    /// stays on the chain for snapshot readers until GC.
    pub fn update(&self, id: RowId, row: Vec<Value>) -> Result<(RecordRef, RecordRef)> {
        let row = self.schema.check_row(row)?;
        let new_rec = RecordData::new(row);
        // Clone the index list *before* the shard latch: the latch order is
        // shard → per-index latch, and the index-list lock may be write-held
        // by DDL that then takes shard latches.
        let indexes = self.indexes();
        // For each index whose key changed, decide under the shard latch
        // whether some retained version already carries the new key (then a
        // posting for it exists and must not be duplicated).
        let mut post_new: Vec<(usize, bool)> = Vec::new();
        let old_rec = {
            let mut s = self.shard_write(id.shard());
            let slot = s
                .slots
                .get_mut(id.local() as usize)
                .ok_or(StorageError::DeadRow(id.as_u64()))?;
            if slot.generation != id.generation || slot.current().is_none() {
                return Err(StorageError::DeadRow(id.as_u64()));
            }
            let old_rec = slot.current().expect("checked live").clone();
            for (i, ix) in indexes.iter().enumerate() {
                let new_key = new_rec.get(ix.column);
                if old_rec.get(ix.column) != new_key {
                    post_new.push((i, !slot.chain_has_key(ix.column, new_key)));
                }
            }
            slot.versions.push(Version::pending(Some(new_rec.clone())));
            old_rec
        };
        let shard_mem = &self.mem[id.shard()];
        shard_mem
            .row_bytes
            .fetch_add(mem::record_bytes(&new_rec), Ordering::Relaxed);
        shard_mem
            .row_bytes
            .fetch_sub(mem::record_bytes(&old_rec), Ordering::Relaxed);
        shard_mem
            .chain_bytes
            .fetch_add(mem::record_bytes(&old_rec), Ordering::Relaxed);
        self.mark_dirty(id);
        // Old-key postings are *retained* (snapshot probes may still need
        // them) and removed by GC once the superseded version is pruned.
        for (i, fresh_posting) in post_new {
            if fresh_posting {
                let ix = &indexes[i];
                let new_key = new_rec.get(ix.column);
                let fresh = ix.index.write().insert(new_key.clone(), id);
                self.charge_index_insert(id.shard(), new_key, fresh);
            }
        }
        Ok((old_rec, new_rec))
    }

    /// Delete a row: append a pending **tombstone** to its chain. Returns
    /// the final version so callers may pin it in a `deleted` transition
    /// table. The slot itself (and its index postings) are reclaimed by GC
    /// once no snapshot can see any of its versions.
    pub fn delete(&self, id: RowId) -> Result<RecordRef> {
        let old = {
            let mut s = self.shard_write(id.shard());
            let slot = s
                .slots
                .get_mut(id.local() as usize)
                .ok_or(StorageError::DeadRow(id.as_u64()))?;
            if slot.generation != id.generation || slot.current().is_none() {
                return Err(StorageError::DeadRow(id.as_u64()));
            }
            let old = slot.current().expect("checked live").clone();
            slot.versions.push(Version::pending(None));
            old
        };
        let shard_mem = &self.mem[id.shard()];
        shard_mem
            .row_bytes
            .fetch_sub(mem::record_bytes(&old), Ordering::Relaxed);
        shard_mem
            .chain_bytes
            .fetch_add(mem::record_bytes(&old), Ordering::Relaxed);
        let before = self.live.fetch_sub(1, Ordering::AcqRel);
        self.note_cardinality_change(before, before - 1);
        self.mark_dirty(id);
        Ok(old)
    }

    /// Stamp every pending version of `id`'s chain with commit timestamp
    /// `ts`. Called at transaction commit, under the owner's commit mutex,
    /// for every row the transaction touched; until the global commit clock
    /// is then advanced to `ts`, no snapshot can observe the stamp.
    /// Returns the number of versions stamped (0 for a stale id).
    pub fn publish_versions(&self, id: RowId, ts: u64) -> usize {
        let mut s = self.shard_write(id.shard());
        let Some(slot) = s.slots.get_mut(id.local() as usize) else {
            return 0;
        };
        if slot.generation != id.generation {
            return 0;
        }
        let mut stamped = 0;
        for v in &mut slot.versions {
            if v.commit_ts == TS_PENDING {
                v.commit_ts = ts;
                stamped += 1;
            }
        }
        stamped
    }

    /// Stamp **every** pending version in the table with commit timestamp
    /// `ts`. This is the bulk-load publish: setup code that inserts straight
    /// into storage (bypassing the transaction commit path) leaves its rows
    /// at [`TS_PENDING`], invisible to snapshot readers. Must only be called
    /// while no writer transaction is in flight — it cannot tell a loaded
    /// row from an uncommitted one. Returns the number of versions stamped.
    pub fn publish_all(&self, ts: u64) -> usize {
        let mut stamped = 0;
        for shard in 0..SHARD_COUNT {
            let mut s = self.shard_write(shard);
            for slot in &mut s.slots {
                for v in &mut slot.versions {
                    if v.commit_ts == TS_PENDING {
                        v.commit_ts = ts;
                        stamped += 1;
                    }
                }
            }
        }
        stamped
    }

    /// Roll back an uncommitted insert: pop the pending version and free
    /// the slot (bumping its generation and removing its index postings).
    pub fn revert_insert(&self, id: RowId) -> Result<()> {
        let indexes = self.indexes();
        let rec = {
            let mut s = self.shard_write(id.shard());
            let slot = s
                .slots
                .get_mut(id.local() as usize)
                .ok_or(StorageError::DeadRow(id.as_u64()))?;
            if slot.generation != id.generation {
                return Err(StorageError::DeadRow(id.as_u64()));
            }
            let v = slot
                .versions
                .pop()
                .ok_or(StorageError::DeadRow(id.as_u64()))?;
            debug_assert!(v.commit_ts == TS_PENDING, "reverting a committed version");
            debug_assert!(slot.versions.is_empty(), "insert was not chain-initial");
            slot.generation = slot.generation.wrapping_add(1);
            let local = id.local();
            s.free.push(local);
            v.rec.ok_or(StorageError::DeadRow(id.as_u64()))?
        };
        self.free_count.fetch_add(1, Ordering::AcqRel);
        self.mem[id.shard()]
            .row_bytes
            .fetch_sub(mem::record_bytes(&rec), Ordering::Relaxed);
        let before = self.live.fetch_sub(1, Ordering::AcqRel);
        self.note_cardinality_change(before, before - 1);
        for ix in &indexes {
            ix.index.write().remove(rec.get(ix.column), id);
            self.charge_index_remove(id.shard());
        }
        Ok(())
    }

    /// Roll back an uncommitted update: pop the pending version, restoring
    /// its predecessor as current. The new version's postings are removed
    /// iff no retained version still carries the key (mirror of the dedup
    /// rule at insert time).
    pub fn revert_update(&self, id: RowId) -> Result<()> {
        let indexes = self.indexes();
        let mut drop_post: Vec<usize> = Vec::new();
        let (new_rec, prev_rec) = {
            let mut s = self.shard_write(id.shard());
            let slot = s
                .slots
                .get_mut(id.local() as usize)
                .ok_or(StorageError::DeadRow(id.as_u64()))?;
            if slot.generation != id.generation {
                return Err(StorageError::DeadRow(id.as_u64()));
            }
            let v = slot
                .versions
                .pop()
                .ok_or(StorageError::DeadRow(id.as_u64()))?;
            debug_assert!(v.commit_ts == TS_PENDING, "reverting a committed version");
            let new_rec = v.rec.ok_or(StorageError::DeadRow(id.as_u64()))?;
            let prev_rec = slot
                .current()
                .cloned()
                .ok_or(StorageError::DeadRow(id.as_u64()))?;
            for (i, ix) in indexes.iter().enumerate() {
                let key = new_rec.get(ix.column);
                if prev_rec.get(ix.column) != key && !slot.chain_has_key(ix.column, key) {
                    drop_post.push(i);
                }
            }
            (new_rec, prev_rec)
        };
        let shard_mem = &self.mem[id.shard()];
        shard_mem
            .row_bytes
            .fetch_sub(mem::record_bytes(&new_rec), Ordering::Relaxed);
        shard_mem
            .row_bytes
            .fetch_add(mem::record_bytes(&prev_rec), Ordering::Relaxed);
        shard_mem
            .chain_bytes
            .fetch_sub(mem::record_bytes(&prev_rec), Ordering::Relaxed);
        for i in drop_post {
            let ix = &indexes[i];
            ix.index.write().remove(new_rec.get(ix.column), id);
            self.charge_index_remove(id.shard());
        }
        Ok(())
    }

    /// Roll back an uncommitted delete: pop the pending tombstone,
    /// restoring its predecessor as current.
    pub fn revert_delete(&self, id: RowId) -> Result<()> {
        let prev_rec = {
            let mut s = self.shard_write(id.shard());
            let slot = s
                .slots
                .get_mut(id.local() as usize)
                .ok_or(StorageError::DeadRow(id.as_u64()))?;
            if slot.generation != id.generation {
                return Err(StorageError::DeadRow(id.as_u64()));
            }
            let v = slot
                .versions
                .pop()
                .ok_or(StorageError::DeadRow(id.as_u64()))?;
            debug_assert!(v.commit_ts == TS_PENDING, "reverting a committed version");
            debug_assert!(v.rec.is_none(), "revert_delete popped a non-tombstone");
            slot.current()
                .cloned()
                .ok_or(StorageError::DeadRow(id.as_u64()))?
        };
        let shard_mem = &self.mem[id.shard()];
        shard_mem
            .chain_bytes
            .fetch_sub(mem::record_bytes(&prev_rec), Ordering::Relaxed);
        shard_mem
            .row_bytes
            .fetch_add(mem::record_bytes(&prev_rec), Ordering::Relaxed);
        let before = self.live.fetch_add(1, Ordering::AcqRel);
        self.note_cardinality_change(before, before + 1);
        Ok(())
    }

    /// Version GC: prune every chain version superseded at `horizon` (the
    /// minimum active snapshot timestamp, or the commit clock when no
    /// snapshot is live) and reclaim slots whose chain ends in a committed
    /// tombstone no snapshot can see. Index postings whose key no longer
    /// appears in any surviving version are removed under the shard latch
    /// (latch order shard → index, see the module docs). Pruned versions
    /// still pinned by a transition/bound table move to the weak retired
    /// list so the `version_chains` meter keeps charging them.
    pub fn collect_versions(&self, horizon: u64) -> GcStats {
        self.collect_versions_impl(horizon)
    }

    /// Test-only mutant of [`Self::collect_versions`] with an off-by-one GC
    /// horizon: collects versions that a snapshot pinned *at* the horizon
    /// can still see. Exists so the snapshot-consistency oracle can prove
    /// it detects premature reclamation.
    #[doc(hidden)]
    pub fn __collect_versions_overshoot(&self, horizon: u64) -> GcStats {
        self.collect_versions_impl(horizon.saturating_add(1))
    }

    fn collect_versions_impl(&self, horizon: u64) -> GcStats {
        let dirty: Vec<u32> = std::mem::take(&mut *self.gc_dirty.lock()).into_iter().collect();
        let indexes = self.indexes();
        let mut stats = GcStats::default();
        let mut requeue: Vec<u32> = Vec::new();
        for word in dirty {
            let shard = (word as usize) & (SHARD_COUNT - 1);
            let local = (word >> SHARD_BITS) as usize;
            let mut collected: Vec<Version> = Vec::new();
            let mut s = self.shard_write(shard);
            let Some(slot) = s.slots.get_mut(local) else {
                continue;
            };
            if slot.versions.is_empty() {
                continue;
            }
            // Everything older than the newest version visible at the
            // horizon is superseded for every live and future snapshot.
            let keep_from = slot
                .versions
                .iter()
                .rposition(|v| v.commit_ts <= horizon)
                .unwrap_or(0);
            collected.extend(slot.versions.drain(..keep_from));
            stats.pruned += collected.len() as u64;
            // A chain reduced to one committed tombstone is invisible to
            // every snapshot at or after the horizon: reclaim the slot.
            let free_now = slot.versions.len() == 1
                && slot.versions[0].rec.is_none()
                && slot.versions[0].commit_ts <= horizon;
            if free_now {
                collected.extend(slot.versions.drain(..));
                slot.generation = slot.generation.wrapping_add(1);
                stats.freed_slots += 1;
            } else if slot.versions.len() > 1 || slot.versions[0].rec.is_none() {
                requeue.push(word);
            }
            // Remove postings for keys that vanished from the chain. The
            // posting was deduplicated per (slot, key), so each dead key
            // maps to exactly one posting. Note the generation in the
            // posting's RowId predates any bump above.
            let id = RowId::pack(
                shard,
                local as u32,
                if free_now {
                    s.slots[local].generation.wrapping_sub(1)
                } else {
                    s.slots[local].generation
                },
            );
            for ix in &indexes {
                let surviving: HashSet<&Value> = s.slots[local]
                    .versions
                    .iter()
                    .filter_map(|v| v.rec.as_ref().map(|r| r.get(ix.column)))
                    .collect();
                let mut removed: HashSet<Value> = HashSet::new();
                for v in &collected {
                    if let Some(rec) = &v.rec {
                        let key = rec.get(ix.column);
                        if !surviving.contains(key) && !removed.contains(key) {
                            ix.index.write().remove(key, id);
                            self.charge_index_remove(shard);
                            removed.insert(key.clone());
                        }
                    }
                }
            }
            if free_now {
                s.slots[local].versions.clear();
                s.free.push(local as u32);
                self.free_count.fetch_add(1, Ordering::AcqRel);
            }
            drop(s);
            // Meter the pruned versions out of the chain class; externally
            // pinned ones move to the weak retired list and keep charging.
            let shard_mem = &self.mem[shard];
            for v in collected {
                if let Some(rec) = v.rec {
                    shard_mem
                        .chain_bytes
                        .fetch_sub(mem::record_bytes(&rec), Ordering::Relaxed);
                    if Arc::strong_count(&rec) > 1 {
                        shard_mem.retire(&rec);
                    }
                }
            }
        }
        if !requeue.is_empty() {
            self.gc_dirty.lock().extend(requeue);
        }
        stats
    }

    /// Estimated number of distinct values in `column`, for planner
    /// selectivity on columns without an index (indexed columns answer
    /// exactly from the index's key count). Unindexed columns are estimated
    /// from a bounded sample of live rows; the result is cached until the
    /// statistics epoch moves, which is the same size-class signal that
    /// invalidates cached plans — so a cached plan and the statistic it was
    /// priced with stay consistent.
    pub fn distinct_estimate(&self, column: usize) -> usize {
        if let Some(ix) = self.index_on(column) {
            return ix.distinct_keys();
        }
        let epoch = self.stats_epoch();
        if let Some(Some((e, d))) = self.distinct_cache.read().get(column) {
            if *e == epoch {
                return *d;
            }
        }
        const SAMPLE_ROWS: usize = 1024;
        let rows = self.len();
        let mut seen = std::collections::HashSet::new();
        let mut sampled = 0usize;
        'shards: for shard in 0..SHARD_COUNT {
            let s = self.shard_read(shard);
            for slot in &s.slots {
                if let Some(r) = slot.current() {
                    seen.insert(r.get(column).clone());
                    sampled += 1;
                    if sampled >= SAMPLE_ROWS {
                        break 'shards;
                    }
                }
            }
        }
        let d = estimate_distinct(seen.len(), sampled, rows);
        let mut cache = self.distinct_cache.write();
        if cache.len() <= column {
            cache.resize(column + 1, None);
        }
        cache[column] = Some((epoch, d));
        d
    }

    /// Snapshot of the current rows (strict-2PL view), shard by shard. Each
    /// shard latch is held only while that shard is copied.
    pub fn scan(&self) -> Vec<(RowId, RecordRef)> {
        let mut out = Vec::with_capacity(self.len());
        for shard in 0..SHARD_COUNT {
            let s = self.shard_read(shard);
            for (local, slot) in s.slots.iter().enumerate() {
                if let Some(r) = slot.current() {
                    out.push((RowId::pack(shard, local as u32, slot.generation), r.clone()));
                }
            }
        }
        out
    }

    /// MVCC scan: every row visible at snapshot timestamp `ts`, resolved
    /// through the version chains. Takes no locks beyond the shard latches.
    pub fn scan_at(&self, ts: u64) -> Vec<(RowId, RecordRef)> {
        let mut out = Vec::new();
        for shard in 0..SHARD_COUNT {
            let s = self.shard_read(shard);
            for (local, slot) in s.slots.iter().enumerate() {
                if let Some(r) = slot.visible_at(ts) {
                    out.push((RowId::pack(shard, local as u32, slot.generation), r));
                }
            }
        }
        out
    }

    /// Create a secondary index over `column_name`. Backfills postings for
    /// every *retained version's* key — not just current rows — so snapshot
    /// probes through the fresh index still find superseded versions.
    /// (DDL runs under a table X lock, so chains are stable here.)
    pub fn create_index(
        &self,
        index_name: impl Into<String>,
        column_name: &str,
        kind: IndexKind,
    ) -> Result<()> {
        let index_name = index_name.into();
        let mut indexes = self.indexes.write();
        if indexes.iter().any(|ix| ix.name == index_name) {
            return Err(StorageError::IndexExists(index_name));
        }
        let column = self.schema.index_of_ok(column_name)?;
        let mut index = Index::new(kind);
        for shard in 0..SHARD_COUNT {
            let s = self.shard_read(shard);
            for (local, slot) in s.slots.iter().enumerate() {
                let id = RowId::pack(shard, local as u32, slot.generation);
                let mut keys_done: HashSet<&Value> = HashSet::new();
                for v in &slot.versions {
                    if let Some(rec) = &v.rec {
                        let key = rec.get(column);
                        if keys_done.insert(key) {
                            let new_key = index.insert(key.clone(), id);
                            // Backfill charges land on each row's own shard
                            // so Σ-shard == table survives DDL too.
                            self.charge_index_insert(shard, key, new_key);
                        }
                    }
                }
            }
        }
        indexes.push(Arc::new(TableIndex {
            name: index_name,
            column,
            kind,
            index: RwLock::new(index),
        }));
        Ok(())
    }

    /// The index over `column` (by offset) if one exists.
    pub fn index_on(&self, column: usize) -> Option<Arc<TableIndex>> {
        self.indexes
            .read()
            .iter()
            .find(|ix| ix.column == column)
            .cloned()
    }

    /// Handles to all indexes.
    pub fn indexes(&self) -> Vec<Arc<TableIndex>> {
        self.indexes.read().clone()
    }

    /// Probe the index on `column` for `key`. Returns candidate row ids;
    /// callers must revalidate the fetched record's key (postings for
    /// superseded versions persist until GC). Returns `None` if no index
    /// exists on that column.
    pub fn index_lookup(&self, column: usize, key: &Value) -> Option<Vec<RowId>> {
        self.index_on(column).map(|ix| ix.lookup(key))
    }

    /// Range probe (ordered indexes only): candidate rows with
    /// `lo <= key <= hi`. A row whose chain holds several keys inside the
    /// range appears under each, so candidates are deduplicated here;
    /// callers still filter on the fetched record's current key.
    pub fn index_range(&self, column: usize, lo: &Value, hi: &Value) -> Option<Vec<RowId>> {
        let ids = self.index_on(column).and_then(|ix| ix.range(lo, hi))?;
        let mut seen = HashSet::with_capacity(ids.len());
        Some(ids.into_iter().filter(|id| seen.insert(*id)).collect())
    }

    /// Debug/test helper: verify that every index exactly covers the
    /// retained chains — one posting per (slot, distinct retained key).
    /// Only meaningful at logically quiescent points (no in-flight
    /// writers), like all cross-cutting consistency checks; snapshots may
    /// be live (their retained versions are part of the expectation).
    pub fn check_index_integrity(&self) -> Result<()> {
        for ix in self.indexes() {
            let mut expected = 0usize;
            for shard in 0..SHARD_COUNT {
                let s = self.shard_read(shard);
                for (local, slot) in s.slots.iter().enumerate() {
                    let id = RowId::pack(shard, local as u32, slot.generation);
                    let mut keys: HashSet<&Value> = HashSet::new();
                    for v in &slot.versions {
                        if let Some(rec) = &v.rec {
                            keys.insert(rec.get(ix.column));
                        }
                    }
                    for key in keys {
                        if !ix.lookup(key).contains(&id) {
                            return Err(StorageError::Invariant(format!(
                                "index `{}` missing entry for row {id} key {key:?}",
                                ix.name
                            )));
                        }
                        expected += 1;
                    }
                }
            }
            if ix.entry_count() != expected {
                return Err(StorageError::Invariant(format!(
                    "index `{}` has {} entries but chains expect {}",
                    ix.name,
                    ix.entry_count(),
                    expected
                )));
            }
        }
        Ok(())
    }

    /// Byte footprint charged to one shard. Row and index components read
    /// the incremental counters; the version component adds retained chain
    /// bytes to still-pinned pruned versions (sweeping released ones).
    pub fn shard_mem(&self, shard: usize) -> TableMem {
        let m = &self.mem[shard];
        TableMem {
            row_bytes: m.row_bytes.load(Ordering::Relaxed),
            index_bytes: m.index_bytes.load(Ordering::Relaxed),
            version_bytes: m.version_bytes(),
        }
    }

    /// Exact byte footprint of the table: the sum of the per-shard meters.
    /// Exact at mutation-quiescent points (a mutation mid-flight may have
    /// charged some components but not yet others).
    pub fn mem(&self) -> TableMem {
        let mut out = TableMem::default();
        for shard in 0..SHARD_COUNT {
            out.add(self.shard_mem(shard));
        }
        out
    }

    /// Deep-walk size oracle: recompute the table's entire footprint from
    /// scratch under the model of [`crate::mem`], ignoring every incremental
    /// counter. The newest rec-bearing chain entry of a slot is a row byte
    /// holder iff it is the chain head (not superseded by a tombstone);
    /// every other retained version — plus pruned-but-pinned retirees —
    /// belongs to the version-chain class. Test-only contract
    /// (`tests/prop_mem.rs` pins `mem() == __walk_mem()` after arbitrary
    /// DML/DDL/GC interleavings); hidden because it takes every shard and
    /// index latch in turn.
    #[doc(hidden)]
    pub fn __walk_mem(&self) -> TableMem {
        let mut out = TableMem::default();
        for shard in 0..SHARD_COUNT {
            let s = self.shard_read(shard);
            for slot in &s.slots {
                let n = slot.versions.len();
                for (i, v) in slot.versions.iter().enumerate() {
                    if let Some(r) = &v.rec {
                        if i + 1 == n {
                            out.row_bytes += mem::record_bytes(r);
                        } else {
                            out.version_bytes += mem::record_bytes(r);
                        }
                    }
                }
            }
        }
        for ix in self.indexes() {
            out.index_bytes += ix.index.read().walk_bytes();
        }
        for shard_mem in &self.mem {
            // Re-price pinned retirees from the live record, independently
            // of the byte figure cached at retirement time.
            for (weak, _) in shard_mem.retired.lock().iter() {
                if let Some(rec) = weak.upgrade() {
                    out.version_bytes += mem::record_bytes(&rec);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::DataType;

    fn stocks() -> StandardTable {
        let schema = Schema::of(&[("symbol", DataType::Str), ("price", DataType::Float)]);
        StandardTable::new("stocks", schema.into_ref())
    }

    /// Publish every pending version of the given rows at `ts` and collect
    /// with no live snapshots (horizon = ts): the single-writer equivalent
    /// of commit + quiescent GC.
    fn commit_rows(t: &StandardTable, ids: &[RowId], ts: u64) {
        for id in ids {
            t.publish_versions(*id, ts);
        }
        t.collect_versions(ts);
    }

    #[test]
    fn contended_shard_latch_reports_to_observer() {
        use std::sync::{Barrier, Mutex};
        let t = Arc::new(stocks());
        let events: Arc<Mutex<Vec<(String, u64)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = events.clone();
        t.set_latch_observer(Some(Arc::new(move |res: &str, us: u64| {
            sink.lock().unwrap().push((res.to_string(), us));
        })));
        let (id, _) = t.insert(vec!["IBM".into(), 100.0.into()]).unwrap();
        let shard = id.shard();
        // Hold the row's shard write latch so the reader's try-lock fast
        // path fails and it must block (and therefore report the wait).
        let guard = t.shards[shard].write();
        let barrier = Arc::new(Barrier::new(2));
        let reader = {
            let (t, barrier) = (t.clone(), barrier.clone());
            std::thread::spawn(move || {
                barrier.wait();
                t.get(id).unwrap()
            })
        };
        barrier.wait();
        // The reader is now running `get`; give it time to fail the
        // try-lock and park before releasing the latch.
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(guard);
        reader.join().unwrap();
        let events = events.lock().unwrap();
        let label = format!("stocks/shard{shard}");
        assert!(
            events.iter().any(|(r, us)| r == &label && *us >= 1),
            "expected a contended-latch event for {label}, got {events:?}"
        );
    }

    #[test]
    fn uncontended_access_never_fires_observer() {
        use std::sync::Mutex;
        let t = stocks();
        let events: Arc<Mutex<Vec<(String, u64)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = events.clone();
        t.set_latch_observer(Some(Arc::new(move |res: &str, us: u64| {
            sink.lock().unwrap().push((res.to_string(), us));
        })));
        let (id, _) = t.insert(vec!["IBM".into(), 100.0.into()]).unwrap();
        t.update(id, vec!["IBM".into(), 101.0.into()]).unwrap();
        t.get(id).unwrap();
        t.delete(id).unwrap();
        commit_rows(&t, &[id], 1);
        assert!(events.lock().unwrap().is_empty());
    }

    #[test]
    fn insert_get() {
        let t = stocks();
        let (id, _) = t.insert(vec!["IBM".into(), 101.5.into()]).unwrap();
        let rec = t.get(id).unwrap();
        assert_eq!(rec.get(0).as_str(), Some("IBM"));
        assert_eq!(rec.get(1).as_f64(), Some(101.5));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn update_creates_new_version_and_old_stays_alive() {
        let t = stocks();
        let (id, v0) = t.insert(vec!["IBM".into(), 100.0.into()]).unwrap();
        let (old, new) = t.update(id, vec!["IBM".into(), 101.0.into()]).unwrap();
        assert_eq!(old.version_id(), v0.version_id());
        assert_ne!(new.version_id(), old.version_id());
        // The table now points at the new version...
        assert_eq!(t.get(id).unwrap().get(1).as_f64(), Some(101.0));
        // ...but the pinned old version still reads the captured value
        // (paper §6.1: kept until the last bound table retires it).
        assert_eq!(old.get(1).as_f64(), Some(100.0));
    }

    #[test]
    fn delete_then_stale_rowid_is_detected() {
        let t = stocks();
        let (id, _) = t.insert(vec!["IBM".into(), 100.0.into()]).unwrap();
        t.publish_versions(id, 1);
        t.delete(id).unwrap();
        t.publish_versions(id, 2);
        assert!(matches!(t.get(id), Err(StorageError::DeadRow(_))));
        // GC reclaims the tombstoned slot; it is then reused (possibly in
        // another shard thanks to the round-robin cursor) with a new
        // generation, and the stale id still fails.
        t.collect_versions(2);
        let (id2, _) = t.insert(vec!["HWP".into(), 40.0.into()]).unwrap();
        assert_ne!(id2, id);
        assert!(t.get(id).is_err());
        assert!(t.get(id2).is_ok());
        // The freed slot really was reused: no net slot growth.
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn freed_slot_is_reused_after_gc_not_leaked() {
        let t = stocks();
        let (id, _) = t.insert(vec!["IBM".into(), 100.0.into()]).unwrap();
        t.publish_versions(id, 1);
        t.delete(id).unwrap();
        t.publish_versions(id, 2);
        let stats = t.collect_versions(2);
        assert_eq!(stats.freed_slots, 1);
        let (id2, _) = t.insert(vec!["HWP".into(), 40.0.into()]).unwrap();
        // Same packed slot word, bumped generation.
        assert_eq!(id2.slot, id.slot);
        assert_ne!(id2.generation, id.generation);
    }

    #[test]
    fn tombstoned_slot_is_not_reused_before_gc() {
        let t = stocks();
        let (id, _) = t.insert(vec!["IBM".into(), 100.0.into()]).unwrap();
        t.publish_versions(id, 1);
        t.delete(id).unwrap();
        t.publish_versions(id, 2);
        // No GC yet: a snapshot at ts=1 can still see the row, so the slot
        // must not be handed out to a new insert.
        let (id2, _) = t.insert(vec!["HWP".into(), 40.0.into()]).unwrap();
        assert_ne!(id2.slot, id.slot);
        assert_eq!(t.get_at(id, 1).unwrap().get(0).as_str(), Some("IBM"));
    }

    #[test]
    fn schema_enforced_on_insert_and_update() {
        let t = stocks();
        assert!(t.insert(vec![1i64.into()]).is_err());
        assert!(t.insert(vec![1i64.into(), "x".into()]).is_err());
        let (id, _) = t.insert(vec!["A".into(), 1.0.into()]).unwrap();
        assert!(t.update(id, vec!["A".into(), "bad".into()]).is_err());
    }

    #[test]
    fn hash_index_maintained_across_dml() {
        let t = stocks();
        t.create_index("ix_symbol", "symbol", IndexKind::Hash)
            .unwrap();
        let (a, _) = t.insert(vec!["A".into(), 1.0.into()]).unwrap();
        let (b, _) = t.insert(vec!["B".into(), 2.0.into()]).unwrap();
        let col = 0;
        assert_eq!(t.index_lookup(col, &"A".into()), Some(vec![a]));
        commit_rows(&t, &[a, b], 1);
        t.update(b, vec!["C".into(), 2.0.into()]).unwrap();
        // Before GC the old-key posting is retained for snapshot probes...
        assert_eq!(t.index_lookup(col, &"B".into()), Some(vec![b]));
        assert_eq!(t.index_lookup(col, &"C".into()), Some(vec![b]));
        // ...and GC removes it once the superseded version is pruned.
        commit_rows(&t, &[b], 2);
        assert_eq!(t.index_lookup(col, &"B".into()), Some(vec![]));
        assert_eq!(t.index_lookup(col, &"C".into()), Some(vec![b]));
        t.delete(a).unwrap();
        commit_rows(&t, &[a], 3);
        assert_eq!(t.index_lookup(col, &"A".into()), Some(vec![]));
        t.check_index_integrity().unwrap();
    }

    #[test]
    fn rbtree_index_supports_range() {
        let schema = Schema::of(&[("k", DataType::Int)]);
        let t = StandardTable::new("t", schema.into_ref());
        t.create_index("ix_k", "k", IndexKind::RbTree).unwrap();
        let mut ids = Vec::new();
        for i in 0..10i64 {
            ids.push(t.insert(vec![i.into()]).unwrap().0);
        }
        let hits = t.index_range(0, &3i64.into(), &5i64.into()).unwrap();
        assert_eq!(hits, vec![ids[3], ids[4], ids[5]]);
    }

    #[test]
    fn range_probe_dedups_chained_keys() {
        let schema = Schema::of(&[("k", DataType::Int)]);
        let t = StandardTable::new("t", schema.into_ref());
        t.create_index("ix_k", "k", IndexKind::RbTree).unwrap();
        let (id, _) = t.insert(vec![1i64.into()]).unwrap();
        t.publish_versions(id, 1);
        // Chain now holds keys 1 and 3 for the same row; a range probe
        // covering both must yield the row once.
        t.update(id, vec![3i64.into()]).unwrap();
        let hits = t.index_range(0, &0i64.into(), &5i64.into()).unwrap();
        assert_eq!(hits, vec![id]);
    }

    #[test]
    fn index_on_unchanged_key_keeps_rowid() {
        let t = stocks();
        t.create_index("ix", "symbol", IndexKind::Hash).unwrap();
        let (id, _) = t.insert(vec!["A".into(), 1.0.into()]).unwrap();
        // Price-only update: the symbol key is unchanged, RowId stays valid.
        t.update(id, vec!["A".into(), 9.0.into()]).unwrap();
        assert_eq!(t.index_lookup(0, &"A".into()), Some(vec![id]));
        t.check_index_integrity().unwrap();
    }

    #[test]
    fn chained_key_flip_does_not_duplicate_postings() {
        let t = stocks();
        t.create_index("ix", "symbol", IndexKind::Hash).unwrap();
        let (id, _) = t.insert(vec!["A".into(), 1.0.into()]).unwrap();
        t.publish_versions(id, 1);
        t.update(id, vec!["B".into(), 2.0.into()]).unwrap();
        t.publish_versions(id, 2);
        // Key flips back to A while version 1 (key A) is still retained:
        // the posting (A, id) already exists and must not be duplicated.
        t.update(id, vec!["A".into(), 3.0.into()]).unwrap();
        t.publish_versions(id, 3);
        assert_eq!(t.index_lookup(0, &"A".into()), Some(vec![id]));
        t.check_index_integrity().unwrap();
        // GC at horizon 3 prunes both superseded versions; the A posting
        // survives (current key) and B's is removed.
        t.collect_versions(3);
        assert_eq!(t.index_lookup(0, &"A".into()), Some(vec![id]));
        assert_eq!(t.index_lookup(0, &"B".into()), Some(vec![]));
        t.check_index_integrity().unwrap();
    }

    #[test]
    fn duplicate_index_name_rejected() {
        let t = stocks();
        t.create_index("ix", "symbol", IndexKind::Hash).unwrap();
        assert!(matches!(
            t.create_index("ix", "price", IndexKind::Hash),
            Err(StorageError::IndexExists(_))
        ));
    }

    #[test]
    fn scan_skips_dead_rows() {
        let t = stocks();
        let (a, _) = t.insert(vec!["A".into(), 1.0.into()]).unwrap();
        let (_b, _) = t.insert(vec!["B".into(), 2.0.into()]).unwrap();
        t.delete(a).unwrap();
        let names: Vec<String> = t
            .scan()
            .into_iter()
            .map(|(_, r)| r.get(0).as_str().unwrap().to_string())
            .collect();
        assert_eq!(names, vec!["B"]);
    }

    #[test]
    fn snapshot_reads_resolve_versions_by_timestamp() {
        let t = stocks();
        let (id, _) = t.insert(vec!["IBM".into(), 100.0.into()]).unwrap();
        // Pending versions are invisible to every snapshot.
        assert!(t.get_at(id, u64::MAX - 1).is_none());
        t.publish_versions(id, 5);
        assert!(t.get_at(id, 4).is_none());
        assert_eq!(t.get_at(id, 5).unwrap().get(1).as_f64(), Some(100.0));
        t.update(id, vec!["IBM".into(), 101.0.into()]).unwrap();
        // Uncommitted update: snapshots still see the old version.
        assert_eq!(t.get_at(id, 9).unwrap().get(1).as_f64(), Some(100.0));
        t.publish_versions(id, 7);
        assert_eq!(t.get_at(id, 6).unwrap().get(1).as_f64(), Some(100.0));
        assert_eq!(t.get_at(id, 7).unwrap().get(1).as_f64(), Some(101.0));
        t.delete(id).unwrap();
        t.publish_versions(id, 9);
        assert_eq!(t.get_at(id, 8).unwrap().get(1).as_f64(), Some(101.0));
        assert!(t.get_at(id, 9).is_none());
        // scan_at agrees with get_at.
        assert_eq!(t.scan_at(5).len(), 1);
        assert_eq!(t.scan_at(9).len(), 0);
    }

    #[test]
    fn gc_respects_horizon_and_mutant_overshoots() {
        let t = stocks();
        let (id, _) = t.insert(vec!["IBM".into(), 100.0.into()]).unwrap();
        t.publish_versions(id, 1);
        t.update(id, vec!["IBM".into(), 101.0.into()]).unwrap();
        t.publish_versions(id, 2);
        // A snapshot pinned at ts=1 is live: horizon 1 must retain v1.
        t.collect_versions(1);
        assert_eq!(t.get_at(id, 1).unwrap().get(1).as_f64(), Some(100.0));
        // The off-by-one mutant collects v1 even though the snapshot at 1
        // still needs it — the read now (wrongly) sees nothing.
        t.__collect_versions_overshoot(1);
        assert!(t.get_at(id, 1).is_none());
        // Correct-horizon behavior once the snapshot would have dropped.
        assert_eq!(t.get_at(id, 2).unwrap().get(1).as_f64(), Some(101.0));
    }

    #[test]
    fn revert_ops_undo_pending_chain_entries() {
        let t = stocks();
        t.create_index("ix", "symbol", IndexKind::Hash).unwrap();
        let (a, _) = t.insert(vec!["A".into(), 1.0.into()]).unwrap();
        t.publish_versions(a, 1);
        let base_mem = t.mem();

        // Abort an update with a key change: posting for B disappears.
        // (The emptied key allocation stays metered, matching the walk
        // oracle, so only row/version bytes return to baseline.)
        t.update(a, vec!["B".into(), 2.0.into()]).unwrap();
        assert_eq!(t.index_lookup(0, &"B".into()), Some(vec![a]));
        t.revert_update(a).unwrap();
        assert_eq!(t.get(a).unwrap().get(0).as_str(), Some("A"));
        assert_eq!(t.index_lookup(0, &"B".into()), Some(vec![]));
        assert_eq!(t.mem().row_bytes, base_mem.row_bytes);
        assert_eq!(t.mem().version_bytes, base_mem.version_bytes);
        assert_eq!(t.mem(), t.__walk_mem());

        // Abort a delete: the row is live again.
        t.delete(a).unwrap();
        assert!(t.get(a).is_err());
        t.revert_delete(a).unwrap();
        assert_eq!(t.get(a).unwrap().get(0).as_str(), Some("A"));
        assert_eq!(t.len(), 1);
        assert_eq!(t.mem().row_bytes, base_mem.row_bytes);
        assert_eq!(t.mem().version_bytes, base_mem.version_bytes);

        // Abort an insert: slot freed, generation bumped, postings gone.
        let (b, _) = t.insert(vec!["C".into(), 3.0.into()]).unwrap();
        t.revert_insert(b).unwrap();
        assert!(t.get(b).is_err());
        assert_eq!(t.index_lookup(0, &"C".into()), Some(vec![]));
        assert_eq!(t.len(), 1);
        assert_eq!(t.mem().row_bytes, base_mem.row_bytes);
        assert_eq!(t.mem().version_bytes, base_mem.version_bytes);
        assert_eq!(t.mem(), t.__walk_mem());
        t.check_index_integrity().unwrap();
    }

    #[test]
    fn stats_epoch_bumps_on_size_class_crossings_only() {
        let t = stocks();
        assert_eq!(t.stats_epoch(), 0);
        // 0 -> 1 crosses a class boundary.
        let (a, _) = t.insert(vec!["A".into(), 1.0.into()]).unwrap();
        let e1 = t.stats_epoch();
        assert!(e1 > 0);
        // 1 -> 2 crosses; 2 -> 3 stays inside the 2–3 class.
        let (b, _) = t.insert(vec!["B".into(), 1.0.into()]).unwrap();
        let e2 = t.stats_epoch();
        assert!(e2 > e1);
        t.insert(vec!["C".into(), 1.0.into()]).unwrap();
        assert_eq!(t.stats_epoch(), e2);
        // Updates never change cardinality, so never bump.
        t.update(a, vec!["A".into(), 9.0.into()]).unwrap();
        assert_eq!(t.stats_epoch(), e2);
        // 3 -> 2 stays in class; 2 -> 1 crosses.
        t.delete(b).unwrap();
        assert_eq!(t.stats_epoch(), e2);
        t.delete(a).unwrap();
        assert!(t.stats_epoch() > e2);
    }

    #[test]
    fn index_distinct_keys_tracks_live_keys() {
        let t = stocks();
        t.create_index("ix", "symbol", IndexKind::Hash).unwrap();
        t.insert(vec!["A".into(), 1.0.into()]).unwrap();
        t.insert(vec!["A".into(), 2.0.into()]).unwrap();
        t.insert(vec!["B".into(), 3.0.into()]).unwrap();
        let ix = t.index_on(0).unwrap();
        assert_eq!(ix.entry_count(), 3);
        assert_eq!(ix.distinct_keys(), 2);
    }

    #[test]
    fn inserts_spread_across_shards() {
        let t = stocks();
        let mut shards = std::collections::HashSet::new();
        for i in 0..SHARD_COUNT {
            let (id, _) = t.insert(vec![format!("S{i}").into(), 1.0.into()]).unwrap();
            shards.insert(id.shard());
        }
        assert_eq!(shards.len(), SHARD_COUNT, "round-robin covers all shards");
        assert_eq!(t.scan().len(), SHARD_COUNT);
    }

    #[test]
    fn parallel_writers_on_distinct_rows_keep_table_consistent() {
        let t = Arc::new(stocks());
        t.create_index("ix", "symbol", IndexKind::Hash).unwrap();
        let mut ids = Vec::new();
        for i in 0..64 {
            ids.push(
                t.insert(vec![format!("S{i}").into(), 0.0.into()])
                    .unwrap()
                    .0,
            );
        }
        for id in &ids {
            t.publish_versions(*id, 1);
        }
        let threads: Vec<_> = ids
            .chunks(16)
            .map(|chunk| {
                let t = t.clone();
                let chunk = chunk.to_vec();
                std::thread::spawn(move || {
                    for (n, id) in chunk.iter().enumerate() {
                        let sym = t.get(*id).unwrap().get(0).clone();
                        for step in 0..50 {
                            t.update(*id, vec![sym.clone(), ((n * step) as f64).into()])
                                .unwrap();
                        }
                    }
                })
            })
            .collect();
        for h in threads {
            h.join().unwrap();
        }
        assert_eq!(t.len(), 64);
        commit_rows(&t, &ids, 2);
        t.check_index_integrity().unwrap();
    }

    #[test]
    fn metering_matches_walk_oracle_after_mixed_dml() {
        let t = stocks();
        t.create_index("ix", "symbol", IndexKind::Hash).unwrap();
        let (a, _) = t.insert(vec!["IBM".into(), 100.0.into()]).unwrap();
        let (b, _) = t.insert(vec!["HWP".into(), 40.0.into()]).unwrap();
        commit_rows(&t, &[a, b], 1);
        assert_eq!(t.mem(), t.__walk_mem());
        // Update with a key change: the superseded version moves to the
        // version-chain class until GC prunes it.
        let (old, _) = t.update(a, vec!["SUNW".into(), 101.0.into()]).unwrap();
        t.publish_versions(a, 2);
        assert_eq!(t.mem(), t.__walk_mem());
        assert_eq!(t.mem().version_bytes, mem::record_bytes(&old));
        // Delete while the chain retains the other row: both superseded
        // versions owe bytes.
        let deleted = t.delete(b).unwrap();
        t.publish_versions(b, 3);
        assert_eq!(t.mem(), t.__walk_mem());
        assert_eq!(
            t.mem().version_bytes,
            mem::record_bytes(&old) + mem::record_bytes(&deleted)
        );
        // GC prunes the chains; the externally pinned versions keep owing
        // via the weak retired list until the pins drop.
        t.collect_versions(3);
        assert_eq!(t.mem(), t.__walk_mem());
        assert_eq!(
            t.mem().version_bytes,
            mem::record_bytes(&old) + mem::record_bytes(&deleted)
        );
        drop(old);
        drop(deleted);
        assert_eq!(t.mem().version_bytes, 0);
        assert_eq!(t.mem(), t.__walk_mem());
        // DDL after the fact backfills index charges consistently.
        t.create_index("ix_price", "price", IndexKind::RbTree)
            .unwrap();
        assert_eq!(t.mem(), t.__walk_mem());
        assert!(t.mem().index_bytes > 0);
    }

    #[test]
    fn unpinned_chain_versions_free_fully_at_gc() {
        let t = stocks();
        let (a, _) = t.insert(vec!["IBM".into(), 100.0.into()]).unwrap();
        t.publish_versions(a, 1);
        let baseline = t.mem();
        {
            // Update without keeping the returned pin alive.
            let _ = t.update(a, vec!["IBM".into(), 101.0.into()]).unwrap();
        }
        t.publish_versions(a, 2);
        assert!(t.mem().version_bytes > 0, "superseded version is retained");
        t.collect_versions(2);
        assert_eq!(t.mem().version_bytes, 0);
        assert_eq!(t.mem().row_bytes, baseline.row_bytes);
        assert_eq!(t.mem(), t.__walk_mem());
    }

    #[test]
    fn emptied_index_key_stays_metered() {
        let t = stocks();
        t.create_index("ix", "symbol", IndexKind::Hash).unwrap();
        let (a, _) = t.insert(vec!["IBM".into(), 1.0.into()]).unwrap();
        t.publish_versions(a, 1);
        let with_key = t.mem().index_bytes;
        t.delete(a).unwrap();
        t.publish_versions(a, 2);
        t.collect_versions(2);
        // The posting is released but the key allocation remains (matching
        // `distinct_keys`), and the oracle agrees.
        assert_eq!(t.mem().index_bytes, with_key - mem::INDEX_POSTING_BYTES);
        assert_eq!(t.mem(), t.__walk_mem());
    }

    #[test]
    fn concurrent_writers_keep_shard_sum_and_oracle_exact() {
        let t = Arc::new(stocks());
        t.create_index("ix", "symbol", IndexKind::Hash).unwrap();
        let mut ids = Vec::new();
        for i in 0..64 {
            ids.push(
                t.insert(vec![format!("S{i}").into(), 0.0.into()])
                    .unwrap()
                    .0,
            );
        }
        for id in &ids {
            t.publish_versions(*id, 1);
        }
        let threads: Vec<_> = ids
            .chunks(16)
            .map(|chunk| {
                let t = t.clone();
                let chunk = chunk.to_vec();
                std::thread::spawn(move || {
                    for (n, id) in chunk.iter().enumerate() {
                        for step in 0..50 {
                            // Growing symbol strings force row-byte changes
                            // and index key churn on every step.
                            let sym = format!("S{n}x{step}");
                            t.update(*id, vec![sym.into(), (step as f64).into()])
                                .unwrap();
                        }
                    }
                })
            })
            .collect();
        for h in threads {
            h.join().unwrap();
        }
        // Publish and GC to quiescence: incremental meters equal the deep
        // walk, per shard and in total, and no chain retains old versions.
        commit_rows(&t, &ids, 2);
        let walked = t.__walk_mem();
        assert_eq!(t.mem(), walked);
        assert_eq!(t.mem().version_bytes, 0);
        let mut sum = TableMem::default();
        let mut shard_rows = [0u64; SHARD_COUNT];
        for (id, rec) in t.scan() {
            shard_rows[id.shard()] += mem::record_bytes(&rec);
        }
        for (shard, rows) in shard_rows.iter().enumerate() {
            let m = t.shard_mem(shard);
            assert_eq!(m.row_bytes, *rows);
            sum.add(m);
        }
        assert_eq!(sum, t.mem());
    }

    #[test]
    fn gc_backlog_drains_at_quiescence() {
        let t = stocks();
        let (a, _) = t.insert(vec!["A".into(), 1.0.into()]).unwrap();
        t.publish_versions(a, 1);
        for i in 0..5 {
            t.update(a, vec!["A".into(), (i as f64).into()]).unwrap();
        }
        t.publish_versions(a, 2);
        assert!(t.gc_backlog() > 0);
        let stats = t.collect_versions(2);
        assert_eq!(stats.pruned, 5);
        assert_eq!(t.gc_backlog(), 0);
    }
}
