//! Standard tables: versioned, in-memory record stores.
//!
//! Paper §6.1: "standard table records are not changed in place — a new
//! record is created and linked into the relation. The old record is removed
//! from the relation but kept in the system until the last bound table that
//! references it is retired, as determined by a reference counting scheme."
//!
//! We implement the reference-counting scheme with `Arc<RecordData>`: the
//! table's slot holds one strong reference to the *current* version of each
//! row; transition tables and bound tables hold strong references to the
//! versions they captured. Replacing a slot's `Arc` on update is exactly the
//! paper's create-new/unlink-old step, and the old version is freed when the
//! last bound table holding it is dropped — no explicit retirement pass
//! needed.

use crate::error::{Result, StorageError};
use crate::index::{Index, IndexKind};
use crate::schema::SchemaRef;
use crate::value::Value;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Monotonic version-id source, global across tables so tests can track
/// version identity.
static VERSION_IDS: AtomicU64 = AtomicU64::new(1);

/// One immutable version of a record. Attribute values are stored inline
/// (paper §6.1: standard tuples store values, not pointers).
#[derive(Debug)]
pub struct RecordData {
    /// Globally unique id of this version, for diagnostics and tests.
    version_id: u64,
    values: Box<[Value]>,
}

impl RecordData {
    fn new(values: Vec<Value>) -> Arc<RecordData> {
        Arc::new(RecordData {
            version_id: VERSION_IDS.fetch_add(1, Ordering::Relaxed),
            values: values.into_boxed_slice(),
        })
    }

    /// The attribute values of this version.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Value at a column offset.
    pub fn get(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// Globally unique version id.
    pub fn version_id(&self) -> u64 {
        self.version_id
    }
}

/// Shared handle to one record version.
pub type RecordRef = Arc<RecordData>;

/// Identifies a row slot within one table. Carries a generation counter so a
/// stale `RowId` for a deleted-then-reused slot is detected instead of
/// silently reading an unrelated row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RowId {
    slot: u32,
    generation: u32,
}

impl RowId {
    /// Packed representation for error messages.
    pub fn as_u64(self) -> u64 {
        ((self.slot as u64) << 32) | self.generation as u64
    }
}

impl fmt::Display for RowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.slot, self.generation)
    }
}

#[derive(Debug)]
struct Slot {
    generation: u32,
    rec: Option<RecordRef>,
}

/// A standard (user-visible, SQL-created) table.
#[derive(Debug)]
pub struct StandardTable {
    name: String,
    schema: SchemaRef,
    slots: Vec<Slot>,
    free: Vec<u32>,
    live: usize,
    indexes: Vec<TableIndex>,
}

/// A secondary index over one column of a standard table.
#[derive(Debug)]
pub struct TableIndex {
    name: String,
    column: usize,
    index: Index,
}

impl TableIndex {
    /// Index name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Indexed column offset.
    pub fn column(&self) -> usize {
        self.column
    }

    /// Implementation kind.
    pub fn kind(&self) -> IndexKind {
        self.index.kind()
    }
}

impl StandardTable {
    /// Create an empty table.
    pub fn new(name: impl Into<String>, schema: SchemaRef) -> StandardTable {
        StandardTable {
            name: name.into(),
            schema,
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            indexes: Vec::new(),
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no live rows.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Insert a row. Returns its `RowId`.
    pub fn insert(&mut self, row: Vec<Value>) -> Result<(RowId, RecordRef)> {
        let row = self.schema.check_row(row)?;
        let rec = RecordData::new(row);
        let id = if let Some(slot) = self.free.pop() {
            let s = &mut self.slots[slot as usize];
            s.rec = Some(rec.clone());
            RowId {
                slot,
                generation: s.generation,
            }
        } else {
            let slot = self.slots.len() as u32;
            self.slots.push(Slot {
                generation: 0,
                rec: Some(rec.clone()),
            });
            RowId {
                slot,
                generation: 0,
            }
        };
        self.live += 1;
        for ix in &mut self.indexes {
            ix.index.insert(rec.get(ix.column).clone(), id);
        }
        Ok((id, rec))
    }

    fn slot_ok(&self, id: RowId) -> Result<&Slot> {
        let s = self
            .slots
            .get(id.slot as usize)
            .ok_or(StorageError::DeadRow(id.as_u64()))?;
        if s.generation != id.generation || s.rec.is_none() {
            return Err(StorageError::DeadRow(id.as_u64()));
        }
        Ok(s)
    }

    /// Fetch the current version of a row.
    pub fn get(&self, id: RowId) -> Result<RecordRef> {
        Ok(self
            .slot_ok(id)?
            .rec
            .as_ref()
            .expect("checked live")
            .clone())
    }

    /// Update a row to new attribute values. A **new record version** is
    /// created (paper §6.1); the old version is returned so callers
    /// (transition-table builders) may pin it.
    pub fn update(&mut self, id: RowId, row: Vec<Value>) -> Result<(RecordRef, RecordRef)> {
        let row = self.schema.check_row(row)?;
        self.slot_ok(id)?;
        let new_rec = RecordData::new(row);
        let s = &mut self.slots[id.slot as usize];
        let old_rec = s.rec.replace(new_rec.clone()).expect("checked live");
        for ix in &mut self.indexes {
            let old_key = old_rec.get(ix.column);
            let new_key = new_rec.get(ix.column);
            if old_key != new_key {
                ix.index.remove(old_key, id);
                ix.index.insert(new_key.clone(), id);
            } else {
                // RowId is stable across updates, so an unchanged key needs
                // no index maintenance at all.
            }
        }
        Ok((old_rec, new_rec))
    }

    /// Delete a row. Returns the final version so callers may pin it in a
    /// `deleted` transition table.
    pub fn delete(&mut self, id: RowId) -> Result<RecordRef> {
        self.slot_ok(id)?;
        let s = &mut self.slots[id.slot as usize];
        let old = s.rec.take().expect("checked live");
        s.generation = s.generation.wrapping_add(1);
        self.free.push(id.slot);
        self.live -= 1;
        for ix in &mut self.indexes {
            ix.index.remove(old.get(ix.column), id);
        }
        Ok(old)
    }

    /// Re-insert a specific version at a dead row id's slot. Used by
    /// transaction rollback to undo a delete; the row gets a fresh `RowId`.
    pub fn reinsert(&mut self, rec: &RecordRef) -> Result<RowId> {
        let (id, _) = self.insert(rec.values().to_vec())?;
        Ok(id)
    }

    /// Iterate over live rows.
    pub fn scan(&self) -> impl Iterator<Item = (RowId, &RecordRef)> + '_ {
        self.slots.iter().enumerate().filter_map(|(i, s)| {
            s.rec.as_ref().map(|r| {
                (
                    RowId {
                        slot: i as u32,
                        generation: s.generation,
                    },
                    r,
                )
            })
        })
    }

    /// Create a secondary index over `column_name`.
    pub fn create_index(
        &mut self,
        index_name: impl Into<String>,
        column_name: &str,
        kind: IndexKind,
    ) -> Result<()> {
        let index_name = index_name.into();
        if self.indexes.iter().any(|ix| ix.name == index_name) {
            return Err(StorageError::IndexExists(index_name));
        }
        let column = self.schema.index_of_ok(column_name)?;
        let mut index = Index::new(kind);
        for (id, rec) in self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.rec.as_ref().map(|r| (i, r)))
            .map(|(i, r)| {
                (
                    RowId {
                        slot: i as u32,
                        generation: self.slots[i].generation,
                    },
                    r,
                )
            })
        {
            index.insert(rec.get(column).clone(), id);
        }
        self.indexes.push(TableIndex {
            name: index_name,
            column,
            index,
        });
        Ok(())
    }

    /// The index over `column` (by offset) if one exists.
    pub fn index_on(&self, column: usize) -> Option<&TableIndex> {
        self.indexes.iter().find(|ix| ix.column == column)
    }

    /// All indexes.
    pub fn indexes(&self) -> &[TableIndex] {
        &self.indexes
    }

    /// Probe the index on `column` for `key`. Returns matching row ids.
    /// Returns `None` if no index exists on that column.
    pub fn index_lookup(&self, column: usize, key: &Value) -> Option<Vec<RowId>> {
        self.index_on(column).map(|ix| ix.index.lookup(key))
    }

    /// Range probe (ordered indexes only): rows with `lo <= key <= hi`.
    pub fn index_range(&self, column: usize, lo: &Value, hi: &Value) -> Option<Vec<RowId>> {
        self.index_on(column).and_then(|ix| ix.index.range(lo, hi))
    }

    /// Debug/test helper: verify that every index exactly covers the live
    /// rows.
    pub fn check_index_integrity(&self) -> Result<()> {
        for ix in &self.indexes {
            let mut indexed = 0usize;
            for (id, rec) in self.scan() {
                let hits = ix.index.lookup(rec.get(ix.column));
                if !hits.contains(&id) {
                    return Err(StorageError::Invariant(format!(
                        "index `{}` missing entry for row {id}",
                        ix.name
                    )));
                }
                indexed += 1;
            }
            if ix.index.entry_count() != indexed {
                return Err(StorageError::Invariant(format!(
                    "index `{}` has {} entries but table has {} live rows",
                    ix.name,
                    ix.index.entry_count(),
                    indexed
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::DataType;

    fn stocks() -> StandardTable {
        let schema = Schema::of(&[("symbol", DataType::Str), ("price", DataType::Float)]);
        StandardTable::new("stocks", schema.into_ref())
    }

    #[test]
    fn insert_get() {
        let mut t = stocks();
        let (id, _) = t.insert(vec!["IBM".into(), 101.5.into()]).unwrap();
        let rec = t.get(id).unwrap();
        assert_eq!(rec.get(0).as_str(), Some("IBM"));
        assert_eq!(rec.get(1).as_f64(), Some(101.5));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn update_creates_new_version_and_old_stays_alive() {
        let mut t = stocks();
        let (id, v0) = t.insert(vec!["IBM".into(), 100.0.into()]).unwrap();
        let (old, new) = t.update(id, vec!["IBM".into(), 101.0.into()]).unwrap();
        assert_eq!(old.version_id(), v0.version_id());
        assert_ne!(new.version_id(), old.version_id());
        // The table now points at the new version...
        assert_eq!(t.get(id).unwrap().get(1).as_f64(), Some(101.0));
        // ...but the pinned old version still reads the captured value
        // (paper §6.1: kept until the last bound table retires it).
        assert_eq!(old.get(1).as_f64(), Some(100.0));
    }

    #[test]
    fn delete_then_stale_rowid_is_detected() {
        let mut t = stocks();
        let (id, _) = t.insert(vec!["IBM".into(), 100.0.into()]).unwrap();
        t.delete(id).unwrap();
        assert!(matches!(t.get(id), Err(StorageError::DeadRow(_))));
        // Slot reuse gets a new generation; the stale id still fails.
        let (id2, _) = t.insert(vec!["HWP".into(), 40.0.into()]).unwrap();
        assert_eq!(id2.slot, id.slot);
        assert_ne!(id2.generation, id.generation);
        assert!(t.get(id).is_err());
        assert!(t.get(id2).is_ok());
    }

    #[test]
    fn schema_enforced_on_insert_and_update() {
        let mut t = stocks();
        assert!(t.insert(vec![1i64.into()]).is_err());
        assert!(t.insert(vec![1i64.into(), "x".into()]).is_err());
        let (id, _) = t.insert(vec!["A".into(), 1.0.into()]).unwrap();
        assert!(t.update(id, vec!["A".into(), "bad".into()]).is_err());
    }

    #[test]
    fn hash_index_maintained_across_dml() {
        let mut t = stocks();
        t.create_index("ix_symbol", "symbol", IndexKind::Hash)
            .unwrap();
        let (a, _) = t.insert(vec!["A".into(), 1.0.into()]).unwrap();
        let (b, _) = t.insert(vec!["B".into(), 2.0.into()]).unwrap();
        let col = 0;
        assert_eq!(t.index_lookup(col, &"A".into()), Some(vec![a]));
        t.update(b, vec!["C".into(), 2.0.into()]).unwrap();
        assert_eq!(t.index_lookup(col, &"B".into()), Some(vec![]));
        assert_eq!(t.index_lookup(col, &"C".into()), Some(vec![b]));
        t.delete(a).unwrap();
        assert_eq!(t.index_lookup(col, &"A".into()), Some(vec![]));
        t.check_index_integrity().unwrap();
    }

    #[test]
    fn rbtree_index_supports_range() {
        let schema = Schema::of(&[("k", DataType::Int)]);
        let mut t = StandardTable::new("t", schema.into_ref());
        t.create_index("ix_k", "k", IndexKind::RbTree).unwrap();
        let mut ids = Vec::new();
        for i in 0..10i64 {
            ids.push(t.insert(vec![i.into()]).unwrap().0);
        }
        let hits = t.index_range(0, &3i64.into(), &5i64.into()).unwrap();
        assert_eq!(hits, vec![ids[3], ids[4], ids[5]]);
    }

    #[test]
    fn index_on_unchanged_key_keeps_rowid() {
        let mut t = stocks();
        t.create_index("ix", "symbol", IndexKind::Hash).unwrap();
        let (id, _) = t.insert(vec!["A".into(), 1.0.into()]).unwrap();
        // Price-only update: the symbol key is unchanged, RowId stays valid.
        t.update(id, vec!["A".into(), 9.0.into()]).unwrap();
        assert_eq!(t.index_lookup(0, &"A".into()), Some(vec![id]));
        t.check_index_integrity().unwrap();
    }

    #[test]
    fn duplicate_index_name_rejected() {
        let mut t = stocks();
        t.create_index("ix", "symbol", IndexKind::Hash).unwrap();
        assert!(matches!(
            t.create_index("ix", "price", IndexKind::Hash),
            Err(StorageError::IndexExists(_))
        ));
    }

    #[test]
    fn scan_skips_dead_rows() {
        let mut t = stocks();
        let (a, _) = t.insert(vec!["A".into(), 1.0.into()]).unwrap();
        let (_b, _) = t.insert(vec!["B".into(), 2.0.into()]).unwrap();
        t.delete(a).unwrap();
        let names: Vec<String> = t
            .scan()
            .map(|(_, r)| r.get(0).as_str().unwrap().to_string())
            .collect();
        assert_eq!(names, vec!["B"]);
    }
}
