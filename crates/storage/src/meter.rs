//! Operation metering.
//!
//! Every primitive the engine performs is reported to a [`Meter`]. The
//! transaction layer (`strip-txn`) supplies a meter that converts operation
//! counts into virtual CPU microseconds using the Table-1 cost model; tests
//! use [`CountingMeter`] to assert on exactly which operations ran.
//!
//! Keeping the `Op` vocabulary here (in the lowest-level crate) lets storage,
//! SQL execution, and the rule engine all charge the same meter without a
//! dependency cycle.

use std::cell::RefCell;
use std::collections::BTreeMap;

/// The primitive operations the engine accounts for. The first ten are the
/// rows of the paper's Table 1; the rest cover query processing and rule
/// management work that the paper folds into "executing queries and
/// computing user functions".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Op {
    // -- Table 1 rows ----------------------------------------------------
    /// Set up a task (the unit of scheduling, paper §4.4).
    BeginTask,
    /// Tear down a task.
    EndTask,
    /// Begin a transaction within a task.
    BeginTxn,
    /// Commit a transaction (includes the rule-processing log scan setup).
    CommitTxn,
    /// Acquire one lock.
    GetLock,
    /// Release one lock.
    ReleaseLock,
    /// Open a cursor / begin a table or index access path.
    OpenCursor,
    /// Fetch one tuple through a cursor.
    FetchCursor,
    /// Update one tuple through a cursor (creates a new record version).
    UpdateCursor,
    /// Close a cursor.
    CloseCursor,
    // -- Additional engine work -------------------------------------------
    /// Insert one tuple.
    InsertTuple,
    /// Delete one tuple.
    DeleteTuple,
    /// Probe an index for a key.
    IndexProbe,
    /// Maintain one index entry (insert/delete/update).
    IndexMaintain,
    /// Emit one tuple into a temporary table (pointer-array build, §6.1).
    TempTupleBuild,
    /// Read one tuple out of a temporary table (pointer chase + map lookup).
    TempTupleRead,
    /// Evaluate one scalar expression over one row.
    EvalExpr,
    /// One row processed by an aggregation operator.
    AggRow,
    /// One row of user-function work (the `foreach` bodies of the paper's
    /// `compute_*` functions, excluding the model evaluation itself).
    UserFnRow,
    /// One Black-Scholes model evaluation (paper Appendix B). Priced
    /// separately because "pricing models ... are expensive" (§1).
    ModelEval,
    /// One probe/update of a unique-transaction hash table (§6.3).
    UniqueHashOp,
    /// One rule-condition check at commit time (per triggered rule).
    RuleCheck,
    /// One log record scanned during commit-time event detection.
    LogScanRecord,
    /// Append one commit record to the write-ahead log (durable mode only).
    WalAppendRecord,
    /// Force the write-ahead log to stable storage (one fsync per commit).
    WalFsync,
}

/// All `Op` variants, for iteration in reports.
pub const ALL_OPS: &[Op] = &[
    Op::BeginTask,
    Op::EndTask,
    Op::BeginTxn,
    Op::CommitTxn,
    Op::GetLock,
    Op::ReleaseLock,
    Op::OpenCursor,
    Op::FetchCursor,
    Op::UpdateCursor,
    Op::CloseCursor,
    Op::InsertTuple,
    Op::DeleteTuple,
    Op::IndexProbe,
    Op::IndexMaintain,
    Op::TempTupleBuild,
    Op::TempTupleRead,
    Op::EvalExpr,
    Op::AggRow,
    Op::UserFnRow,
    Op::ModelEval,
    Op::UniqueHashOp,
    Op::RuleCheck,
    Op::LogScanRecord,
    Op::WalAppendRecord,
    Op::WalFsync,
];

/// Sink for operation accounting. Implementations must be cheap: `charge`
/// sits on every tuple-touch in the engine.
pub trait Meter {
    /// Record that `op` happened `n` times.
    fn charge(&self, op: Op, n: u64);
}

/// A meter that ignores everything. Used by code paths where accounting is
/// irrelevant (e.g. test setup).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullMeter;

impl Meter for NullMeter {
    #[inline]
    fn charge(&self, _op: Op, _n: u64) {}
}

/// A meter that counts operations. Single-threaded (interior mutability via
/// `RefCell`) because each task executes on one virtual CPU at a time.
#[derive(Debug, Default)]
pub struct CountingMeter {
    counts: RefCell<BTreeMap<Op, u64>>,
}

impl CountingMeter {
    /// New empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count recorded for `op`.
    pub fn count(&self, op: Op) -> u64 {
        self.counts.borrow().get(&op).copied().unwrap_or(0)
    }

    /// Snapshot of all counts.
    pub fn snapshot(&self) -> BTreeMap<Op, u64> {
        self.counts.borrow().clone()
    }

    /// Reset all counts to zero.
    pub fn reset(&self) {
        self.counts.borrow_mut().clear();
    }

    /// Sum of all counts.
    pub fn total(&self) -> u64 {
        self.counts.borrow().values().sum()
    }
}

impl Meter for CountingMeter {
    fn charge(&self, op: Op, n: u64) {
        *self.counts.borrow_mut().entry(op).or_insert(0) += n;
    }
}

impl<M: Meter + ?Sized> Meter for &M {
    #[inline]
    fn charge(&self, op: Op, n: u64) {
        (**self).charge(op, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_meter_accumulates() {
        let m = CountingMeter::new();
        m.charge(Op::FetchCursor, 3);
        m.charge(Op::FetchCursor, 2);
        m.charge(Op::GetLock, 1);
        assert_eq!(m.count(Op::FetchCursor), 5);
        assert_eq!(m.count(Op::GetLock), 1);
        assert_eq!(m.count(Op::ReleaseLock), 0);
        assert_eq!(m.total(), 6);
        m.reset();
        assert_eq!(m.total(), 0);
    }

    #[test]
    fn null_meter_is_noop() {
        let m = NullMeter;
        m.charge(Op::BeginTask, 1_000_000);
    }

    #[test]
    fn meter_by_reference() {
        fn charges(m: impl Meter) {
            m.charge(Op::EvalExpr, 1);
        }
        let m = CountingMeter::new();
        charges(&m);
        assert_eq!(m.count(Op::EvalExpr), 1);
    }

    #[test]
    fn all_ops_listed_once() {
        let mut seen = std::collections::BTreeSet::new();
        for op in ALL_OPS {
            assert!(seen.insert(*op), "duplicate op {op:?}");
        }
        assert_eq!(seen.len(), ALL_OPS.len());
    }
}
