//! Secondary-index implementations: hash and red-black tree.
//!
//! Both map a key `Value` to the set of `RowId`s whose indexed column holds
//! that key (indexes are non-unique: `comps_list.symbol` maps one stock to
//! its ~12 composites).

use crate::rbtree::RbMap;
use crate::table::RowId;
use crate::value::Value;
use std::collections::HashMap;

/// Which index structure to use (paper §6.1 offers both).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// Hash index: O(1) point probes, no range scans.
    Hash,
    /// Red-black tree index: O(log n) probes plus ordered range scans.
    RbTree,
}

/// A non-unique secondary index.
#[derive(Debug)]
pub enum Index {
    Hash(HashMap<Value, Vec<RowId>>),
    RbTree(RbMap<Value, Vec<RowId>>),
}

impl Index {
    /// Create an empty index of the given kind.
    pub fn new(kind: IndexKind) -> Index {
        match kind {
            IndexKind::Hash => Index::Hash(HashMap::new()),
            IndexKind::RbTree => Index::RbTree(RbMap::new()),
        }
    }

    /// Implementation kind.
    pub fn kind(&self) -> IndexKind {
        match self {
            Index::Hash(_) => IndexKind::Hash,
            Index::RbTree(_) => IndexKind::RbTree,
        }
    }

    /// Add an entry. Returns `true` when this allocated a new distinct key
    /// (the caller charges key bytes on top of the posting — see
    /// [`crate::mem`]).
    pub fn insert(&mut self, key: Value, id: RowId) -> bool {
        match self {
            Index::Hash(m) => match m.entry(key) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    e.into_mut().push(id);
                    false
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(vec![id]);
                    true
                }
            },
            Index::RbTree(m) => {
                if let Some(v) = m.get_mut(&key) {
                    v.push(id);
                    false
                } else {
                    m.insert(key, vec![id]);
                    true
                }
            }
        }
    }

    /// Remove an entry. Missing entries are ignored (delete of a never-
    /// indexed row is impossible by construction, but defensive here).
    pub fn remove(&mut self, key: &Value, id: RowId) {
        match self {
            Index::Hash(m) => {
                if let Some(v) = m.get_mut(key) {
                    v.retain(|x| *x != id);
                }
            }
            Index::RbTree(m) => {
                if let Some(v) = m.get_mut(key) {
                    v.retain(|x| *x != id);
                }
            }
        }
    }

    /// Point probe: all rows whose key equals `key`.
    pub fn lookup(&self, key: &Value) -> Vec<RowId> {
        match self {
            Index::Hash(m) => m.get(key).cloned().unwrap_or_default(),
            Index::RbTree(m) => m.get(key).cloned().unwrap_or_default(),
        }
    }

    /// Range probe `lo <= key <= hi`. `None` for hash indexes (unsupported).
    pub fn range(&self, lo: &Value, hi: &Value) -> Option<Vec<RowId>> {
        match self {
            Index::Hash(_) => None,
            Index::RbTree(m) => Some(
                m.range(&lo.clone(), &hi.clone())
                    .into_iter()
                    .flat_map(|(_, v)| v.iter().copied())
                    .collect(),
            ),
        }
    }

    /// Total number of `(key, row)` entries, for integrity checks.
    pub fn entry_count(&self) -> usize {
        match self {
            Index::Hash(m) => m.values().map(Vec::len).sum(),
            Index::RbTree(m) => m.iter().map(|(_, v)| v.len()).sum(),
        }
    }

    /// Number of distinct keys currently present. Drives the cost-based
    /// planner's join-selectivity estimates (rows per probe ≈
    /// `entry_count / distinct_keys`). Keys whose posting lists have been
    /// emptied by removals still count until compaction, which only makes
    /// the estimate conservative.
    pub fn distinct_keys(&self) -> usize {
        match self {
            Index::Hash(m) => m.len(),
            Index::RbTree(m) => m.iter().count(),
        }
    }

    /// Deep-walk byte oracle: recompute this index's footprint from scratch
    /// under the model of [`crate::mem`]. Emptied posting lists still hold
    /// their key allocation and stay priced, matching the incremental
    /// charges (keys are only freed when the whole index is dropped).
    pub fn walk_bytes(&self) -> u64 {
        let price = |key: &Value, postings: &Vec<RowId>| {
            crate::mem::index_key_bytes(key)
                + postings.len() as u64 * crate::mem::INDEX_POSTING_BYTES
        };
        match self {
            Index::Hash(m) => m.iter().map(|(k, v)| price(k, v)).sum(),
            Index::RbTree(m) => m.iter().map(|(k, v)| price(k, v)).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // RowId has private fields; fabricate them through a throwaway table.
    fn row_ids(n: usize) -> Vec<RowId> {
        use crate::schema::Schema;
        use crate::table::StandardTable;
        use crate::value::DataType;
        let t = StandardTable::new("t", Schema::of(&[("x", DataType::Int)]).into_ref());
        (0..n)
            .map(|i| t.insert(vec![(i as i64).into()]).unwrap().0)
            .collect()
    }

    #[test]
    fn hash_index_multimap_behavior() {
        let ids = row_ids(3);
        let mut ix = Index::new(IndexKind::Hash);
        ix.insert("A".into(), ids[0]);
        ix.insert("A".into(), ids[1]);
        ix.insert("B".into(), ids[2]);
        assert_eq!(ix.lookup(&"A".into()), vec![ids[0], ids[1]]);
        ix.remove(&"A".into(), ids[0]);
        assert_eq!(ix.lookup(&"A".into()), vec![ids[1]]);
        assert_eq!(ix.entry_count(), 2);
        assert_eq!(ix.range(&"A".into(), &"B".into()), None);
    }

    #[test]
    fn rbtree_index_range() {
        let ids = row_ids(4);
        let mut ix = Index::new(IndexKind::RbTree);
        for (i, id) in ids.iter().enumerate() {
            ix.insert((i as i64).into(), *id);
        }
        assert_eq!(
            ix.range(&1i64.into(), &2i64.into()).unwrap(),
            vec![ids[1], ids[2]]
        );
        assert_eq!(ix.kind(), IndexKind::RbTree);
    }
}
