//! Exact byte metering: the resource-accounting model of the storage engine.
//!
//! Every structure that holds user data — record versions, secondary-index
//! entries, temporary-table tuples — is priced by the deterministic model in
//! this module, and the counters maintained against it are **exact by
//! construction**: the same functions price an object when it is charged at
//! a mutation point and when the deep-walk oracle recomputes a footprint
//! from scratch, so `metered == walked` is an invariant, not an estimate
//! (pinned by `tests/prop_mem.rs`).
//!
//! The model measures *logical* bytes:
//!
//! * every [`Value`] costs its inline enum size plus, for strings, the
//!   UTF-8 payload length — `Arc<str>` sharing between clones is **not**
//!   discounted (each holder is charged the full payload);
//! * a record version costs a fixed header (the `RecordData` struct plus
//!   the `Arc` control block) plus its values;
//! * an index entry costs one posting word per `(key, row)` pair plus, per
//!   *distinct key currently allocated*, the key value and a posting-list
//!   header (keys whose posting lists were emptied by removals stay
//!   allocated until the index is dropped, and stay metered — matching
//!   [`crate::index::Index::distinct_keys`]);
//! * allocator slack, `HashMap`/`Vec` spare capacity, and latch words are
//!   deliberately **not** metered (see KNOWN_FAILURES.md).

use crate::table::{RecordData, RowId};
use crate::value::Value;

/// Fixed per-record-version overhead: the `RecordData` struct (version id +
/// boxed-slice fat pointer) plus the two `Arc` control-block words.
pub const RECORD_HEADER_BYTES: u64 =
    (std::mem::size_of::<RecordData>() + 2 * std::mem::size_of::<usize>()) as u64;

/// One `(key, row)` posting in a secondary index.
pub const INDEX_POSTING_BYTES: u64 = std::mem::size_of::<RowId>() as u64;

/// Per-distinct-key overhead in a secondary index: the posting-list header
/// (`Vec` triple word) — the key's own bytes are priced by [`value_bytes`].
pub const INDEX_KEY_OVERHEAD_BYTES: u64 = (3 * std::mem::size_of::<usize>()) as u64;

/// Per-tuple overhead of a temporary table: the two boxed-slice fat
/// pointers of a `TempTuple`.
pub const TEMP_TUPLE_HEADER_BYTES: u64 = (4 * std::mem::size_of::<usize>()) as u64;

/// One pinning record pointer in a temporary tuple (the `Arc` itself; the
/// pinned version's bytes are accounted at its owning table, under rows if
/// current or under the version chain once superseded).
pub const TEMP_PTR_BYTES: u64 = std::mem::size_of::<usize>() as u64;

/// Modeled bytes of one value: inline enum size, plus the string payload.
pub fn value_bytes(v: &Value) -> u64 {
    let inline = std::mem::size_of::<Value>() as u64;
    match v {
        Value::Str(s) => inline + s.len() as u64,
        _ => inline,
    }
}

/// Modeled bytes of a slice of values (one row image).
pub fn row_bytes(values: &[Value]) -> u64 {
    values.iter().map(value_bytes).sum()
}

/// Modeled bytes of one record version: header + values.
pub fn record_bytes(rec: &RecordData) -> u64 {
    RECORD_HEADER_BYTES + row_bytes(rec.values())
}

/// Modeled bytes of one distinct index key (first posting under that key).
pub fn index_key_bytes(key: &Value) -> u64 {
    INDEX_KEY_OVERHEAD_BYTES + value_bytes(key)
}

/// Byte footprint of one table, split by what holds the bytes. Produced
/// both by the incremental per-shard counters ([`crate::StandardTable::mem`])
/// and by the deep-walk oracle ([`crate::StandardTable::__walk_mem`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableMem {
    /// Current (live) record versions referenced by row slots.
    pub row_bytes: u64,
    /// Secondary-index entries (postings + distinct keys), across all
    /// indexes of the table.
    pub index_bytes: u64,
    /// Superseded or deleted record versions still pinned by an outstanding
    /// reference (paper §6.1's reference-counted retention): bytes freed
    /// the moment the last transition/bound table retires.
    pub version_bytes: u64,
}

impl TableMem {
    /// Total bytes across all components.
    pub fn total(&self) -> u64 {
        self.row_bytes + self.index_bytes + self.version_bytes
    }

    /// Component-wise sum (shard roll-up).
    pub fn add(&mut self, other: TableMem) {
        self.row_bytes += other.row_bytes;
        self.index_bytes += other.index_bytes;
        self.version_bytes += other.version_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_bytes_charges_string_payload() {
        let inline = std::mem::size_of::<Value>() as u64;
        assert_eq!(value_bytes(&Value::Int(7)), inline);
        assert_eq!(value_bytes(&Value::Null), inline);
        assert_eq!(value_bytes(&Value::str("IBM")), inline + 3);
        assert_eq!(value_bytes(&Value::str("")), inline);
    }

    #[test]
    fn row_bytes_is_sum_of_values() {
        let row = [Value::str("IBM"), Value::Float(1.0)];
        assert_eq!(row_bytes(&row), value_bytes(&row[0]) + value_bytes(&row[1]));
    }

    #[test]
    fn table_mem_totals_and_sums() {
        let mut a = TableMem {
            row_bytes: 10,
            index_bytes: 20,
            version_bytes: 30,
        };
        assert_eq!(a.total(), 60);
        a.add(TableMem {
            row_bytes: 1,
            index_bytes: 2,
            version_bytes: 3,
        });
        assert_eq!(a.total(), 66);
        assert_eq!(a.row_bytes, 11);
    }
}
