//! An arena-based red-black tree map.
//!
//! STRIP stores table indexes "using either a hash or red-black tree
//! structure" (paper §6.1). This is a from-scratch red-black tree used as the
//! ordered index implementation. Nodes live in a `Vec` arena and refer to
//! each other by index, which keeps the implementation entirely safe Rust
//! and keeps nodes small and cache-friendly.
//!
//! Supported operations: insert, get, remove, in-order iteration, and
//! inclusive/exclusive range scans — everything an ordered secondary index
//! needs. The classic CLRS insertion/deletion fixup algorithms are used.

use std::cmp::Ordering;

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Color {
    Red,
    Black,
}

#[derive(Debug, Clone)]
struct Node<K, V> {
    key: K,
    val: V,
    left: u32,
    right: u32,
    parent: u32,
    color: Color,
}

/// An ordered map implemented as a red-black tree.
///
/// ```
/// use strip_storage::rbtree::RbMap;
///
/// let mut m = RbMap::new();
/// m.insert("ibm", 101.5);
/// m.insert("aapl", 42.0);
/// assert_eq!(m.get(&"ibm"), Some(&101.5));
/// let keys: Vec<&str> = m.iter().map(|(k, _)| *k).collect();
/// assert_eq!(keys, vec!["aapl", "ibm"]); // in-order
/// assert_eq!(m.remove(&"ibm"), Some(101.5));
/// m.check_invariants().unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct RbMap<K, V> {
    nodes: Vec<Option<Node<K, V>>>,
    /// Indices of removed nodes available for reuse.
    free: Vec<u32>,
    root: u32,
    len: usize,
}

impl<K: Ord, V> Default for RbMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord, V> RbMap<K, V> {
    /// New empty map.
    pub fn new() -> Self {
        RbMap {
            nodes: Vec::new(),
            free: Vec::new(),
            root: NIL,
            len: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn node(&self, i: u32) -> &Node<K, V> {
        self.nodes[i as usize].as_ref().expect("live node")
    }

    fn node_mut(&mut self, i: u32) -> &mut Node<K, V> {
        self.nodes[i as usize].as_mut().expect("live node")
    }

    fn color(&self, i: u32) -> Color {
        if i == NIL {
            Color::Black
        } else {
            self.node(i).color
        }
    }

    fn alloc(&mut self, key: K, val: V) -> u32 {
        let node = Node {
            key,
            val,
            left: NIL,
            right: NIL,
            parent: NIL,
            color: Color::Red,
        };
        if let Some(i) = self.free.pop() {
            self.nodes[i as usize] = Some(node);
            i
        } else {
            self.nodes.push(Some(node));
            (self.nodes.len() - 1) as u32
        }
    }

    /// Look up a key.
    pub fn get(&self, key: &K) -> Option<&V> {
        let i = self.find(key)?;
        Some(&self.node(i).val)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let i = self.find(key)?;
        Some(&mut self.node_mut(i).val)
    }

    /// True if the key is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.find(key).is_some()
    }

    fn find(&self, key: &K) -> Option<u32> {
        let mut cur = self.root;
        while cur != NIL {
            match key.cmp(&self.node(cur).key) {
                Ordering::Less => cur = self.node(cur).left,
                Ordering::Greater => cur = self.node(cur).right,
                Ordering::Equal => return Some(cur),
            }
        }
        None
    }

    /// Insert a key/value pair. Returns the previous value if the key was
    /// already present.
    pub fn insert(&mut self, key: K, val: V) -> Option<V> {
        // Standard BST descent.
        let mut parent = NIL;
        let mut cur = self.root;
        while cur != NIL {
            parent = cur;
            match key.cmp(&self.node(cur).key) {
                Ordering::Less => cur = self.node(cur).left,
                Ordering::Greater => cur = self.node(cur).right,
                Ordering::Equal => {
                    return Some(std::mem::replace(&mut self.node_mut(cur).val, val));
                }
            }
        }
        let n = self.alloc(key, val);
        self.node_mut(n).parent = parent;
        if parent == NIL {
            self.root = n;
        } else if self.node(n).key < self.node(parent).key {
            self.node_mut(parent).left = n;
        } else {
            self.node_mut(parent).right = n;
        }
        self.len += 1;
        self.insert_fixup(n);
        None
    }

    fn rotate_left(&mut self, x: u32) {
        let y = self.node(x).right;
        debug_assert_ne!(y, NIL);
        let y_left = self.node(y).left;
        self.node_mut(x).right = y_left;
        if y_left != NIL {
            self.node_mut(y_left).parent = x;
        }
        let xp = self.node(x).parent;
        self.node_mut(y).parent = xp;
        if xp == NIL {
            self.root = y;
        } else if self.node(xp).left == x {
            self.node_mut(xp).left = y;
        } else {
            self.node_mut(xp).right = y;
        }
        self.node_mut(y).left = x;
        self.node_mut(x).parent = y;
    }

    fn rotate_right(&mut self, x: u32) {
        let y = self.node(x).left;
        debug_assert_ne!(y, NIL);
        let y_right = self.node(y).right;
        self.node_mut(x).left = y_right;
        if y_right != NIL {
            self.node_mut(y_right).parent = x;
        }
        let xp = self.node(x).parent;
        self.node_mut(y).parent = xp;
        if xp == NIL {
            self.root = y;
        } else if self.node(xp).right == x {
            self.node_mut(xp).right = y;
        } else {
            self.node_mut(xp).left = y;
        }
        self.node_mut(y).right = x;
        self.node_mut(x).parent = y;
    }

    fn insert_fixup(&mut self, mut z: u32) {
        while self.color(self.node(z).parent) == Color::Red {
            let p = self.node(z).parent;
            let g = self.node(p).parent;
            if p == self.node(g).left {
                let uncle = self.node(g).right;
                if self.color(uncle) == Color::Red {
                    self.node_mut(p).color = Color::Black;
                    self.node_mut(uncle).color = Color::Black;
                    self.node_mut(g).color = Color::Red;
                    z = g;
                } else {
                    if z == self.node(p).right {
                        z = p;
                        self.rotate_left(z);
                    }
                    let p = self.node(z).parent;
                    let g = self.node(p).parent;
                    self.node_mut(p).color = Color::Black;
                    self.node_mut(g).color = Color::Red;
                    self.rotate_right(g);
                }
            } else {
                let uncle = self.node(g).left;
                if self.color(uncle) == Color::Red {
                    self.node_mut(p).color = Color::Black;
                    self.node_mut(uncle).color = Color::Black;
                    self.node_mut(g).color = Color::Red;
                    z = g;
                } else {
                    if z == self.node(p).left {
                        z = p;
                        self.rotate_right(z);
                    }
                    let p = self.node(z).parent;
                    let g = self.node(p).parent;
                    self.node_mut(p).color = Color::Black;
                    self.node_mut(g).color = Color::Red;
                    self.rotate_left(g);
                }
            }
            if z == self.root {
                break;
            }
        }
        let root = self.root;
        self.node_mut(root).color = Color::Black;
    }

    fn minimum(&self, mut x: u32) -> u32 {
        while self.node(x).left != NIL {
            x = self.node(x).left;
        }
        x
    }

    /// Replace subtree rooted at `u` with subtree rooted at `v` (CLRS
    /// transplant). `v` may be NIL.
    fn transplant(&mut self, u: u32, v: u32) {
        let up = self.node(u).parent;
        if up == NIL {
            self.root = v;
        } else if self.node(up).left == u {
            self.node_mut(up).left = v;
        } else {
            self.node_mut(up).right = v;
        }
        if v != NIL {
            self.node_mut(v).parent = up;
        }
    }

    /// Remove a key, returning its value if present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let z = self.find(key)?;
        self.len -= 1;

        // `fix_at` is the node that moves into the removed position; we track
        // its parent explicitly because it may be NIL.
        let mut y = z;
        let mut y_original_color = self.node(y).color;
        let x: u32;
        let x_parent: u32;
        if self.node(z).left == NIL {
            x = self.node(z).right;
            x_parent = self.node(z).parent;
            self.transplant(z, x);
        } else if self.node(z).right == NIL {
            x = self.node(z).left;
            x_parent = self.node(z).parent;
            self.transplant(z, x);
        } else {
            y = self.minimum(self.node(z).right);
            y_original_color = self.node(y).color;
            x = self.node(y).right;
            if self.node(y).parent == z {
                x_parent = y;
                if x != NIL {
                    self.node_mut(x).parent = y;
                }
            } else {
                x_parent = self.node(y).parent;
                self.transplant(y, x);
                let zr = self.node(z).right;
                self.node_mut(y).right = zr;
                self.node_mut(zr).parent = y;
            }
            self.transplant(z, y);
            let zl = self.node(z).left;
            self.node_mut(y).left = zl;
            self.node_mut(zl).parent = y;
            self.node_mut(y).color = self.node(z).color;
        }
        if y_original_color == Color::Black {
            self.delete_fixup(x, x_parent);
        }
        // `z` has been transplanted out of the tree; reclaim its arena slot.
        let node = self.nodes[z as usize]
            .take()
            .expect("removed node was live");
        self.free.push(z);
        Some(node.val)
    }

    fn delete_fixup(&mut self, mut x: u32, mut x_parent: u32) {
        while x != self.root && self.color(x) == Color::Black {
            if x_parent == NIL {
                break;
            }
            if x == self.node(x_parent).left {
                let mut w = self.node(x_parent).right;
                if self.color(w) == Color::Red {
                    self.node_mut(w).color = Color::Black;
                    self.node_mut(x_parent).color = Color::Red;
                    self.rotate_left(x_parent);
                    w = self.node(x_parent).right;
                }
                if self.color(self.node(w).left) == Color::Black
                    && self.color(self.node(w).right) == Color::Black
                {
                    self.node_mut(w).color = Color::Red;
                    x = x_parent;
                    x_parent = self.node(x).parent;
                } else {
                    if self.color(self.node(w).right) == Color::Black {
                        let wl = self.node(w).left;
                        if wl != NIL {
                            self.node_mut(wl).color = Color::Black;
                        }
                        self.node_mut(w).color = Color::Red;
                        self.rotate_right(w);
                        w = self.node(x_parent).right;
                    }
                    self.node_mut(w).color = self.node(x_parent).color;
                    self.node_mut(x_parent).color = Color::Black;
                    let wr = self.node(w).right;
                    if wr != NIL {
                        self.node_mut(wr).color = Color::Black;
                    }
                    self.rotate_left(x_parent);
                    x = self.root;
                    x_parent = NIL;
                }
            } else {
                let mut w = self.node(x_parent).left;
                if self.color(w) == Color::Red {
                    self.node_mut(w).color = Color::Black;
                    self.node_mut(x_parent).color = Color::Red;
                    self.rotate_right(x_parent);
                    w = self.node(x_parent).left;
                }
                if self.color(self.node(w).right) == Color::Black
                    && self.color(self.node(w).left) == Color::Black
                {
                    self.node_mut(w).color = Color::Red;
                    x = x_parent;
                    x_parent = self.node(x).parent;
                } else {
                    if self.color(self.node(w).left) == Color::Black {
                        let wr = self.node(w).right;
                        if wr != NIL {
                            self.node_mut(wr).color = Color::Black;
                        }
                        self.node_mut(w).color = Color::Red;
                        self.rotate_left(w);
                        w = self.node(x_parent).left;
                    }
                    self.node_mut(w).color = self.node(x_parent).color;
                    self.node_mut(x_parent).color = Color::Black;
                    let wl = self.node(w).left;
                    if wl != NIL {
                        self.node_mut(wl).color = Color::Black;
                    }
                    self.rotate_right(x_parent);
                    x = self.root;
                    x_parent = NIL;
                }
            }
        }
        if x != NIL {
            self.node_mut(x).color = Color::Black;
        }
    }

    /// In-order iterator over `(key, value)` pairs.
    pub fn iter(&self) -> RbIter<'_, K, V> {
        let mut stack = Vec::new();
        let mut cur = self.root;
        while cur != NIL {
            stack.push(cur);
            cur = self.node(cur).left;
        }
        RbIter { map: self, stack }
    }

    /// In-order iterator over keys in `[lo, hi]` (inclusive bounds).
    pub fn range(&self, lo: &K, hi: &K) -> Vec<(&K, &V)> {
        let mut out = Vec::new();
        self.range_rec(self.root, lo, hi, &mut out);
        out
    }

    fn range_rec<'a>(&'a self, n: u32, lo: &K, hi: &K, out: &mut Vec<(&'a K, &'a V)>) {
        if n == NIL {
            return;
        }
        let node = self.node(n);
        if node.key > *lo {
            self.range_rec(node.left, lo, hi, out);
        }
        if node.key >= *lo && node.key <= *hi {
            out.push((&node.key, &node.val));
        }
        if node.key < *hi {
            self.range_rec(node.right, lo, hi, out);
        }
    }

    /// Validate the red-black invariants. Test/debug helper:
    /// 1. The root is black.
    /// 2. No red node has a red child.
    /// 3. Every root-to-leaf path has the same black height.
    /// 4. In-order traversal yields strictly increasing keys.
    pub fn check_invariants(&self) -> std::result::Result<(), String> {
        if self.root != NIL && self.node(self.root).color != Color::Black {
            return Err("root is not black".into());
        }
        let mut keys = Vec::with_capacity(self.len);
        for (k, _) in self.iter() {
            keys.push(k);
        }
        if keys.windows(2).any(|w| w[0] >= w[1]) {
            return Err("in-order keys not strictly increasing".into());
        }
        if keys.len() != self.len {
            return Err(format!(
                "len mismatch: iter yielded {} but len={}",
                keys.len(),
                self.len
            ));
        }
        self.black_height(self.root).map(|_| ())
    }

    fn black_height(&self, n: u32) -> std::result::Result<usize, String> {
        if n == NIL {
            return Ok(1);
        }
        let node = self.node(n);
        if node.color == Color::Red
            && (self.color(node.left) == Color::Red || self.color(node.right) == Color::Red)
        {
            return Err("red node with red child".into());
        }
        let lh = self.black_height(node.left)?;
        let rh = self.black_height(node.right)?;
        if lh != rh {
            return Err(format!("black-height mismatch: {lh} vs {rh}"));
        }
        Ok(lh + if node.color == Color::Black { 1 } else { 0 })
    }
}

/// In-order iterator.
pub struct RbIter<'a, K, V> {
    map: &'a RbMap<K, V>,
    stack: Vec<u32>,
}

impl<'a, K: Ord, V> Iterator for RbIter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        let n = self.stack.pop()?;
        let node = self.map.node(n);
        let mut cur = node.right;
        while cur != NIL {
            self.stack.push(cur);
            cur = self.map.node(cur).left;
        }
        Some((&node.key, &node.val))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m = RbMap::new();
        assert!(m.is_empty());
        for i in 0..100 {
            assert_eq!(m.insert(i, i * 10), None);
            m.check_invariants().unwrap();
        }
        assert_eq!(m.len(), 100);
        for i in 0..100 {
            assert_eq!(m.get(&i), Some(&(i * 10)));
        }
        assert_eq!(m.insert(50, 999), Some(500));
        assert_eq!(m.len(), 100);
        for i in (0..100).step_by(2) {
            let expect = if i == 50 { 999 } else { i * 10 };
            assert_eq!(m.remove(&i), Some(expect));
            m.check_invariants().unwrap();
        }
        assert_eq!(m.len(), 50);
        assert_eq!(m.remove(&2), None);
    }

    #[test]
    fn iteration_is_sorted() {
        let mut m = RbMap::new();
        for i in [5, 3, 9, 1, 7, 2, 8, 0, 6, 4] {
            m.insert(i, ());
        }
        let keys: Vec<i32> = m.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn range_scan_inclusive() {
        let mut m = RbMap::new();
        for i in 0..20 {
            m.insert(i, i);
        }
        let r: Vec<i32> = m.range(&5, &9).into_iter().map(|(k, _)| *k).collect();
        assert_eq!(r, vec![5, 6, 7, 8, 9]);
        let r: Vec<i32> = m.range(&18, &40).into_iter().map(|(k, _)| *k).collect();
        assert_eq!(r, vec![18, 19]);
        assert!(m.range(&30, &40).is_empty());
    }

    #[test]
    fn descending_and_interleaved_ops_keep_invariants() {
        let mut m = RbMap::new();
        for i in (0..256).rev() {
            m.insert(i, i);
        }
        m.check_invariants().unwrap();
        // Remove in an adversarial pattern.
        for i in 0..256 {
            let k = (i * 37) % 256;
            m.remove(&k);
            m.check_invariants().unwrap();
        }
        assert!(m.is_empty());
    }

    #[test]
    fn arena_slots_are_reused() {
        let mut m = RbMap::new();
        for i in 0..16 {
            m.insert(i, i);
        }
        let cap = m.nodes.len();
        for i in 0..8 {
            m.remove(&i);
        }
        for i in 100..108 {
            m.insert(i, i);
        }
        assert_eq!(m.nodes.len(), cap, "freed slots should be reused");
        m.check_invariants().unwrap();
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut m = RbMap::new();
        m.insert("k".to_string(), 1);
        *m.get_mut(&"k".to_string()).unwrap() += 41;
        assert_eq!(m.get(&"k".to_string()), Some(&42));
    }
}
