//! The catalog: named standard tables (plus registered view definitions).
//!
//! Tables are shared as plain `Arc<StandardTable>`: physical safety comes
//! from the table's own sharded row latches and per-index latches; *logical*
//! isolation is provided by the strict-2PL lock manager in `strip-txn`.

use crate::error::{Result, StorageError};
use crate::schema::SchemaRef;
use crate::table::{LatchObserver, StandardTable};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared handle to a standard table.
pub type TableRef = Arc<StandardTable>;

/// A stored view definition. The catalog treats the definition text as
/// opaque; the SQL layer parses it. Materialized views are backed by a
/// standard table of the same name maintained by rules (the paper's usage).
#[derive(Debug, Clone)]
pub struct ViewDef {
    /// View name (lower-cased).
    pub name: String,
    /// The defining `SELECT ...` text.
    pub query_text: String,
    /// Whether a backing table was materialized at creation.
    pub materialized: bool,
}

/// The database catalog.
#[derive(Default)]
pub struct Catalog {
    tables: RwLock<HashMap<String, TableRef>>,
    views: RwLock<HashMap<String, ViewDef>>,
    /// Schema epoch: bumped by every DDL change (table/view/index create or
    /// drop). Prepared physical plans are valid only for the epoch they were
    /// built under; a mismatch forces replanning.
    epoch: AtomicU64,
    /// Latch-contention observer installed on every table — existing ones at
    /// [`Catalog::set_latch_observer`] time and future ones at creation.
    latch_obs: RwLock<Option<LatchObserver>>,
}

impl std::fmt::Debug for Catalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Catalog")
            .field("tables", &self.tables)
            .field("views", &self.views)
            .field("epoch", &self.epoch)
            .finish_non_exhaustive()
    }
}

impl Catalog {
    /// New empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Current schema epoch. Monotonically increasing; any DDL invalidates
    /// plans prepared under earlier epochs.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Record a DDL change (also called by layers that mutate table-level
    /// metadata the catalog cannot see, e.g. `CREATE INDEX`). Returns the
    /// new epoch.
    pub fn bump_epoch(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Combined statistics epoch: the wrapping sum of every table's
    /// [`StandardTable::stats_epoch`]. Changes whenever any table's
    /// cardinality crosses a power-of-two size class, which is the signal
    /// the plan cache uses (together with the schema epoch) to invalidate
    /// physical plans whose cost-based choices may have flipped. Only
    /// equality of epochs is ever compared, so a wrapping sum is safe.
    pub fn stats_epoch(&self) -> u64 {
        self.tables
            .read()
            .values()
            .fold(0u64, |acc, t| acc.wrapping_add(t.stats_epoch()))
    }

    /// Install (or clear) a shard-latch contention observer on every table:
    /// the ones that already exist and any created afterwards.
    pub fn set_latch_observer(&self, obs: Option<LatchObserver>) {
        *self.latch_obs.write() = obs.clone();
        for table in self.tables.read().values() {
            table.set_latch_observer(obs.clone());
        }
    }

    /// Create a table. Fails if a table or view of that name exists.
    pub fn create_table(&self, name: &str, schema: SchemaRef) -> Result<TableRef> {
        let key = name.to_ascii_lowercase();
        let mut tables = self.tables.write();
        if tables.contains_key(&key) || self.views.read().contains_key(&key) {
            return Err(StorageError::TableExists(key));
        }
        let table = Arc::new(StandardTable::new(key.clone(), schema));
        table.set_latch_observer(self.latch_obs.read().clone());
        tables.insert(key, table.clone());
        self.bump_epoch();
        Ok(table)
    }

    /// Drop a table.
    pub fn drop_table(&self, name: &str) -> Result<()> {
        let key = name.to_ascii_lowercase();
        self.tables
            .write()
            .remove(&key)
            .map(|_| ())
            .ok_or(StorageError::NoSuchTable(key))?;
        self.bump_epoch();
        Ok(())
    }

    /// Look up a table.
    pub fn table(&self, name: &str) -> Result<TableRef> {
        let key = name.to_ascii_lowercase();
        self.tables
            .read()
            .get(&key)
            .cloned()
            .ok_or(StorageError::NoSuchTable(key))
    }

    /// True if the named table exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.read().contains_key(&name.to_ascii_lowercase())
    }

    /// Byte footprint of every table, sorted by name. One consistent-ish
    /// pass for memory probes: each table's meters are read in turn (exact
    /// per table at mutation-quiescent points).
    pub fn mem_tables(&self) -> Vec<(String, crate::mem::TableMem)> {
        let mut v: Vec<(String, crate::mem::TableMem)> = self
            .tables
            .read()
            .iter()
            .map(|(name, t)| (name.clone(), t.mem()))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// All table names, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.tables.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Register a view definition.
    pub fn create_view(&self, def: ViewDef) -> Result<()> {
        let key = def.name.to_ascii_lowercase();
        let mut views = self.views.write();
        if views.contains_key(&key) || (!def.materialized && self.tables.read().contains_key(&key))
        {
            return Err(StorageError::TableExists(key));
        }
        views.insert(key.clone(), ViewDef { name: key, ..def });
        self.bump_epoch();
        Ok(())
    }

    /// Look up a view definition.
    pub fn view(&self, name: &str) -> Option<ViewDef> {
        self.views.read().get(&name.to_ascii_lowercase()).cloned()
    }

    /// All view names, sorted.
    pub fn view_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.views.read().keys().cloned().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::DataType;

    fn schema() -> SchemaRef {
        Schema::of(&[("x", DataType::Int)]).into_ref()
    }

    #[test]
    fn create_lookup_drop() {
        let c = Catalog::new();
        c.create_table("T1", schema()).unwrap();
        assert!(c.has_table("t1"));
        assert!(c.has_table("T1"));
        let t = c.table("t1").unwrap();
        assert_eq!(t.name(), "t1");
        c.drop_table("T1").unwrap();
        assert!(!c.has_table("t1"));
        assert!(matches!(c.table("t1"), Err(StorageError::NoSuchTable(_))));
    }

    #[test]
    fn duplicate_name_rejected() {
        let c = Catalog::new();
        c.create_table("t", schema()).unwrap();
        assert!(matches!(
            c.create_table("T", schema()),
            Err(StorageError::TableExists(_))
        ));
    }

    #[test]
    fn views_registered_and_conflict_with_tables() {
        let c = Catalog::new();
        c.create_view(ViewDef {
            name: "v1".into(),
            query_text: "select x from t".into(),
            materialized: false,
        })
        .unwrap();
        assert!(c.view("V1").is_some());
        // A plain view name blocks table creation...
        assert!(c.create_table("v1", schema()).is_err());
        // ...but a materialized view coexists with its backing table.
        c.create_table("mv", schema()).unwrap();
        c.create_view(ViewDef {
            name: "mv".into(),
            query_text: "select x from t".into(),
            materialized: true,
        })
        .unwrap();
        assert_eq!(c.view_names(), vec!["mv".to_string(), "v1".to_string()]);
    }

    #[test]
    fn ddl_bumps_schema_epoch() {
        let c = Catalog::new();
        let e0 = c.epoch();
        c.create_table("t", schema()).unwrap();
        let e1 = c.epoch();
        assert!(e1 > e0);
        c.drop_table("t").unwrap();
        let e2 = c.epoch();
        assert!(e2 > e1);
        c.create_view(ViewDef {
            name: "v".into(),
            query_text: String::new(),
            materialized: false,
        })
        .unwrap();
        assert!(c.epoch() > e2);
        // Failed DDL does not bump.
        let e3 = c.epoch();
        assert!(c.drop_table("missing").is_err());
        assert_eq!(c.epoch(), e3);
        // Manual bump (used for CREATE INDEX, which mutates table metadata).
        assert_eq!(c.bump_epoch(), e3 + 1);
    }

    #[test]
    fn catalog_stats_epoch_follows_table_growth() {
        let c = Catalog::new();
        let t = c.create_table("t", schema()).unwrap();
        let u = c.create_table("u", schema()).unwrap();
        let e0 = c.stats_epoch();
        t.insert(vec![1i64.into()]).unwrap(); // 0 -> 1 crosses a class
        let e1 = c.stats_epoch();
        assert_ne!(e1, e0);
        u.insert(vec![1i64.into()]).unwrap(); // other table crosses too
        assert_ne!(c.stats_epoch(), e1);
    }

    #[test]
    fn table_names_sorted() {
        let c = Catalog::new();
        c.create_table("zeta", schema()).unwrap();
        c.create_table("alpha", schema()).unwrap();
        assert_eq!(
            c.table_names(),
            vec!["alpha".to_string(), "zeta".to_string()]
        );
    }
}
