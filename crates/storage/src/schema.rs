//! Table schemas.

use crate::error::{Result, StorageError};
use crate::value::{DataType, Value};
use std::fmt;
use std::sync::Arc;

/// One column of a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Lower-cased column name. Names are case-insensitive in the SQL layer
    /// and normalized before reaching storage.
    pub name: String,
    /// Declared data type.
    pub dtype: DataType,
}

impl Column {
    /// Construct a column, normalizing the name to lower case.
    pub fn new(name: impl AsRef<str>, dtype: DataType) -> Column {
        Column {
            name: name.as_ref().to_ascii_lowercase(),
            dtype,
        }
    }
}

/// An ordered list of columns. Shared via `Arc` because every tuple-bearing
/// structure (tables, transition tables, bound tables, query results)
/// references a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<Column>,
}

/// Shared schema handle.
pub type SchemaRef = Arc<Schema>;

impl Schema {
    /// Build a schema from columns. Column names must be unique.
    pub fn new(columns: Vec<Column>) -> Result<Schema> {
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|p| p.name == c.name) {
                return Err(StorageError::Invariant(format!(
                    "duplicate column name `{}` in schema",
                    c.name
                )));
            }
        }
        Ok(Schema { columns })
    }

    /// Build a schema from `(name, type)` pairs. Panics on duplicates; used
    /// for statically-known schemas in tests and builders.
    pub fn of(cols: &[(&str, DataType)]) -> Schema {
        Schema::new(cols.iter().map(|(n, t)| Column::new(n, *t)).collect())
            .expect("static schema must have unique column names")
    }

    /// Wrap in an `Arc`.
    pub fn into_ref(self) -> SchemaRef {
        Arc::new(self)
    }

    /// The columns, in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of the named column (name is matched case-insensitively).
    pub fn index_of(&self, name: &str) -> Option<usize> {
        let lower = name.to_ascii_lowercase();
        self.columns.iter().position(|c| c.name == lower)
    }

    /// Index of the named column or an error.
    pub fn index_of_ok(&self, name: &str) -> Result<usize> {
        self.index_of(name)
            .ok_or_else(|| StorageError::NoSuchColumn(name.to_string()))
    }

    /// Column metadata by position.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Validate a row against this schema, coercing permitted widenings
    /// (int literal into float column, etc.). Returns the coerced row.
    pub fn check_row(&self, row: Vec<Value>) -> Result<Vec<Value>> {
        if row.len() != self.arity() {
            return Err(StorageError::ArityMismatch {
                expected: self.arity(),
                got: row.len(),
            });
        }
        row.into_iter()
            .zip(&self.columns)
            .map(|(v, c)| {
                if v.conforms_to(c.dtype) {
                    Ok(v.coerce(c.dtype))
                } else {
                    Err(StorageError::TypeMismatch {
                        column: c.name.clone(),
                        expected: c.dtype.name(),
                        got: v.type_name(),
                    })
                }
            })
            .collect()
    }

    /// A new schema equal to `self` with extra columns appended. Used to add
    /// the system columns `execute_order` and `commit_time` to transition
    /// and bound tables (paper §2).
    pub fn extended(&self, extra: &[(&str, DataType)]) -> Result<Schema> {
        let mut cols = self.columns.clone();
        cols.extend(extra.iter().map(|(n, t)| Column::new(n, *t)));
        Schema::new(cols)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", c.name, c.dtype)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_columns_rejected() {
        let cols = vec![
            Column::new("a", DataType::Int),
            Column::new("A", DataType::Float),
        ];
        assert!(Schema::new(cols).is_err());
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let s = Schema::of(&[("symbol", DataType::Str), ("price", DataType::Float)]);
        assert_eq!(s.index_of("SYMBOL"), Some(0));
        assert_eq!(s.index_of("Price"), Some(1));
        assert_eq!(s.index_of("missing"), None);
    }

    #[test]
    fn check_row_coerces_int_into_float_column() {
        let s = Schema::of(&[("price", DataType::Float)]);
        let row = s.check_row(vec![Value::Int(30)]).unwrap();
        assert_eq!(row[0], Value::Float(30.0));
    }

    #[test]
    fn check_row_rejects_bad_arity_and_type() {
        let s = Schema::of(&[("price", DataType::Float)]);
        assert!(matches!(
            s.check_row(vec![]),
            Err(StorageError::ArityMismatch { .. })
        ));
        assert!(matches!(
            s.check_row(vec![Value::str("oops")]),
            Err(StorageError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn extended_appends_system_columns() {
        let s = Schema::of(&[("a", DataType::Int)]);
        let e = s.extended(&[("execute_order", DataType::Int)]).unwrap();
        assert_eq!(e.arity(), 2);
        assert_eq!(e.index_of("execute_order"), Some(1));
    }

    #[test]
    fn display() {
        let s = Schema::of(&[("a", DataType::Int), ("b", DataType::Str)]);
        assert_eq!(s.to_string(), "(a int, b str)");
    }
}
