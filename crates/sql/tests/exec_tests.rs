//! Executor tests against a minimal `Env` implementation (no transactions:
//! DML writes straight through to storage).

use std::collections::HashMap;
use std::sync::Arc;
use strip_sql::exec::{
    execute_delete, execute_insert, execute_query, execute_query_bound, execute_update, Env, Rel,
};
use strip_sql::expr::ScalarFn;
use strip_sql::parser::{parse_query, parse_statement};
use strip_sql::{SqlError, Statement};
use strip_storage::{
    Catalog, ColumnSource, CountingMeter, DataType, IndexKind, Meter, Op, Schema, TempTable, Value,
};

struct TestEnv {
    catalog: Catalog,
    temps: HashMap<String, Arc<TempTable>>,
    meter: CountingMeter,
    fns: HashMap<String, ScalarFn>,
}

impl TestEnv {
    fn new() -> TestEnv {
        TestEnv {
            catalog: Catalog::new(),
            temps: HashMap::new(),
            meter: CountingMeter::new(),
            fns: HashMap::new(),
        }
    }

    fn ddl(&self, sql: &str) {
        match parse_statement(sql).unwrap() {
            Statement::CreateTable(ct) => {
                let schema = Schema::new(
                    ct.columns
                        .iter()
                        .map(|(n, t)| strip_storage::Column::new(n, *t))
                        .collect(),
                )
                .unwrap()
                .into_ref();
                self.catalog.create_table(&ct.name, schema).unwrap();
            }
            Statement::CreateIndex(ci) => {
                let t = self.catalog.table(&ci.table).unwrap();
                let kind = if ci.using_rbtree {
                    IndexKind::RbTree
                } else {
                    IndexKind::Hash
                };
                t.create_index(ci.name, &ci.column, kind).unwrap();
            }
            other => panic!("not DDL: {other:?}"),
        }
    }

    fn run(&self, sql: &str) -> strip_sql::ResultSet {
        let q = parse_query(sql).unwrap();
        execute_query(self, &q, &[]).unwrap()
    }

    fn dml(&self, sql: &str) -> usize {
        match parse_statement(sql).unwrap() {
            Statement::Insert(i) => execute_insert(self, &i, &[]).unwrap(),
            Statement::Update(u) => execute_update(self, &u, &[]).unwrap(),
            Statement::Delete(d) => execute_delete(self, &d, &[]).unwrap(),
            other => panic!("not DML: {other:?}"),
        }
    }
}

impl Env for TestEnv {
    fn meter(&self) -> &dyn Meter {
        &self.meter
    }

    fn relation(&self, name: &str) -> Option<Rel> {
        let key = name.to_ascii_lowercase();
        if let Some(t) = self.temps.get(&key) {
            return Some(Rel::Temp(t.clone()));
        }
        self.catalog.table(&key).ok().map(Rel::Standard)
    }

    fn scalar_fn(&self, name: &str) -> Option<ScalarFn> {
        self.fns.get(&name.to_ascii_lowercase()).cloned()
    }

    fn dml_insert(&self, table: &str, row: Vec<Value>) -> strip_sql::Result<()> {
        let t = self.catalog.table(table)?;
        t.insert(row)?;
        Ok(())
    }

    fn dml_update(
        &self,
        table: &str,
        id: strip_storage::RowId,
        new: Vec<Value>,
    ) -> strip_sql::Result<()> {
        let t = self.catalog.table(table)?;
        t.update(id, new)?;
        Ok(())
    }

    fn dml_delete(&self, table: &str, id: strip_storage::RowId) -> strip_sql::Result<()> {
        let t = self.catalog.table(table)?;
        t.delete(id)?;
        Ok(())
    }
}

/// The paper's Figure-4 data set.
fn figure4_env() -> TestEnv {
    let env = TestEnv::new();
    env.ddl("create table stocks (symbol str, price float)");
    env.ddl("create table comps_list (comp str, symbol str, weight float)");
    env.ddl("create table comp_prices (comp str, price float)");
    env.ddl("create index ix_cl_symbol on comps_list (symbol)");
    env.ddl("create index ix_cp_comp on comp_prices (comp)");
    env.dml("insert into stocks values ('S1', 30), ('S2', 40), ('S3', 50)");
    env.dml(
        "insert into comps_list values \
         ('C1','S1',0.5), ('C1','S3',0.5), ('C2','S1',0.3), ('C2','S2',0.7)",
    );
    env.dml("insert into comp_prices values ('C1', 40.0), ('C2', 37.0)");
    env
}

#[test]
fn point_select() {
    let env = figure4_env();
    let rs = env.run("select price from stocks where symbol = 'S2'");
    assert_eq!(rs.len(), 1);
    assert_eq!(rs.single("price").unwrap().as_f64(), Some(40.0));
}

#[test]
fn join_computes_figure4_view() {
    let env = figure4_env();
    // comp_prices as defined in §3: select comp, sum(price*weight) group by comp.
    let rs = env.run(
        "select comp, sum(price*weight) as price \
         from stocks, comps_list \
         where stocks.symbol = comps_list.symbol \
         group by comp order by comp",
    );
    assert_eq!(rs.len(), 2);
    assert_eq!(rs.value(0, "comp").unwrap().as_str(), Some("C1"));
    assert_eq!(rs.value(0, "price").unwrap().as_f64(), Some(40.0));
    assert_eq!(rs.value(1, "comp").unwrap().as_str(), Some("C2"));
    assert_eq!(rs.value(1, "price").unwrap().as_f64(), Some(37.0));
}

#[test]
fn three_way_join() {
    let env = figure4_env();
    let rs = env.run(
        "select c.comp, s.price, p.price as comp_price \
         from stocks s, comps_list c, comp_prices p \
         where s.symbol = c.symbol and c.comp = p.comp and s.symbol = 'S2' \
         order by c.comp",
    );
    assert_eq!(rs.len(), 1);
    assert_eq!(rs.value(0, "comp").unwrap().as_str(), Some("C2"));
    assert_eq!(rs.value(0, "comp_price").unwrap().as_f64(), Some(37.0));
}

#[test]
fn index_probe_avoids_full_scan() {
    let env = figure4_env();
    env.meter.reset();
    // stocks has no index: the 3-row side seeds; comps_list (4 rows, indexed
    // on symbol) must be probed, not scanned.
    let _ = env.run(
        "select comp from stocks, comps_list \
         where stocks.symbol = comps_list.symbol and stocks.symbol = 'S1'",
    );
    assert!(env.meter.count(Op::IndexProbe) >= 1, "index probe expected");
    // Fetches: 3 stock rows + probed comps_list rows (2 for S1), not 3*4.
    assert!(env.meter.count(Op::FetchCursor) <= 6);
}

#[test]
fn update_with_increment_and_index() {
    let env = figure4_env();
    let n = env.dml("update comp_prices set price += 1.5 where comp = 'C2'");
    assert_eq!(n, 1);
    let rs = env.run("select price from comp_prices where comp = 'C2'");
    assert_eq!(rs.single("price").unwrap().as_f64(), Some(38.5));
}

#[test]
fn update_all_rows_and_delete() {
    let env = figure4_env();
    assert_eq!(env.dml("update stocks set price = price * 2"), 3);
    let rs = env.run("select sum(price) as s from stocks");
    assert_eq!(rs.single("s").unwrap().as_f64(), Some(240.0));
    assert_eq!(env.dml("delete from stocks where price > 70"), 2);
    let rs = env.run("select count(*) as n from stocks");
    assert_eq!(rs.single("n").unwrap().as_i64(), Some(1));
}

#[test]
fn insert_select() {
    let env = figure4_env();
    env.ddl("create table snapshot (symbol str, price float)");
    assert_eq!(
        env.dml("insert into snapshot select symbol, price from stocks"),
        3
    );
    let rs = env.run("select count(*) as n from snapshot");
    assert_eq!(rs.single("n").unwrap().as_i64(), Some(3));
}

#[test]
fn aggregates_full_set() {
    let env = figure4_env();
    let rs = env.run(
        "select count(*) as n, sum(price) as s, avg(price) as a, \
         min(price) as lo, max(price) as hi from stocks",
    );
    assert_eq!(rs.single("n").unwrap().as_i64(), Some(1 + 2));
    assert_eq!(rs.single("s").unwrap().as_f64(), Some(120.0));
    assert_eq!(rs.single("a").unwrap().as_f64(), Some(40.0));
    assert_eq!(rs.single("lo").unwrap().as_f64(), Some(30.0));
    assert_eq!(rs.single("hi").unwrap().as_f64(), Some(50.0));
}

#[test]
fn aggregate_over_empty_input() {
    let env = figure4_env();
    let rs = env.run("select count(*) as n, sum(price) as s from stocks where price > 1000");
    assert_eq!(rs.len(), 1);
    assert_eq!(rs.single("n").unwrap().as_i64(), Some(0));
    assert!(rs.single("s").unwrap().is_null());
}

#[test]
fn group_by_expression_over_aggregates() {
    let env = figure4_env();
    // Arithmetic combining aggregates and group keys.
    let rs = env
        .run("select comp, sum(weight) * 100 as pct from comps_list group by comp order by comp");
    assert_eq!(rs.len(), 2);
    assert_eq!(rs.value(0, "pct").unwrap().as_f64(), Some(100.0));
}

#[test]
fn order_by_desc_and_limit() {
    let env = figure4_env();
    let rs = env.run("select symbol, price from stocks order by price desc limit 2");
    assert_eq!(rs.len(), 2);
    assert_eq!(rs.value(0, "symbol").unwrap().as_str(), Some("S3"));
    assert_eq!(rs.value(1, "symbol").unwrap().as_str(), Some("S2"));
}

#[test]
fn wildcard_and_qualified_wildcard() {
    let env = figure4_env();
    let rs = env.run("select * from stocks where symbol = 'S1'");
    assert_eq!(rs.schema.arity(), 2);
    let rs = env.run(
        "select s.* from stocks s, comps_list c where s.symbol = c.symbol and c.comp = 'C1' \
         order by s.symbol",
    );
    assert_eq!(rs.len(), 2);
    assert_eq!(rs.schema.arity(), 2);
}

#[test]
fn scalar_function_in_query() {
    let mut env = figure4_env();
    env.fns.insert(
        "double_it".to_string(),
        ScalarFn {
            name: "double_it".into(),
            returns: DataType::Float,
            f: Arc::new(|args| {
                Ok(Value::Float(
                    args[0]
                        .as_f64()
                        .ok_or_else(|| SqlError::exec("double_it needs a number"))?
                        * 2.0,
                ))
            }),
            model_evals: 0,
        },
    );
    let rs = env.run("select double_it(price) as p2 from stocks where symbol = 'S1'");
    assert_eq!(rs.single("p2").unwrap().as_f64(), Some(60.0));
}

#[test]
fn bound_result_uses_pointer_columns() {
    let env = figure4_env();
    let q = parse_query("select comp, symbol, weight from comps_list where symbol = 'S1'").unwrap();
    let bound = execute_query_bound(&env, &q, &[], "matches").unwrap();
    assert_eq!(bound.len(), 2);
    // All three columns come from comps_list records: one pointer, no slots.
    assert_eq!(bound.static_map().n_ptrs(), 1);
    assert_eq!(bound.static_map().n_slots(), 0);
    assert!(bound
        .static_map()
        .sources()
        .iter()
        .all(|s| matches!(s, ColumnSource::Pointer { .. })));
}

#[test]
fn bound_result_mixes_pointers_and_slots() {
    let env = figure4_env();
    let q =
        parse_query("select comp, weight * 2 as w2 from comps_list where symbol = 'S1'").unwrap();
    let bound = execute_query_bound(&env, &q, &[], "m").unwrap();
    assert_eq!(bound.static_map().n_ptrs(), 1);
    assert_eq!(bound.static_map().n_slots(), 1);
    assert_eq!(bound.value(0, 1).as_f64(), Some(1.0));
}

#[test]
fn bound_result_joins_pin_multiple_records() {
    let env = figure4_env();
    let q = parse_query(
        "select stocks.symbol, price, comp from stocks, comps_list \
         where stocks.symbol = comps_list.symbol and comp = 'C1'",
    )
    .unwrap();
    let bound = execute_query_bound(&env, &q, &[], "m").unwrap();
    assert_eq!(bound.len(), 2);
    // Two pointers per tuple: one into stocks, one into comps_list.
    assert_eq!(bound.static_map().n_ptrs(), 2);
    // The bound table keeps reading condition-time values after updates.
    let before: Vec<f64> = (0..bound.len())
        .map(|i| bound.value(i, 1).as_f64().unwrap())
        .collect();
    env.dml("update stocks set price = 999");
    let after: Vec<f64> = (0..bound.len())
        .map(|i| bound.value(i, 1).as_f64().unwrap())
        .collect();
    assert_eq!(before, after, "snapshot semantics via pinned versions");
}

#[test]
fn grouped_bound_result_is_materialized() {
    let env = figure4_env();
    let q = parse_query("select comp, sum(weight) as w from comps_list group by comp").unwrap();
    let bound = execute_query_bound(&env, &q, &[], "agg").unwrap();
    assert_eq!(bound.static_map().n_ptrs(), 0);
    assert_eq!(bound.len(), 2);
}

#[test]
fn query_against_temp_table() {
    let mut env = figure4_env();
    let schema = Schema::of(&[("x", DataType::Int), ("y", DataType::Float)]).into_ref();
    let mut t = TempTable::materialized("tmp", schema);
    t.push_row(vec![1i64.into(), 10.0.into()]).unwrap();
    t.push_row(vec![2i64.into(), 20.0.into()]).unwrap();
    env.temps.insert("tmp".into(), Arc::new(t));
    let rs = env.run("select sum(y) as s from tmp where x > 1");
    assert_eq!(rs.single("s").unwrap().as_f64(), Some(20.0));
}

#[test]
fn dml_against_temp_table_rejected() {
    let mut env = figure4_env();
    let schema = Schema::of(&[("x", DataType::Int)]).into_ref();
    env.temps
        .insert("b".into(), Arc::new(TempTable::materialized("b", schema)));
    let stmt = parse_statement("update b set x = 1").unwrap();
    let Statement::Update(u) = stmt else { panic!() };
    assert!(execute_update(&env, &u, &[]).is_err());
    let stmt = parse_statement("delete from b").unwrap();
    let Statement::Delete(d) = stmt else { panic!() };
    assert!(execute_delete(&env, &d, &[]).is_err());
}

#[test]
fn positional_parameters() {
    let env = figure4_env();
    let q = parse_query("select price from stocks where symbol = ?").unwrap();
    let rs = execute_query(&env, &q, &[Value::str("S3")]).unwrap();
    assert_eq!(rs.single("price").unwrap().as_f64(), Some(50.0));
    // Missing parameter is an error.
    assert!(execute_query(&env, &q, &[]).is_err());
}

#[test]
fn errors_unknown_names() {
    let env = figure4_env();
    let q = parse_query("select x from nope").unwrap();
    assert!(matches!(
        execute_query(&env, &q, &[]),
        Err(SqlError::Analyze(_))
    ));
    let q = parse_query("select nope from stocks").unwrap();
    assert!(execute_query(&env, &q, &[]).is_err());
    let q = parse_query("select symbol from stocks s, comps_list c").unwrap();
    assert!(execute_query(&env, &q, &[]).is_err(), "ambiguous symbol");
}

#[test]
fn cartesian_join_without_predicate() {
    let env = figure4_env();
    let rs = env.run("select count(*) as n from stocks, comp_prices");
    assert_eq!(rs.single("n").unwrap().as_i64(), Some(6));
}

#[test]
fn duplicate_alias_rejected() {
    let env = figure4_env();
    let q = parse_query("select * from stocks s, comps_list s").unwrap();
    assert!(execute_query(&env, &q, &[]).is_err());
}

#[test]
fn execute_order_style_temp_join() {
    // Mimics the paper's `new.execute_order = old.execute_order` join
    // between two temp tables.
    let mut env = TestEnv::new();
    let schema = Schema::of(&[
        ("symbol", DataType::Str),
        ("price", DataType::Float),
        ("execute_order", DataType::Int),
    ])
    .into_ref();
    let mut new_t = TempTable::materialized("new", schema.clone());
    let mut old_t = TempTable::materialized("old", schema);
    // Two updates to the same symbol: order matters.
    old_t
        .push_row(vec!["S1".into(), 30.0.into(), 1i64.into()])
        .unwrap();
    new_t
        .push_row(vec!["S1".into(), 31.0.into(), 1i64.into()])
        .unwrap();
    old_t
        .push_row(vec!["S1".into(), 31.0.into(), 2i64.into()])
        .unwrap();
    new_t
        .push_row(vec!["S1".into(), 32.0.into(), 2i64.into()])
        .unwrap();
    env.temps.insert("new".into(), Arc::new(new_t));
    env.temps.insert("old".into(), Arc::new(old_t));
    let rs = env.run(
        "select new.price as new_price, old.price as old_price \
         from new, old where new.execute_order = old.execute_order \
         order by new.execute_order",
    );
    assert_eq!(rs.len(), 2);
    assert_eq!(rs.value(0, "old_price").unwrap().as_f64(), Some(30.0));
    assert_eq!(rs.value(0, "new_price").unwrap().as_f64(), Some(31.0));
    assert_eq!(rs.value(1, "old_price").unwrap().as_f64(), Some(31.0));
    assert_eq!(rs.value(1, "new_price").unwrap().as_f64(), Some(32.0));
}

#[test]
fn constant_first_equality_uses_index() {
    // `5 = id` must pick the index just like `id = 5`: the planner tries
    // both orientations of an equality when looking for a probe key.
    let env = figure4_env();
    env.meter.reset();
    let rs = env.run("select comp from comps_list where 'S1' = symbol order by comp");
    assert_eq!(rs.len(), 2);
    assert_eq!(
        env.meter.count(Op::IndexProbe),
        1,
        "expected one index probe"
    );
    assert_eq!(env.meter.count(Op::OpenCursor), 0, "expected no full scan");
}

#[test]
fn range_predicate_uses_rbtree_index() {
    let env = TestEnv::new();
    env.ddl("create table nums (k int)");
    env.ddl("create index ix_nums on nums (k) using rbtree");
    env.dml("insert into nums values (0), (1), (2), (3), (4), (5), (6), (7), (8), (9)");
    env.meter.reset();
    let rs = env.run("select k from nums where k > 2 and k <= 6 order by k");
    let ks: Vec<i64> = (0..rs.len())
        .map(|i| rs.value(i, "k").unwrap().as_i64().unwrap())
        .collect();
    assert_eq!(ks, vec![3, 4, 5, 6]);
    assert_eq!(
        env.meter.count(Op::IndexProbe),
        1,
        "expected one range probe"
    );
    assert_eq!(env.meter.count(Op::OpenCursor), 0, "expected no full scan");
    // The inclusive [2, 6] index range yields 5 candidates; the strict
    // lower bound is re-checked as a filter.
    assert_eq!(env.meter.count(Op::FetchCursor), 5);
}

#[test]
fn explain_shows_access_paths() {
    let env = figure4_env();
    let q = parse_query("select comp from comps_list where symbol = 'S1'").unwrap();
    let plan = strip_sql::plan::plan_query(&env, &q).unwrap();
    let text = plan.explain();
    assert!(text.contains("IndexEqScan"), "plan was:\n{text}");

    let q = parse_query(
        "select comp from stocks, comps_list \
         where stocks.symbol = comps_list.symbol and stocks.symbol = 'S1'",
    )
    .unwrap();
    let plan = strip_sql::plan::plan_query(&env, &q).unwrap();
    let text = plan.explain();
    // stocks has no index, so it scans and probes comps_list's index.
    assert!(text.contains("TableScan"), "plan was:\n{text}");
    assert!(text.contains("IndexJoin"), "plan was:\n{text}");
}
