//! Regression tests for join-output cardinality estimates on unindexed
//! columns (KNOWN_FAILURES: the cost model used to assume one inner match
//! per outer key whenever the join column had no index, and a nested-loop
//! step multiplied by the full inner cardinality even when an equality
//! conjunct filtered the output down to the equi-join).
//!
//! The fix maintains per-column distinct-count statistics: exact index key
//! counts where an index exists, bounded-sample estimates for unindexed
//! standard columns (cached per stats epoch), and exact counts for
//! temporary/bound tables (materialized at plan time). These tests pin the
//! corrected estimates — est equals actual on the exact plan shapes that
//! used to misestimate (`BENCH_obs` recorded est 2 vs actual 10 on
//! `scan(new)>ixjoin(comps_list)>nl(old)`).

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;
use strip_sql::exec::{Env, Rel};
use strip_sql::expr::ScalarFn;
use strip_sql::{execute_query, parse_query, PlannerMode};
use strip_storage::{Catalog, CountingMeter, DataType, Meter, Schema, TempTable, Value};

struct CardEnv {
    catalog: Catalog,
    meter: CountingMeter,
    overlay: HashMap<String, Arc<TempTable>>,
    feedback: RefCell<Vec<(String, u64, u64)>>,
}

impl CardEnv {
    fn new() -> CardEnv {
        CardEnv {
            catalog: Catalog::new(),
            meter: CountingMeter::new(),
            overlay: HashMap::new(),
            feedback: RefCell::new(Vec::new()),
        }
    }
}

impl Env for CardEnv {
    fn meter(&self) -> &dyn Meter {
        &self.meter
    }
    fn relation(&self, name: &str) -> Option<Rel> {
        if let Some(t) = self.overlay.get(name) {
            return Some(Rel::Temp(t.clone()));
        }
        self.catalog.table(name).ok().map(Rel::Standard)
    }
    fn planner_mode(&self) -> PlannerMode {
        PlannerMode::CostBased
    }
    fn plan_feedback(&self, choice: &str, est_rows: u64, actual_rows: u64) {
        self.feedback
            .borrow_mut()
            .push((choice.to_string(), est_rows, actual_rows));
    }
    fn scalar_fn(&self, _name: &str) -> Option<ScalarFn> {
        None
    }
    fn dml_insert(&self, _: &str, _: Vec<Value>) -> strip_sql::Result<()> {
        unreachable!()
    }
    fn dml_update(&self, _: &str, _: strip_storage::RowId, _: Vec<Value>) -> strip_sql::Result<()> {
        unreachable!()
    }
    fn dml_delete(&self, _: &str, _: strip_storage::RowId) -> strip_sql::Result<()> {
        unreachable!()
    }
}

/// Unindexed hash join: the inner side has 10 rows per key and no index on
/// the join column, so the old model's `per_key = 1` fallback estimated one
/// match per outer row (the documented est-250-vs-actual-3050 class of
/// misestimate). The sampled column statistic makes est == actual.
#[test]
fn unindexed_hash_join_estimates_real_fanout() {
    let env = {
        let env = CardEnv::new();
        let schema = Schema::of(&[("k", DataType::Int), ("v", DataType::Int)]).into_ref();
        let a = env.catalog.create_table("a", schema.clone()).unwrap();
        let b = env.catalog.create_table("b", schema).unwrap();
        for k in 0..50i64 {
            a.insert(vec![Value::Int(k), Value::Int(k)]).unwrap();
            for r in 0..10i64 {
                b.insert(vec![Value::Int(k), Value::Int(r)]).unwrap();
            }
        }
        env.meter.reset();
        env
    };
    let q = parse_query("select a.v, b.v as bv from a, b where a.k = b.k").unwrap();
    let rs = execute_query(&env, &q, &[]).unwrap();
    assert_eq!(rs.rows.len(), 500);

    let fb = env.feedback.borrow();
    let (choice, est, actual) = fb.last().expect("join ran through the batch path");
    assert!(choice.contains("hash(b)"), "inner side must hash: {choice}");
    assert_eq!(*actual, 500);
    assert_eq!(
        est, actual,
        "per-column distinct stats must price 10 matches per key ({choice})"
    );
}

/// The Figure-4 condition shape `scan(new)>ixjoin(comps_list)>nl(old)`:
/// `old` pairs 1:1 with `new` on `execute_order`, but the old nested-loop
/// estimate multiplied by |old| anyway (and knew nothing about the temp
/// table's distinct keys). With exact temp-table distincts and the
/// equality-conjunct selectivity applied to the nested-loop output, the
/// estimate matches the actual joined cardinality.
#[test]
fn transition_table_join_shape_estimates_exactly() {
    let env = {
        let mut env = CardEnv::new();
        let cl_schema = Schema::of(&[
            ("comp", DataType::Str),
            ("symbol", DataType::Str),
            ("weight", DataType::Float),
        ])
        .into_ref();
        let cl = env.catalog.create_table("comps_list", cl_schema).unwrap();
        cl.create_index("ix_cl_symbol", "symbol", strip_storage::IndexKind::Hash)
            .unwrap();
        // Every symbol sits in exactly two composites, so the index's
        // rows-per-key statistic (2) is also the true fanout.
        for c in 0..2 {
            for s in ["HOT", "COLD", "WARM"] {
                cl.insert(vec![
                    Value::Str(Arc::from(format!("C{c}"))),
                    Value::Str(Arc::from(s)),
                    Value::Float(0.5),
                ])
                .unwrap();
            }
        }

        // A batched firing: two updates in one commit → |new| = |old| = 2,
        // paired 1:1 by execute_order.
        let tt_schema = Schema::of(&[
            ("symbol", DataType::Str),
            ("price", DataType::Float),
            ("execute_order", DataType::Int),
        ])
        .into_ref();
        let mut mk = |name: &str, rows: &[(&str, f64, i64)]| {
            let mut t = TempTable::materialized(name, tt_schema.clone());
            for (s, p, eo) in rows {
                t.push_row(vec![
                    Value::Str(Arc::from(*s)),
                    Value::Float(*p),
                    Value::Int(*eo),
                ])
                .unwrap();
            }
            env.overlay.insert(name.to_string(), Arc::new(t));
        };
        mk("new", &[("HOT", 101.0, 1), ("COLD", 55.0, 2)]);
        mk("old", &[("HOT", 100.0, 1), ("COLD", 56.0, 2)]);
        env.meter.reset();
        env
    };
    let q = parse_query(
        "select comp, comps_list.symbol as symbol, weight, \
                old.price as old_price, new.price as new_price \
         from comps_list, new, old \
         where comps_list.symbol = new.symbol \
           and new.execute_order = old.execute_order",
    )
    .unwrap();
    let rs = execute_query(&env, &q, &[]).unwrap();
    // 2 new rows × 2 composites each, paired 1:1 with old.
    assert_eq!(rs.rows.len(), 4);

    let fb = env.feedback.borrow();
    let (choice, est, actual) = fb.last().expect("join ran through the batch path");
    assert_eq!(
        choice, "scan(new)>ixjoin(comps_list)>nl(old)",
        "the BENCH_obs plan shape under test"
    );
    assert_eq!(*actual, 4);
    assert_eq!(
        est, actual,
        "nl(old) must apply execute_order selectivity, not multiply by |old|"
    );
}
