//! Property-based tests for the SQL layer: expression round-trips through a
//! pretty-printer, evaluation laws, and aggregation against an in-Rust
//! reference model.

use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;
use strip_sql::ast::{BinOp, Expr, Query, SelectItem};
use strip_sql::exec::{execute_query, Env, Rel};
use strip_sql::expr::ScalarFn;
use strip_sql::parser::parse_query;
use strip_storage::{Catalog, CountingMeter, DataType, Meter, Schema, Value};

// ---------------------------------------------------------------------------
// Expression round-trip: print a random expression as SQL, parse it back,
// and require structural equality.
// ---------------------------------------------------------------------------

fn print_expr(e: &Expr) -> String {
    match e {
        Expr::NullLit => "null".to_string(),
        Expr::IsNull { expr, negated } => format!(
            "({} is {}null)",
            print_expr(expr),
            if *negated { "not " } else { "" }
        ),
        Expr::IntLit(i) => format!("{i}"),
        Expr::FloatLit(f) => format!("{f:?}"), // keeps the decimal point
        Expr::StrLit(s) => format!("'{}'", s.replace('\'', "''")),
        Expr::BoolLit(b) => format!("{b}"),
        Expr::Column { qualifier, name } => match qualifier {
            Some(q) => format!("{q}.{name}"),
            None => name.clone(),
        },
        Expr::Param(_) => "?".to_string(),
        Expr::Neg(i) => format!("(- {})", print_expr(i)),
        Expr::Not(i) => format!("(not {})", print_expr(i)),
        Expr::Binary { op, left, right } => {
            format!(
                "({} {} {})",
                print_expr(left),
                op.symbol(),
                print_expr(right)
            )
        }
        Expr::Aggregate { func, arg } => match arg {
            Some(a) => format!("{}({})", func.name(), print_expr(a)),
            None => "count(*)".to_string(),
        },
        Expr::Call { name, args } => {
            let args: Vec<String> = args.iter().map(print_expr).collect();
            format!("{name}({})", args.join(", "))
        }
    }
}

fn ident_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,6}".prop_filter("not a keyword", |s| {
        ![
            "select", "from", "where", "group", "by", "order", "limit", "and", "or", "not", "true",
            "false", "as", "bind", "sum", "count", "avg", "min", "max", "groupby", "desc", "asc",
        ]
        .contains(&s.as_str())
    })
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        // Literals are non-negative: the lexer never produces negative
        // literals (unary minus parses as `Neg`), so negativity is expressed
        // via Neg nodes in the recursive layer.
        (0i64..1000).prop_map(Expr::IntLit),
        (0.0..100.0f64).prop_map(Expr::FloatLit),
        "[a-zA-Z ]{0,8}".prop_map(Expr::StrLit),
        any::<bool>().prop_map(Expr::BoolLit),
        ident_strategy().prop_map(|name| Expr::Column {
            qualifier: None,
            name
        }),
        (ident_strategy(), ident_strategy()).prop_map(|(q, name)| Expr::Column {
            qualifier: Some(q),
            name
        }),
    ];
    leaf.prop_recursive(4, 32, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), any::<u8>()).prop_map(|(l, r, op)| {
                let ops = [
                    BinOp::Add,
                    BinOp::Sub,
                    BinOp::Mul,
                    BinOp::Div,
                    BinOp::Eq,
                    BinOp::NotEq,
                    BinOp::Lt,
                    BinOp::LtEq,
                    BinOp::Gt,
                    BinOp::GtEq,
                    BinOp::And,
                    BinOp::Or,
                ];
                Expr::Binary {
                    op: ops[(op as usize) % ops.len()],
                    left: Box::new(l),
                    right: Box::new(r),
                }
            }),
            inner.clone().prop_map(|e| Expr::Neg(Box::new(e))),
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner, any::<bool>()).prop_map(|(e, negated)| Expr::IsNull {
                expr: Box::new(e),
                negated,
            }),
        ]
    })
}

proptest! {
    #[test]
    fn expression_roundtrips_through_printer(e in expr_strategy()) {
        let sql = format!("select {} from t", print_expr(&e));
        let q = parse_query(&sql).map_err(|err| {
            TestCaseError::fail(format!("failed to parse `{sql}`: {err}"))
        })?;
        let SelectItem::Expr { expr, .. } = &q.items[0] else {
            return Err(TestCaseError::fail("no expr item"));
        };
        prop_assert_eq!(expr, &e, "sql: {}", sql);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(s in "[ -~]{0,60}") {
        // Errors are fine; panics are not.
        let _ = strip_sql::parse_statement(&s);
    }
}

// ---------------------------------------------------------------------------
// Aggregation vs a reference model.
// ---------------------------------------------------------------------------

struct MiniEnv {
    catalog: Catalog,
    meter: CountingMeter,
}

impl Env for MiniEnv {
    fn meter(&self) -> &dyn Meter {
        &self.meter
    }
    fn relation(&self, name: &str) -> Option<Rel> {
        self.catalog.table(name).ok().map(Rel::Standard)
    }
    fn scalar_fn(&self, _name: &str) -> Option<ScalarFn> {
        None
    }
    fn dml_insert(&self, _: &str, _: Vec<Value>) -> strip_sql::Result<()> {
        unreachable!()
    }
    fn dml_update(&self, _: &str, _: strip_storage::RowId, _: Vec<Value>) -> strip_sql::Result<()> {
        unreachable!()
    }
    fn dml_delete(&self, _: &str, _: strip_storage::RowId) -> strip_sql::Result<()> {
        unreachable!()
    }
}

fn grouped_query() -> Query {
    parse_query(
        "select g, count(*) as n, sum(x) as s, min(x) as lo, max(x) as hi \
         from t group by g",
    )
    .unwrap()
}

proptest! {
    #[test]
    fn group_by_matches_reference(rows in proptest::collection::vec((0..5i64, -50.0..50.0f64), 0..80)) {
        let env = MiniEnv {
            catalog: Catalog::new(),
            meter: CountingMeter::new(),
        };
        let schema = Schema::of(&[("g", DataType::Int), ("x", DataType::Float)]).into_ref();
        let t = env.catalog.create_table("t", schema).unwrap();
        for (g, x) in &rows {
            t.insert(vec![(*g).into(), (*x).into()]).unwrap();
        }
        let rs = execute_query(&env, &grouped_query(), &[]).unwrap();

        // Reference.
        let mut model: HashMap<i64, (i64, f64, f64, f64)> = HashMap::new();
        for (g, x) in &rows {
            let e = model
                .entry(*g)
                .or_insert((0, 0.0, f64::INFINITY, f64::NEG_INFINITY));
            e.0 += 1;
            e.1 += x;
            e.2 = e.2.min(*x);
            e.3 = e.3.max(*x);
        }
        prop_assert_eq!(rs.len(), model.len());
        for i in 0..rs.len() {
            let g = rs.value(i, "g").unwrap().as_i64().unwrap();
            let (n, s, lo, hi) = model[&g];
            prop_assert_eq!(rs.value(i, "n").unwrap().as_i64(), Some(n));
            let got_s = rs.value(i, "s").unwrap().as_f64().unwrap();
            prop_assert!((got_s - s).abs() < 1e-7, "sum {} vs {}", got_s, s);
            prop_assert_eq!(rs.value(i, "lo").unwrap().as_f64(), Some(lo));
            prop_assert_eq!(rs.value(i, "hi").unwrap().as_f64(), Some(hi));
        }
    }

    #[test]
    fn join_matches_nested_loop_reference(
        left in proptest::collection::vec(0..8i64, 0..30),
        right in proptest::collection::vec(0..8i64, 0..30),
    ) {
        let env = MiniEnv {
            catalog: Catalog::new(),
            meter: CountingMeter::new(),
        };
        let schema = Schema::of(&[("k", DataType::Int)]).into_ref();
        let a = env.catalog.create_table("a", schema.clone()).unwrap();
        let b = env.catalog.create_table("b", schema).unwrap();
        for k in &left {
            a.insert(vec![(*k).into()]).unwrap();
        }
        // Give one side an index so the probe path is exercised.
        b.create_index("ix", "k", strip_storage::IndexKind::Hash).unwrap();
        for k in &right {
            b.insert(vec![(*k).into()]).unwrap();
        }
        let q = parse_query("select count(*) as n from a, b where a.k = b.k").unwrap();
        let rs = execute_query(&env, &q, &[]).unwrap();
        let want: i64 = left
            .iter()
            .map(|x| right.iter().filter(|y| *y == x).count() as i64)
            .sum();
        prop_assert_eq!(rs.single("n").unwrap().as_i64(), Some(want));
    }
}

// Silence dead-code warning for Arc import used only in some configurations.
#[allow(dead_code)]
fn _unused(_: Arc<()>) {}

// ---------------------------------------------------------------------------
// Batch-executor parity: the vectorized operators (hash join, batched
// aggregate/filter/project/sort) must return exactly the rows of the
// row-at-a-time reference interpreter — under both planner modes — and
// charge exactly the same meter counts.
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn batch_executor_matches_rowwise_reference(
        left in proptest::collection::vec((0..6i64, 0..100i64), 0..40),
        right in proptest::collection::vec((0..6i64, -20..20i64), 0..40),
        threshold in -20..20i64,
    ) {
        use strip_sql::exec::{execute_select, execute_select_rowwise};
        use strip_sql::{plan_query_with, PlannerMode};

        let env = MiniEnv {
            catalog: Catalog::new(),
            meter: CountingMeter::new(),
        };
        let schema = Schema::of(&[("k", DataType::Int), ("v", DataType::Int)]).into_ref();
        let a = env.catalog.create_table("a", schema.clone()).unwrap();
        // `b` is unindexed, so the cost-based planner can pick a hash join
        // while the syntactic planner nested-loops — parity must hold for
        // every operator either mode can choose.
        let b = env.catalog.create_table("b", schema).unwrap();
        for (k, v) in &left {
            a.insert(vec![(*k).into(), (*v).into()]).unwrap();
        }
        for (k, v) in &right {
            b.insert(vec![(*k).into(), (*v).into()]).unwrap();
        }

        let queries = [
            // Equi-join with residual filter and computed projection.
            "select a.k, a.v + b.v as t from a, b where a.k = b.k and b.v >= ?",
            // Batched aggregate over a join, with HAVING and ORDER BY.
            "select a.k, count(*) as n, sum(b.v) as s from a, b \
             where a.k = b.k group by a.k order by a.k",
            // Sort + limit over a plain scan.
            "select k, v from a order by v desc, k limit 10",
        ];
        let params = [Value::Int(threshold)];
        for sql in queries {
            let q = parse_query(sql).unwrap();
            let mut per_mode: Vec<Vec<Vec<Value>>> = Vec::new();
            for mode in [PlannerMode::Syntactic, PlannerMode::CostBased] {
                let sp = plan_query_with(&env, &q, mode).unwrap();
                let before = env.meter.snapshot();
                let batch = execute_select(&env, &sp, &params).unwrap();
                let mid = env.meter.snapshot();
                let rowwise = execute_select_rowwise(&env, &sp, &params).unwrap();
                let after = env.meter.snapshot();
                prop_assert_eq!(
                    &batch.rows, &rowwise.rows,
                    "batch vs row-wise rows: {} [{:?}]", sql, mode
                );
                // Charge-for-charge parity: the batch pass bills exactly
                // what the reference bills for the same plan.
                let batch_charges: Vec<(strip_storage::Op, u64)> = mid
                    .iter()
                    .map(|(op, n)| (*op, n - before.get(op).copied().unwrap_or(0)))
                    .collect();
                let row_charges: Vec<(strip_storage::Op, u64)> = after
                    .iter()
                    .map(|(op, n)| (*op, n - mid.get(op).copied().unwrap_or(0)))
                    .collect();
                prop_assert_eq!(
                    batch_charges, row_charges,
                    "batch vs row-wise charges: {} [{:?}]", sql, mode
                );
                per_mode.push(batch.rows);
            }
            // Planner modes agree on results (join order is shared; only
            // the operators differ).
            prop_assert_eq!(&per_mode[0], &per_mode[1], "modes diverge: {}", sql);
        }
    }
}

// ---------------------------------------------------------------------------
// Plan-cache parity: a plan fetched from the cache and executed repeatedly
// must return exactly what a freshly planned execution returns.
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn cached_plan_matches_fresh_plan(
        rows in proptest::collection::vec((0..5i64, -50.0..50.0f64), 0..60),
        threshold in -50.0..50.0f64,
    ) {
        use strip_sql::plan::{plan_query, PhysicalPlan};
        use strip_sql::{execute_select, PlanCache};

        let env = MiniEnv {
            catalog: Catalog::new(),
            meter: CountingMeter::new(),
        };
        let schema = Schema::of(&[("g", DataType::Int), ("x", DataType::Float)]).into_ref();
        let t = env.catalog.create_table("t", schema).unwrap();
        for (g, x) in &rows {
            t.insert(vec![(*g).into(), (*x).into()]).unwrap();
        }

        let cache = PlanCache::new();
        let queries = [
            "select g, x from t where x >= ? order by g, x",
            "select g, count(*) as n, sum(x) as s from t group by g order by g",
            "select count(*) as n from t where g = 2 and x < ?",
        ];
        let params = [Value::Float(threshold)];
        for sql in queries {
            let q = parse_query(sql).unwrap();
            let fresh = execute_query(&env, &q, &params).unwrap();
            for _ in 0..2 {
                let plan = cache
                    .get_or_plan(sql, 0, || plan_query(&env, &q).map(PhysicalPlan::Select))
                    .unwrap();
                let PhysicalPlan::Select(sp) = plan.as_ref() else { unreachable!() };
                let cached = execute_select(&env, sp, &params).unwrap();
                prop_assert_eq!(&cached.rows, &fresh.rows, "query: {}", sql);
            }
        }
        // Each query planned exactly once: second executions were hits.
        prop_assert_eq!(cache.misses(), queries.len() as u64);
        prop_assert_eq!(cache.hits(), queries.len() as u64);
    }
}
