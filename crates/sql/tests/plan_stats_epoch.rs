//! Regression test: the plan cache must not serve a plan whose cost-based
//! operator choice has been invalidated by table growth.
//!
//! The cache compares an epoch tag by equality. Keying on the schema epoch
//! alone is not enough once operator selection depends on cardinality
//! statistics: a join planned over two 1-row tables nested-loops, but after
//! both sides grow the cost model wants a hash join — with no schema change
//! in between. The environment therefore keys plans on a *plan epoch* that
//! folds the catalog's statistics epoch (bumped on power-of-two size-class
//! crossings) into the schema epoch, so a stats change big enough to flip a
//! plan choice also flips the cache key.

use strip_sql::exec::{Env, Rel};
use strip_sql::expr::ScalarFn;
use strip_sql::plan::{plan_query_with, PhysicalPlan};
use strip_sql::{parse_query, PlanCache, PlannerMode};
use strip_storage::{Catalog, CountingMeter, DataType, Meter, Schema, Value};

struct StatsEnv {
    catalog: Catalog,
    meter: CountingMeter,
}

impl Env for StatsEnv {
    fn meter(&self) -> &dyn Meter {
        &self.meter
    }
    fn relation(&self, name: &str) -> Option<Rel> {
        self.catalog.table(name).ok().map(Rel::Standard)
    }
    fn plan_epoch(&self) -> u64 {
        // Schema epoch folded with the stats epoch, as strip-core does.
        self.catalog.epoch().wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ self.catalog.stats_epoch()
    }
    fn scalar_fn(&self, _name: &str) -> Option<ScalarFn> {
        None
    }
    fn dml_insert(&self, _: &str, _: Vec<Value>) -> strip_sql::Result<()> {
        unreachable!()
    }
    fn dml_update(&self, _: &str, _: strip_storage::RowId, _: Vec<Value>) -> strip_sql::Result<()> {
        unreachable!()
    }
    fn dml_delete(&self, _: &str, _: strip_storage::RowId) -> strip_sql::Result<()> {
        unreachable!()
    }
}

fn setup() -> StatsEnv {
    let env = StatsEnv {
        catalog: Catalog::new(),
        meter: CountingMeter::new(),
    };
    let schema = Schema::of(&[("k", DataType::Int), ("v", DataType::Int)]).into_ref();
    let a = env.catalog.create_table("a", schema.clone()).unwrap();
    let b = env.catalog.create_table("b", schema).unwrap();
    a.insert(vec![Value::Int(0), Value::Int(0)]).unwrap();
    b.insert(vec![Value::Int(0), Value::Int(0)]).unwrap();
    env
}

fn grow(env: &StatsEnv, rows: i64) {
    let a = env.catalog.table("a").unwrap();
    let b = env.catalog.table("b").unwrap();
    for i in 1..rows {
        a.insert(vec![Value::Int(i % 6), Value::Int(i)]).unwrap();
        b.insert(vec![Value::Int(i % 6), Value::Int(-i)]).unwrap();
    }
}

const SQL: &str = "select count(*) as n from a, b where a.k = b.k";

fn cached_plan(env: &StatsEnv, cache: &PlanCache, epoch: u64) -> String {
    let q = parse_query(SQL).unwrap();
    let plan = cache
        .get_or_plan(SQL, epoch, || {
            plan_query_with(env, &q, PlannerMode::CostBased).map(PhysicalPlan::Select)
        })
        .unwrap();
    let PhysicalPlan::Select(sp) = plan.as_ref() else {
        unreachable!()
    };
    sp.explain()
}

#[test]
fn stats_epoch_change_invalidates_flipped_plan() {
    let env = setup();
    let cache = PlanCache::new();

    // 1-row tables: the cost model nested-loops (a hash build cannot pay
    // for itself), and the plan is cached under the current plan epoch.
    let before = cached_plan(&env, &cache, env.plan_epoch());
    assert!(
        before.contains("NestedLoop"),
        "tiny join must nested-loop:\n{before}"
    );
    assert_eq!(cache.misses(), 1);

    // Growing both sides to 32 rows crosses size classes, so the plan
    // epoch moves...
    let epoch_small = env.plan_epoch();
    grow(&env, 32);
    assert_ne!(
        env.plan_epoch(),
        epoch_small,
        "size-class growth must move the plan epoch"
    );

    // Negative control — the failure mode this test pins down: presenting
    // the *old* epoch tag (exactly what schema-only keying would do, since
    // no DDL ran) serves the stale nested-loop plan from the cache.
    let stale = cached_plan(&env, &cache, epoch_small);
    assert_eq!(cache.hits(), 1, "old epoch tag must hit the stale entry");
    assert!(
        stale.contains("NestedLoop"),
        "schema-only keying would serve the stale plan:\n{stale}"
    );

    // With the folded epoch the same cache key replans: the unindexed
    // equi-join flips to a hash join at this cardinality.
    let after = cached_plan(&env, &cache, env.plan_epoch());
    assert!(
        after.contains("HashJoin"),
        "grown join must flip to hash:\n{after}"
    );
    assert_eq!(cache.misses(), 2, "stats-epoch change must force a replan");
}
