//! Tests for the extended SQL surface: DISTINCT, HAVING, IN, BETWEEN,
//! IS [NOT] NULL, and NULL literals.

use std::collections::HashMap;
use std::sync::Arc;
use strip_sql::exec::{execute_query, Env, Rel};
use strip_sql::expr::ScalarFn;
use strip_sql::parser::parse_query;
use strip_storage::{Catalog, CountingMeter, DataType, Meter, Schema, TempTable, Value};

struct TestEnv {
    catalog: Catalog,
    temps: HashMap<String, Arc<TempTable>>,
    meter: CountingMeter,
}

impl Env for TestEnv {
    fn meter(&self) -> &dyn Meter {
        &self.meter
    }
    fn relation(&self, name: &str) -> Option<Rel> {
        let key = name.to_ascii_lowercase();
        if let Some(t) = self.temps.get(&key) {
            return Some(Rel::Temp(t.clone()));
        }
        self.catalog.table(&key).ok().map(Rel::Standard)
    }
    fn scalar_fn(&self, _name: &str) -> Option<ScalarFn> {
        None
    }
    fn dml_insert(&self, _: &str, _: Vec<Value>) -> strip_sql::Result<()> {
        unreachable!()
    }
    fn dml_update(&self, _: &str, _: strip_storage::RowId, _: Vec<Value>) -> strip_sql::Result<()> {
        unreachable!()
    }
    fn dml_delete(&self, _: &str, _: strip_storage::RowId) -> strip_sql::Result<()> {
        unreachable!()
    }
}

/// orders(customer str, amount float) with a few rows.
fn env() -> TestEnv {
    let e = TestEnv {
        catalog: Catalog::new(),
        temps: HashMap::new(),
        meter: CountingMeter::new(),
    };
    let schema = Schema::of(&[("customer", DataType::Str), ("amount", DataType::Float)]);
    let t = e.catalog.create_table("orders", schema.into_ref()).unwrap();
    for (c, a) in [
        ("alice", 10.0),
        ("bob", 5.0),
        ("alice", 30.0),
        ("carol", 7.0),
        ("bob", 5.0),
    ] {
        t.insert(vec![c.into(), a.into()]).unwrap();
    }
    e
}

fn run(env: &TestEnv, sql: &str) -> strip_sql::ResultSet {
    execute_query(env, &parse_query(sql).unwrap(), &[]).unwrap()
}

#[test]
fn distinct_removes_duplicates() {
    let e = env();
    let rs = run(&e, "select customer from orders order by customer");
    assert_eq!(rs.len(), 5);
    let rs = run(&e, "select distinct customer from orders order by customer");
    assert_eq!(rs.len(), 3);
    // Multi-column distinct: (bob, 5.0) appears twice, collapses to once.
    let rs = run(&e, "select distinct customer, amount from orders");
    assert_eq!(rs.len(), 4);
}

#[test]
fn having_filters_groups() {
    let e = env();
    let rs = run(
        &e,
        "select customer, sum(amount) as total from orders \
         group by customer having sum(amount) > 9 order by customer",
    );
    assert_eq!(rs.len(), 2);
    assert_eq!(rs.value(0, "customer").unwrap().as_str(), Some("alice"));
    assert_eq!(rs.value(0, "total").unwrap().as_f64(), Some(40.0));
    assert_eq!(rs.value(1, "customer").unwrap().as_str(), Some("bob"));
}

#[test]
fn having_may_reference_aggregates_not_in_select() {
    let e = env();
    let rs = run(
        &e,
        "select customer from orders group by customer \
         having count(*) = 2 order by customer",
    );
    assert_eq!(rs.len(), 2); // alice (2 orders) and bob (2 orders)
}

#[test]
fn in_list_and_not_in() {
    let e = env();
    let rs = run(
        &e,
        "select distinct customer from orders \
         where customer in ('alice', 'carol') order by customer",
    );
    assert_eq!(rs.len(), 2);
    let rs = run(
        &e,
        "select distinct customer from orders \
         where customer not in ('alice', 'carol')",
    );
    assert_eq!(rs.len(), 1);
    assert_eq!(rs.value(0, "customer").unwrap().as_str(), Some("bob"));
}

#[test]
fn between_and_not_between() {
    let e = env();
    let rs = run(
        &e,
        "select amount from orders where amount between 5 and 10 order by amount",
    );
    assert_eq!(rs.len(), 4); // 5, 5, 7, 10
    let rs = run(
        &e,
        "select amount from orders where amount not between 5 and 10",
    );
    assert_eq!(rs.len(), 1); // 30
                             // BETWEEN's AND must not swallow a following logical AND.
    let rs = run(
        &e,
        "select amount from orders \
         where amount between 5 and 10 and customer = 'bob'",
    );
    assert_eq!(rs.len(), 2);
}

#[test]
fn is_null_on_aggregate_results() {
    let e = env();
    // SUM over an empty input is NULL; IS NULL sees it.
    let rs = run(
        &e,
        "select sum(amount) as s from orders where customer = 'nobody'",
    );
    assert!(rs.single("s").unwrap().is_null());
    let rs = run(
        &e,
        "select count(*) as n from orders where customer = 'nobody' having sum(amount) is null",
    );
    assert_eq!(rs.len(), 1);
    assert_eq!(rs.single("n").unwrap().as_i64(), Some(0));
    let rs = run(
        &e,
        "select count(*) as n from orders having sum(amount) is not null",
    );
    assert_eq!(rs.len(), 1);
}

#[test]
fn null_literal_comparisons() {
    let e = env();
    // NULL = NULL is true under our total ordering (documented deviation
    // from three-valued logic; STRIP v2.0 had no NULLs at all).
    let rs = run(&e, "select count(*) as n from orders where null is null");
    assert_eq!(rs.single("n").unwrap().as_i64(), Some(5));
    let rs = run(&e, "select count(*) as n from orders where amount is null");
    assert_eq!(rs.single("n").unwrap().as_i64(), Some(0));
    let rs = run(
        &e,
        "select count(*) as n from orders where amount is not null",
    );
    assert_eq!(rs.single("n").unwrap().as_i64(), Some(5));
}

#[test]
fn distinct_with_order_and_limit() {
    let e = env();
    let rs = run(
        &e,
        "select distinct customer from orders order by customer desc limit 2",
    );
    assert_eq!(rs.len(), 2);
    assert_eq!(rs.value(0, "customer").unwrap().as_str(), Some("carol"));
    assert_eq!(rs.value(1, "customer").unwrap().as_str(), Some("bob"));
}

#[test]
fn stddev_and_var_aggregates() {
    let e = env();
    // amounts: 10, 5, 30, 7, 5 — mean 11.4, population var 89.84.
    let rs = run(
        &e,
        "select var(amount) as v, stddev(amount) as sd from orders",
    );
    let v = rs.single("v").unwrap().as_f64().unwrap();
    let sd = rs.single("sd").unwrap().as_f64().unwrap();
    assert!((v - 89.84).abs() < 1e-9, "var = {v}");
    assert!((sd - 89.84f64.sqrt()).abs() < 1e-9, "stddev = {sd}");
    // Per-group and over empty input.
    let rs = run(
        &e,
        "select customer, stddev(amount) as sd from orders group by customer order by customer",
    );
    assert_eq!(rs.len(), 3);
    assert_eq!(
        rs.value(1, "sd").unwrap().as_f64(),
        Some(0.0),
        "bob: 5 and 5"
    );
    let rs = run(
        &e,
        "select var(amount) as v from orders where amount > 1000",
    );
    assert!(rs.single("v").unwrap().is_null());
}
