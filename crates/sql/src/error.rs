//! Error type for the SQL layer.

use std::fmt;
use strip_storage::StorageError;

/// Errors from lexing, parsing, analysis, or execution.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Lexical error.
    Lex(String),
    /// Syntax error.
    Parse(String),
    /// Name-resolution / semantic error.
    Analyze(String),
    /// Runtime execution error.
    Exec(String),
    /// Error propagated from storage.
    Storage(StorageError),
    /// A cached physical plan no longer matches the live schema; the caller
    /// should replan and retry.
    Stale(String),
}

impl SqlError {
    pub(crate) fn lex(msg: String) -> SqlError {
        SqlError::Lex(msg)
    }

    /// Construct a parse error.
    pub fn parse(msg: impl Into<String>) -> SqlError {
        SqlError::Parse(msg.into())
    }

    /// Construct an analysis error.
    pub fn analyze(msg: impl Into<String>) -> SqlError {
        SqlError::Analyze(msg.into())
    }

    /// Construct an execution error.
    pub fn exec(msg: impl Into<String>) -> SqlError {
        SqlError::Exec(msg.into())
    }

    /// Construct a stale-plan error.
    pub fn stale(msg: impl Into<String>) -> SqlError {
        SqlError::Stale(msg.into())
    }

    /// True if this error means "replan and retry" rather than a genuine
    /// statement failure.
    pub fn is_stale(&self) -> bool {
        matches!(self, SqlError::Stale(_))
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex(m) => write!(f, "lexical error: {m}"),
            SqlError::Parse(m) => write!(f, "syntax error: {m}"),
            SqlError::Analyze(m) => write!(f, "semantic error: {m}"),
            SqlError::Exec(m) => write!(f, "execution error: {m}"),
            SqlError::Storage(e) => write!(f, "storage error: {e}"),
            SqlError::Stale(m) => write!(f, "stale plan: {m}"),
        }
    }
}

impl std::error::Error for SqlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SqlError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for SqlError {
    fn from(e: StorageError) -> Self {
        SqlError::Storage(e)
    }
}

/// Result alias for the SQL layer.
pub type Result<T> = std::result::Result<T, SqlError>;
