//! The vectorized batch executor.
//!
//! [`RowBatch`] is the columnar unit of execution: the joined row layout
//! stored column-major (`cols[flat_offset][row]`) plus per-join-position
//! provenance. The operators here — seed access, index/hash/nested-loop
//! join steps, filter, project, aggregate, sort — each make **one**
//! invocation per plan execution and sweep the whole batch, so a rule
//! firing evaluates its condition/action queries in a single vectorized
//! pass over the entire transition table instead of interpreting row at a
//! time.
//!
//! Semantics and meter charges are defined by the row-at-a-time reference
//! interpreter ([`crate::exec::execute_select_rowwise`]): every operator
//! charges exactly the ops the reference charges for the same input, and
//! the cached-vs-fresh proptests equivalence-check each physical plan
//! against it. Expressions evaluate through
//! [`Program::eval_with`](crate::expr::Program::eval_with) with a column
//! accessor, so no per-row gather into a contiguous slice happens.

use crate::error::{Result, SqlError};
use crate::exec::{probe_item, range_item, scan_item, AggState, Env, Rel, ResolvedItem};
use crate::expr::Program;
use crate::plan::{self, Access, AggSpec, GroupedOut, JoinStep, OutCol, SelectPlan};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use strip_storage::{Op, RecordRef, Value};

/// Lifetime count of join-pipeline invocations (plan executions through the
/// batch path). Rule-engine tests pin that one firing over an N-row
/// transition table makes one invocation per query, not one per row.
static INVOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Total batch join-pipeline invocations so far (process-wide).
pub fn invocations() -> u64 {
    INVOCATIONS.load(Ordering::Relaxed)
}

/// A columnar batch of joined rows.
pub struct RowBatch {
    /// Column-major values over the join-order layout:
    /// `cols[flat_offset][row]`.
    pub cols: Vec<Vec<Value>>,
    /// Provenance per join position: `provs[pos][row]`.
    pub provs: Vec<Vec<Option<RecordRef>>>,
    rows: usize,
}

impl RowBatch {
    fn with_shape(width: usize, items: usize) -> RowBatch {
        RowBatch {
            cols: vec![Vec::new(); width],
            provs: vec![Vec::new(); items],
            rows: 0,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True if no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Keep only rows whose mask entry is true (stable).
    fn retain(&mut self, keep: &[bool]) {
        for col in &mut self.cols {
            let mut i = 0;
            col.retain(|_| {
                let k = keep[i];
                i += 1;
                k
            });
        }
        for prov in &mut self.provs {
            let mut i = 0;
            prov.retain(|_| {
                let k = keep[i];
                i += 1;
                k
            });
        }
        self.rows = keep.iter().filter(|k| **k).count();
    }

    /// Reorder rows by a permutation (`perm[i]` = source row of output `i`).
    fn permute(&mut self, perm: &[usize]) {
        for col in &mut self.cols {
            let moved: Vec<Value> = perm.iter().map(|&i| col[i].clone()).collect();
            *col = moved;
        }
        for prov in &mut self.provs {
            let moved: Vec<Option<RecordRef>> = perm.iter().map(|&i| prov[i].clone()).collect();
            *prov = moved;
        }
    }

    /// Append seed rows (join position 0); later positions get no
    /// provenance yet.
    fn extend_seed(&mut self, rows: Vec<(Vec<Value>, Option<RecordRef>)>) {
        for (vals, prov) in rows {
            for (c, v) in vals.into_iter().enumerate() {
                self.cols[c].push(v);
            }
            self.provs[0].push(prov);
            for p in self.provs[1..].iter_mut() {
                p.push(None);
            }
            self.rows += 1;
        }
    }

    /// Append one joined row: the prefix copied from `self`'s row `r`
    /// cannot work in place, so join steps build into a fresh batch.
    fn push_joined(
        &mut self,
        outer: &RowBatch,
        r: usize,
        prefix: usize,
        inner_vals: &[Value],
        pos: usize,
        prov: &Option<RecordRef>,
    ) {
        for c in 0..prefix {
            self.cols[c].push(outer.cols[c][r].clone());
        }
        for (c, v) in inner_vals.iter().enumerate() {
            self.cols[prefix + c].push(v.clone());
        }
        for (p, prov_col) in self.provs.iter_mut().enumerate() {
            if p == pos {
                prov_col.push(prov.clone());
            } else {
                prov_col.push(outer.provs[p].get(r).cloned().unwrap_or(None));
            }
        }
        self.rows += 1;
    }
}

/// Apply residual filters assigned to one join position, in original
/// conjunct order: one vectorized sweep per filter, charging `EvalExpr`
/// per row the filter sees (survivors only reach the next filter).
fn filter_batch(
    env: &dyn Env,
    filters: &[Program],
    batch: &mut RowBatch,
    params: &[Value],
) -> Result<()> {
    let m = env.meter();
    for f in filters {
        let mut keep = Vec::with_capacity(batch.rows);
        for r in 0..batch.rows {
            m.charge(Op::EvalExpr, 1);
            keep.push(f.eval_bool_with(&|i| batch.cols[i][r].clone(), params)?);
        }
        if keep.iter().any(|k| !k) {
            batch.retain(&keep);
        }
    }
    Ok(())
}

/// Run the access-path + join + filter section of a plan over columnar
/// batches, and report plan-quality feedback (estimated vs actual joined
/// cardinality) to the environment.
pub(crate) fn run_join_batch(
    env: &dyn Env,
    plan: &SelectPlan,
    items: &[ResolvedItem],
    params: &[Value],
) -> Result<RowBatch> {
    let n = items.len();
    let m = env.meter();

    let seed_rows = match &plan.seed {
        Access::Scan => scan_item(env, &items[0]),
        Access::IndexEq { column, key } => {
            let key = key.eval(&[], params)?;
            probe_item(env, &items[0], *column, &key)?
                .ok_or_else(|| SqlError::stale("index used by plan no longer exists"))?
        }
        Access::IndexRange { column, lo, hi } => {
            let lo = lo.eval(&[], params)?;
            let hi = hi.eval(&[], params)?;
            range_item(env, &items[0], *column, &lo, &hi)
                .ok_or_else(|| SqlError::stale("ordered index used by plan no longer exists"))?
        }
    };
    let mut batch = RowBatch::with_shape(plan.prefix_len[1], n);
    batch.extend_seed(seed_rows);
    filter_batch(env, &plan.filters[0], &mut batch, params)?;

    for (k, step) in plan.steps.iter().enumerate() {
        let k = k + 1;
        let item = &items[k];
        let prefix = plan.prefix_len[k];
        let mut next = RowBatch::with_shape(plan.prefix_len[k + 1], n);
        match step {
            JoinStep::IndexProbe { column, key } => {
                for r in 0..batch.rows {
                    m.charge(Op::EvalExpr, 1);
                    let key = key.eval_with(&|i| batch.cols[i][r].clone(), params)?;
                    if let Some(matches) = probe_item(env, item, *column, &key)? {
                        for (vals, prov) in &matches {
                            next.push_joined(&batch, r, prefix, vals, k, prov);
                        }
                    }
                }
            }
            JoinStep::HashJoin { column, key } => {
                // Build: materialize and hash the inner once.
                let inner = scan_item(env, item);
                m.charge(Op::UniqueHashOp, inner.len() as u64);
                let mut table: HashMap<Value, Vec<usize>> = HashMap::new();
                for (i, (vals, _)) in inner.iter().enumerate() {
                    table.entry(vals[*column].clone()).or_default().push(i);
                }
                // Probe: one key evaluation + hash probe per prefix row,
                // one tuple read per emitted match.
                for r in 0..batch.rows {
                    m.charge(Op::EvalExpr, 1);
                    let key = key.eval_with(&|i| batch.cols[i][r].clone(), params)?;
                    m.charge(Op::UniqueHashOp, 1);
                    if let Some(idxs) = table.get(&key) {
                        m.charge(Op::TempTupleRead, idxs.len() as u64);
                        for &i in idxs {
                            let (vals, prov) = &inner[i];
                            next.push_joined(&batch, r, prefix, vals, k, prov);
                        }
                    }
                }
            }
            JoinStep::NestedLoop => {
                let inner = scan_item(env, item);
                for r in 0..batch.rows {
                    for (vals, prov) in &inner {
                        next.push_joined(&batch, r, prefix, vals, k, prov);
                    }
                }
            }
        }
        batch = next;
        filter_batch(env, &plan.filters[k], &mut batch, params)?;
    }

    INVOCATIONS.fetch_add(1, Ordering::Relaxed);
    env.plan_feedback(&plan.choice, plan.est_rows, batch.rows as u64);
    Ok(batch)
}

/// Batched projection: one sweep, `EvalExpr` charged per row.
pub(crate) fn project_batch(
    env: &dyn Env,
    outs: &[OutCol],
    batch: &RowBatch,
    params: &[Value],
) -> Result<Vec<Vec<Value>>> {
    let meter = env.meter();
    let mut out = Vec::with_capacity(batch.rows);
    for r in 0..batch.rows {
        meter.charge(Op::EvalExpr, 1);
        let mut row = Vec::with_capacity(outs.len());
        for o in outs {
            match o {
                OutCol::Passthrough { idx } => row.push(batch.cols[*idx][r].clone()),
                OutCol::Computed(p) => {
                    row.push(p.eval_with(&|i| batch.cols[i][r].clone(), params)?)
                }
            }
        }
        out.push(row);
    }
    Ok(out)
}

/// Batched hash aggregation: one sweep over the batch (`AggRow` per input
/// row), then one output row per group in first-seen order.
pub(crate) fn aggregate_batch(
    env: &dyn Env,
    agg: &plan::AggPlan,
    batch: &RowBatch,
    params: &[Value],
) -> Result<Vec<Vec<Value>>> {
    let meter = env.meter();
    let m = agg.keys.len();
    let mut groups: HashMap<Vec<Value>, Vec<AggState>> = HashMap::new();
    let mut group_order: Vec<Vec<Value>> = Vec::new();
    let new_states = |aggs: &[AggSpec]| -> Vec<AggState> {
        aggs.iter()
            .map(|a| AggState::new(a.func, a.int_input))
            .collect()
    };
    for r in 0..batch.rows {
        meter.charge(Op::AggRow, 1);
        let col = |i: usize| batch.cols[i][r].clone();
        let mut key = Vec::with_capacity(m);
        for ke in &agg.keys {
            key.push(ke.eval_with(&col, params)?);
        }
        let states = match groups.get_mut(&key) {
            Some(s) => s,
            None => {
                group_order.push(key.clone());
                groups
                    .entry(key.clone())
                    .or_insert_with(|| new_states(&agg.aggs));
                groups.get_mut(&key).expect("just inserted")
            }
        };
        for (st, spec) in states.iter_mut().zip(&agg.aggs) {
            let v = match &spec.arg {
                Some(a) => Some(a.eval_with(&col, params)?),
                None => None,
            };
            st.update(v.as_ref())?;
        }
    }

    // Global aggregate without GROUP BY over empty input still yields one row.
    if m == 0 && group_order.is_empty() {
        group_order.push(Vec::new());
        groups.insert(Vec::new(), new_states(&agg.aggs));
    }

    let mut out_rows = Vec::with_capacity(group_order.len());
    for key in group_order {
        let states = groups.remove(&key).expect("group present");
        let mut outer: Vec<Value> = key;
        outer.extend(states.into_iter().map(AggState::finish));
        if let Some(h) = &agg.having {
            meter.charge(Op::EvalExpr, 1);
            if !h.eval_bool(&outer, params)? {
                continue;
            }
        }
        let mut row = Vec::with_capacity(agg.outs.len());
        for o in &agg.outs {
            match o {
                GroupedOut::OuterCol(idx) => row.push(outer[*idx].clone()),
                GroupedOut::Expr(p) => row.push(p.eval(&outer, params)?),
            }
        }
        out_rows.push(row);
    }
    Ok(out_rows)
}

/// Sort the batch in place by compiled key programs (pre-projection ORDER
/// BY). No charges, matching the reference; evaluation errors surface
/// after the sort like the reference's captured-error scheme.
pub(crate) fn sort_batch(
    keys: &[(Program, bool)],
    batch: &mut RowBatch,
    params: &[Value],
) -> Result<()> {
    let mut perm: Vec<usize> = (0..batch.rows).collect();
    let mut err = None;
    perm.sort_by(|&a, &b| {
        for (k, desc) in keys {
            let ka = k.eval_with(&|i| batch.cols[i][a].clone(), params);
            let kb = k.eval_with(&|i| batch.cols[i][b].clone(), params);
            let (va, vb) = match (ka, kb) {
                (Ok(x), Ok(y)) => (x, y),
                (Err(e), _) | (_, Err(e)) => {
                    err.get_or_insert(e);
                    return std::cmp::Ordering::Equal;
                }
            };
            let ord = va.cmp(&vb);
            let ord = if *desc { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    if let Some(e) = err {
        return Err(e);
    }
    if perm.iter().enumerate().any(|(i, &p)| i != p) {
        batch.permute(&perm);
    }
    Ok(())
}

/// Is `self.rel` a temp relation? (Used by tests asserting hash-join lock
/// behavior keeps whole-table reads for non-keyed inners.)
#[allow(dead_code)]
fn is_temp(item: &ResolvedItem) -> bool {
    matches!(item.rel, Rel::Temp(_))
}
