//! The logical planner: FROM-item resolution, predicate analysis, and
//! greedy join ordering.
//!
//! This is the half of planning that is independent of physical operator
//! choice. [`analyze`] resolves every FROM item to its [`RelMeta`]
//! (schema, cardinality estimate, index metadata), rejects duplicate
//! aliases, and classifies WHERE conjuncts by the set of items they touch.
//! [`choose_join_order`] then fixes the join order greedily: seed with the
//! smallest estimated input and repeatedly attach a table reachable through
//! a two-item equi-join conjunct, preferring indexed targets and larger
//! row counts (which shrink fastest under an equi-join), falling back to a
//! cartesian step with the smallest remaining input.
//!
//! The join *order* is decided here, identically for both planner modes —
//! only access-path and join-operator selection is cost-based (see
//! [`crate::cost`]). Keeping the order mode-independent keeps FROM-item
//! lock-acquisition behavior and result digests directly comparable across
//! modes.

use crate::ast::{BinOp, Expr, Query};
use crate::error::{Result, SqlError};
use crate::exec::Env;
use crate::expr::{Layout, LayoutCol};
use crate::plan::{rel_meta, PlannedItem, RelMeta};

/// A `SELECT` after logical analysis, before physical operator choice.
pub(crate) struct LogicalQuery {
    /// FROM items in declaration order.
    pub items: Vec<PlannedItem>,
    /// Relation metadata, parallel to `items`.
    pub metas: Vec<RelMeta>,
    /// Layout over declaration order (conjunct classification only; the
    /// physical plan re-derives a join-order layout).
    pub decl_layout: Layout,
    /// WHERE split into conjuncts, original order.
    pub conjuncts: Vec<Expr>,
    /// For each conjunct, the declared items it references.
    pub conj_items: Vec<Vec<usize>>,
}

/// Resolve and analyze a query into its logical form.
pub(crate) fn analyze(env: &dyn Env, q: &Query) -> Result<LogicalQuery> {
    let mut metas = Vec::with_capacity(q.from.len());
    let mut items = Vec::with_capacity(q.from.len());
    for tref in &q.from {
        let meta = rel_meta(env, &tref.table)?;
        items.push(PlannedItem {
            alias: tref.alias.to_ascii_lowercase(),
            table: tref.table.clone(),
            arity: meta.schema.arity(),
        });
        metas.push(meta);
    }
    if items.is_empty() {
        return Err(SqlError::analyze("query has no FROM items"));
    }
    for (i, a) in items.iter().enumerate() {
        if items[..i].iter().any(|b| b.alias == a.alias) {
            return Err(SqlError::analyze(format!(
                "duplicate table alias `{}`",
                a.alias
            )));
        }
    }

    // Classify conjuncts over the declaration-order layout (names only).
    let decl_layout = layout_of(&items, &metas, |i| i);
    let mut conjuncts = Vec::new();
    if let Some(w) = &q.where_clause {
        split_conjuncts(w, &mut conjuncts);
    }
    let mut conj_items: Vec<Vec<usize>> = Vec::with_capacity(conjuncts.len());
    for c in &conjuncts {
        let mut touched = Vec::new();
        let mut err = None;
        c.visit_columns(&mut |qual, n| {
            match decl_layout.resolve(qual, n) {
                Ok(i) => {
                    let it = decl_layout.cols[i].item;
                    if !touched.contains(&it) {
                        touched.push(it);
                    }
                }
                Err(e) => err = Some(e),
            };
        });
        if let Some(e) = err {
            return Err(e);
        }
        conj_items.push(touched);
    }

    Ok(LogicalQuery {
        items,
        metas,
        decl_layout,
        conjuncts,
        conj_items,
    })
}

/// Greedy join-order selection over declared item indices.
pub(crate) fn choose_join_order(lq: &LogicalQuery) -> Vec<usize> {
    let n = lq.items.len();
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut bound = vec![false; n];
    let seed = (0..n).min_by_key(|&i| lq.metas[i].est_rows).unwrap();
    order.push(seed);
    bound[seed] = true;
    while order.len() < n {
        let mut best: Option<(usize, bool, usize)> = None; // (item, has_index, rows)
        for (ci, c) in lq.conjuncts.iter().enumerate() {
            let touched = &lq.conj_items[ci];
            if touched.len() != 2 {
                continue;
            }
            let (a, b) = (touched[0], touched[1]);
            let target = match (bound[a], bound[b]) {
                (true, false) => b,
                (false, true) => a,
                _ => continue,
            };
            let has_index = equi_join_target_col(c, &lq.decl_layout, target)
                .map(|col| lq.metas[target].has_index_on(col))
                .unwrap_or(false);
            let rows = lq.metas[target].est_rows;
            let better = match &best {
                None => true,
                Some((_, bi, br)) => {
                    (has_index, std::cmp::Reverse(rows)) > (*bi, std::cmp::Reverse(*br))
                }
            };
            if better {
                best = Some((target, has_index, rows));
            }
        }
        let next = match best {
            Some((t, _, _)) => t,
            // No join predicate reaches any unbound item: cartesian step
            // with the smallest remaining input.
            None => (0..n)
                .filter(|&i| !bound[i])
                .min_by_key(|&i| lq.metas[i].est_rows)
                .unwrap(),
        };
        order.push(next);
        bound[next] = true;
    }
    order
}

/// Build a layout over items, visiting them through `pick` (identity for
/// declaration order, the join permutation otherwise).
pub(crate) fn layout_of(
    items: &[PlannedItem],
    metas: &[RelMeta],
    pick: impl Fn(usize) -> usize,
) -> Layout {
    let mut cols = Vec::new();
    for pos in 0..items.len() {
        let d = pick(pos);
        for (j, c) in metas[d].schema.columns().iter().enumerate() {
            cols.push(LayoutCol {
                qualifier: items[d].alias.clone(),
                name: c.name.clone(),
                dtype: c.dtype,
                item: pos,
                item_offset: j,
            });
        }
    }
    Layout { cols }
}

pub(crate) fn split_conjuncts(e: &Expr, out: &mut Vec<Expr>) {
    if let Expr::Binary {
        op: BinOp::And,
        left,
        right,
    } = e
    {
        split_conjuncts(left, out);
        split_conjuncts(right, out);
    } else {
        out.push(e.clone());
    }
}

/// Extract the target-side column offset of an equi-join conjunct, if any.
pub(crate) fn equi_join_target_col(e: &Expr, layout: &Layout, target: usize) -> Option<usize> {
    let Expr::Binary {
        op: BinOp::Eq,
        left,
        right,
    } = e
    else {
        return None;
    };
    for side in [left, right] {
        if let Expr::Column { qualifier, name } = side.as_ref() {
            if let Ok(idx) = layout.resolve(qualifier, name) {
                if layout.cols[idx].item == target {
                    return Some(layout.cols[idx].item_offset);
                }
            }
        }
    }
    None
}
