//! # strip-sql
//!
//! SQL subset and STRIP rule-DDL front end plus a volcano-style executor.
//!
//! * [`lexer`] / [`parser`] / [`ast`] — hand-written front end covering
//!   `CREATE TABLE/INDEX/VIEW/RULE` (the full Figure-2 rule grammar),
//!   `SELECT` with joins/`GROUP BY`/aggregates, and `INSERT`/`UPDATE`
//!   (including the paper's `SET col += expr`)/`DELETE`.
//! * [`expr`] — name-resolved expressions, the compiled [`expr::Program`]
//!   evaluator, and the scalar-function registry.
//! * [`logical`] — the logical planner: FROM resolution, conjunct
//!   classification, and mode-independent greedy join ordering.
//! * [`cost`] — the Volcano-style cost chooser ([`cost::PlannerMode`]):
//!   scan/probe/range and probe/hash/nested-loop selection priced with the
//!   calibrated cost model over incrementally-maintained table statistics.
//! * [`plan`] — physical planning: logical analysis + cost choice →
//!   [`plan::PhysicalPlan`] with compiled filters and outputs.
//! * [`exec`] — plan execution entry points, DML, and bound-table output
//!   using the §6.1 pointer-tuple scheme; also the row-at-a-time reference
//!   interpreter [`exec::execute_select_rowwise`].
//! * [`batch`] — the vectorized executor: columnar [`batch::RowBatch`]
//!   operators (join, filter, project, aggregate, sort) making one plan
//!   invocation per rule firing over the whole transition table.
//! * [`cache`] — the prepared-plan cache keyed by statement text and plan
//!   epoch (schema epoch folded with the statistics epoch), shared by
//!   ad-hoc queries, rule conditions, and timers.
//!
//! The executor is deliberately independent of transactions: it runs against
//! an [`exec::Env`] supplied by `strip-core`, which routes reads through
//! lock acquisition and writes through transaction logging.

pub mod ast;
pub mod batch;
pub mod cache;
pub mod cost;
pub mod delta;
pub mod error;
pub mod exec;
pub mod expr;
pub mod lexer;
mod logical;
pub mod parser;
pub mod plan;

pub use ast::Statement;
pub use batch::{invocations as batch_invocations, RowBatch};
pub use cache::{PlanCache, PLAN_CACHE_ENTRY_BYTES};
pub use cost::PlannerMode;
pub use delta::{
    checkpoint, delta_apply, digest_result, digest_rows, DeltaMutant, DeltaOutcome, DeltaSpec,
    DeltaStats,
};
pub use error::{Result, SqlError};
pub use exec::{
    execute_delete, execute_insert, execute_plan, execute_query, execute_query_bound,
    execute_select, execute_select_bound, execute_select_rowwise, execute_update, Env, Rel,
    ResultSet,
};
pub use expr::{BExpr, Layout, Program, ScalarFn};
pub use parser::{parse_query, parse_script, parse_statement};
pub use plan::{plan_query_with, IndexMeta, PhysicalPlan, RelMeta};
