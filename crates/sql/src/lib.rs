//! # strip-sql
//!
//! SQL subset and STRIP rule-DDL front end plus a volcano-style executor.
//!
//! * [`lexer`] / [`parser`] / [`ast`] — hand-written front end covering
//!   `CREATE TABLE/INDEX/VIEW/RULE` (the full Figure-2 rule grammar),
//!   `SELECT` with joins/`GROUP BY`/aggregates, and `INSERT`/`UPDATE`
//!   (including the paper's `SET col += expr`)/`DELETE`.
//! * [`expr`] — name-resolved expressions, the compiled [`expr::Program`]
//!   evaluator, and the scalar-function registry.
//! * [`plan`] — the planner: AST + catalog metadata → [`plan::PhysicalPlan`]
//!   (greedy join order, index access-path selection, compiled filters and
//!   outputs).
//! * [`exec`] — the plan executor: index-aware joins, hash aggregation, DML,
//!   and bound-table output using the §6.1 pointer-tuple scheme.
//! * [`cache`] — the prepared-plan cache keyed by statement text and schema
//!   epoch, shared by ad-hoc queries, rule conditions, and timers.
//!
//! The executor is deliberately independent of transactions: it runs against
//! an [`exec::Env`] supplied by `strip-core`, which routes reads through
//! lock acquisition and writes through transaction logging.

pub mod ast;
pub mod cache;
pub mod error;
pub mod exec;
pub mod expr;
pub mod lexer;
pub mod parser;
pub mod plan;

pub use ast::Statement;
pub use cache::PlanCache;
pub use error::{Result, SqlError};
pub use exec::{
    execute_delete, execute_insert, execute_plan, execute_query, execute_query_bound,
    execute_select, execute_select_bound, execute_update, Env, Rel, ResultSet,
};
pub use expr::{BExpr, Layout, Program, ScalarFn};
pub use parser::{parse_query, parse_script, parse_statement};
pub use plan::{PhysicalPlan, RelMeta};
