//! Prepared-plan cache.
//!
//! Maps a statement key (typically the statement text, optionally prefixed
//! with a context signature such as the set of bound tables in scope) to a
//! compiled [`PhysicalPlan`]. Entries are tagged with the schema epoch they
//! were planned under; a lookup under a newer epoch is a miss and the entry
//! is replaced. Hit/miss counters feed the simulator's statistics so
//! experiments can report plan-cache effectiveness.

use crate::error::Result;
use crate::plan::PhysicalPlan;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use strip_obs::{EventKind, ObsSink, TraceCtx};

struct CachedPlan {
    epoch: u64,
    plan: Arc<PhysicalPlan>,
}

/// Modeled bytes per cached plan beyond its key: the map entry plus a flat
/// allowance for the compiled plan tree. Plans are recursive enums whose
/// true size is not worth walking; the accounting contract (exact counts,
/// modeled sizes — see `strip_storage::mem`) only needs the figure to be
/// deterministic and maintained exactly per entry.
pub const PLAN_CACHE_ENTRY_BYTES: u64 = 256;

/// A concurrent prepared-plan cache keyed by `(statement key, schema epoch)`.
#[derive(Default)]
pub struct PlanCache {
    plans: Mutex<HashMap<String, CachedPlan>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Modeled bytes held by cached entries (entry allowance + key length),
    /// maintained on insert/invalidate/clear. Atomic so memory probes can
    /// read it without touching the cache lock.
    bytes: AtomicU64,
    obs: Option<Arc<ObsSink>>,
}

/// Modeled bytes of one cache entry.
fn entry_bytes(key: &str) -> u64 {
    PLAN_CACHE_ENTRY_BYTES + key.len() as u64
}

impl PlanCache {
    /// New empty cache.
    pub fn new() -> PlanCache {
        PlanCache::default()
    }

    /// New empty cache that traces compile spans into `obs`.
    pub fn with_obs(obs: Arc<ObsSink>) -> PlanCache {
        PlanCache {
            obs: Some(obs),
            ..PlanCache::default()
        }
    }

    /// Look up `key` at `epoch`; on a miss (absent or planned under an older
    /// epoch) call `build` and cache its result. The lock is not held while
    /// planning, so concurrent misses on the same key may plan twice — the
    /// last one wins, which is harmless (plans are deterministic for a given
    /// epoch).
    pub fn get_or_plan(
        &self,
        key: &str,
        epoch: u64,
        build: impl FnOnce() -> Result<PhysicalPlan>,
    ) -> Result<Arc<PhysicalPlan>> {
        self.get_or_plan_at(key, epoch, 0, build)
    }

    /// [`PlanCache::get_or_plan`] with a virtual-clock timestamp for the
    /// traced `plan.compile` span. The span's *timestamp* is virtual time;
    /// its *duration* is real wall-clock µs, because planning is host work
    /// the Table-1 cost model does not price.
    pub fn get_or_plan_at(
        &self,
        key: &str,
        epoch: u64,
        at_us: u64,
        build: impl FnOnce() -> Result<PhysicalPlan>,
    ) -> Result<Arc<PhysicalPlan>> {
        self.get_or_plan_ctx(key, epoch, at_us, TraceCtx::NONE, build)
    }

    /// [`PlanCache::get_or_plan_at`] with causal identity: a compile span
    /// recorded on a miss joins the calling transaction's trace, so the
    /// lineage analyzer can carve plan-compile time out of execution.
    pub fn get_or_plan_ctx(
        &self,
        key: &str,
        epoch: u64,
        at_us: u64,
        ctx: TraceCtx,
        build: impl FnOnce() -> Result<PhysicalPlan>,
    ) -> Result<Arc<PhysicalPlan>> {
        if let Some(cached) = self.plans.lock().expect("plan cache lock").get(key) {
            if cached.epoch == epoch {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(cached.plan.clone());
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let t0 = std::time::Instant::now();
        let plan = Arc::new(build()?);
        if let Some(obs) = &self.obs {
            let compile_us = t0.elapsed().as_micros() as u64;
            obs.event_ctx(at_us, 0, EventKind::PlanCompile, key, compile_us, ctx, 0);
            obs.record_plan_compile(compile_us);
        }
        let prev = self.plans.lock().expect("plan cache lock").insert(
            key.to_string(),
            CachedPlan {
                epoch,
                plan: plan.clone(),
            },
        );
        if prev.is_none() {
            // Same-key replacement (epoch replan) reuses the existing
            // entry's allowance; only a fresh key charges bytes.
            self.bytes.fetch_add(entry_bytes(key), Ordering::Relaxed);
        }
        Ok(plan)
    }

    /// Drop one entry (used when a cached plan turned out stale mid-epoch).
    pub fn invalidate(&self, key: &str) {
        if self
            .plans
            .lock()
            .expect("plan cache lock")
            .remove(key)
            .is_some()
        {
            self.bytes.fetch_sub(entry_bytes(key), Ordering::Relaxed);
        }
    }

    /// Drop every entry.
    pub fn clear(&self) {
        self.plans.lock().expect("plan cache lock").clear();
        self.bytes.store(0, Ordering::Relaxed);
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.plans.lock().expect("plan cache lock").len()
    }

    /// True when no plans are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (including epoch-mismatch replans) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Modeled bytes currently held by cached entries. Lock-free, so the
    /// obs memory probe may call it from any context.
    pub fn cached_bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("len", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{InsertPlan, InsertSourcePlan};

    fn dummy_plan() -> PhysicalPlan {
        PhysicalPlan::Insert(InsertPlan {
            table: "t".into(),
            positions: vec![0],
            arity: 1,
            source: InsertSourcePlan::Values(Vec::new()),
        })
    }

    #[test]
    fn hit_then_epoch_invalidation() {
        let c = PlanCache::new();
        c.get_or_plan("k", 1, || Ok(dummy_plan())).unwrap();
        assert_eq!((c.hits(), c.misses()), (0, 1));
        c.get_or_plan("k", 1, || panic!("must not replan")).unwrap();
        assert_eq!((c.hits(), c.misses()), (1, 1));
        // A newer epoch misses and replaces the entry.
        c.get_or_plan("k", 2, || Ok(dummy_plan())).unwrap();
        assert_eq!((c.hits(), c.misses()), (1, 2));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn planning_error_is_not_cached() {
        let c = PlanCache::new();
        assert!(c
            .get_or_plan("bad", 1, || Err(crate::SqlError::analyze("nope")))
            .is_err());
        assert!(c.is_empty());
        assert_eq!(c.misses(), 1);
        // A later success caches normally.
        c.get_or_plan("bad", 1, || Ok(dummy_plan())).unwrap();
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn obs_traces_compiles_but_not_hits() {
        let obs = ObsSink::new(16);
        let c = PlanCache::with_obs(obs.clone());
        c.get_or_plan_at("k", 1, 500, || Ok(dummy_plan())).unwrap();
        c.get_or_plan_at("k", 1, 600, || panic!("must not replan"))
            .unwrap();
        let snap = obs.snapshot();
        assert_eq!(snap.plan_compile_us.count, 1);
        let tail = obs.trace_tail(10);
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].kind, EventKind::PlanCompile);
        assert_eq!(tail[0].at_us, 500);
        assert_eq!(tail[0].detail, "k");
    }

    #[test]
    fn ctx_compiles_carry_trace_identity() {
        let obs = ObsSink::new(16);
        let c = PlanCache::with_obs(obs.clone());
        let ctx = TraceCtx { trace: 7, span: 9 };
        c.get_or_plan_ctx("k", 1, 500, ctx, || Ok(dummy_plan()))
            .unwrap();
        let tail = obs.trace_tail(10);
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].trace, 7);
        assert_eq!(tail[0].span, 9);
    }

    #[test]
    fn invalidate_removes_entry() {
        let c = PlanCache::new();
        c.get_or_plan("k", 1, || Ok(dummy_plan())).unwrap();
        c.invalidate("k");
        assert!(c.is_empty());
        c.get_or_plan("k", 1, || Ok(dummy_plan())).unwrap();
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn cached_bytes_follow_entry_lifecycle() {
        let c = PlanCache::new();
        assert_eq!(c.cached_bytes(), 0);
        c.get_or_plan("key-a", 1, || Ok(dummy_plan())).unwrap();
        assert_eq!(c.cached_bytes(), PLAN_CACHE_ENTRY_BYTES + 5);
        // Epoch replan replaces the same key: no extra charge.
        c.get_or_plan("key-a", 2, || Ok(dummy_plan())).unwrap();
        assert_eq!(c.cached_bytes(), PLAN_CACHE_ENTRY_BYTES + 5);
        c.get_or_plan("kb", 2, || Ok(dummy_plan())).unwrap();
        assert_eq!(c.cached_bytes(), 2 * PLAN_CACHE_ENTRY_BYTES + 7);
        // Invalidating a present key releases it; a missing key is free.
        c.invalidate("key-a");
        assert_eq!(c.cached_bytes(), PLAN_CACHE_ENTRY_BYTES + 2);
        c.invalidate("missing");
        assert_eq!(c.cached_bytes(), PLAN_CACHE_ENTRY_BYTES + 2);
        c.clear();
        assert_eq!(c.cached_bytes(), 0);
    }
}
