//! Recursive-descent parser for the STRIP SQL subset and rule DDL (Figure 2).

use crate::ast::*;
use crate::error::{Result, SqlError};
use crate::lexer::{tokenize, Token};
use strip_storage::DataType;

/// Parse a single statement (a trailing semicolon is allowed).
///
/// ```
/// use strip_sql::{parse_statement, Statement};
///
/// let stmt = parse_statement(
///     "create rule r on stocks when updated price \
///      then execute f unique on comp after 1.0 seconds",
/// )
/// .unwrap();
/// let Statement::CreateRule(r) = stmt else { unreachable!() };
/// assert_eq!(r.unique, Some(vec!["comp".to_string()]));
/// assert_eq!(r.after_us, 1_000_000);
/// ```
pub fn parse_statement(input: &str) -> Result<Statement> {
    let mut p = Parser::new(input)?;
    let stmt = p.statement()?;
    p.accept(&Token::Semicolon);
    p.expect(&Token::Eof)?;
    Ok(stmt)
}

/// Parse a script: multiple statements separated by semicolons.
pub fn parse_script(input: &str) -> Result<Vec<Statement>> {
    let mut p = Parser::new(input)?;
    let mut stmts = Vec::new();
    loop {
        while p.accept(&Token::Semicolon) {}
        if p.peek() == &Token::Eof {
            break;
        }
        stmts.push(p.statement()?);
        if p.peek() != &Token::Eof && !p.accept(&Token::Semicolon) {
            return Err(p.err("expected `;` between statements"));
        }
    }
    Ok(stmts)
}

/// Parse a standalone query (used by view definitions stored as text).
pub fn parse_query(input: &str) -> Result<Query> {
    let mut p = Parser::new(input)?;
    let q = p.query()?;
    p.accept(&Token::Semicolon);
    p.expect(&Token::Eof)?;
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Number of `?` parameters seen so far, for positional numbering.
    params: usize,
}

impl Parser {
    fn new(input: &str) -> Result<Parser> {
        Ok(Parser {
            tokens: tokenize(input)?,
            pos: 0,
            params: 0,
        })
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn peek2(&self) -> &Token {
        self.tokens.get(self.pos + 1).unwrap_or(&Token::Eof)
    }

    fn next(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: &str) -> SqlError {
        SqlError::parse(format!("{msg} (near `{}`)", self.peek()))
    }

    fn accept(&mut self, t: &Token) -> bool {
        if self.peek() == t {
            self.next();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> Result<()> {
        if self.accept(t) {
            Ok(())
        } else {
            Err(self.err(&format!("expected `{t}`")))
        }
    }

    /// Accept a specific keyword (identifiers are already lower-cased).
    fn accept_kw(&mut self, kw: &str) -> bool {
        if let Token::Ident(s) = self.peek() {
            if s == kw {
                self.next();
                return true;
            }
        }
        false
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.accept_kw(kw) {
            Ok(())
        } else {
            Err(self.err(&format!("expected keyword `{kw}`")))
        }
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Token::Ident(s) if s == kw)
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Token::Ident(s) => Ok(s),
            other => Err(SqlError::parse(format!(
                "expected identifier, found `{other}`"
            ))),
        }
    }

    // ---- statements -----------------------------------------------------

    fn statement(&mut self) -> Result<Statement> {
        if self.accept_kw("create") {
            if self.accept_kw("table") {
                return self.create_table();
            }
            if self.accept_kw("index") {
                return self.create_index();
            }
            if self.accept_kw("materialized") {
                self.expect_kw("view")?;
                return self.create_view(true);
            }
            if self.accept_kw("view") {
                return self.create_view(false);
            }
            if self.accept_kw("rule") {
                return self.create_rule();
            }
            if self.accept_kw("timer") {
                return self.create_timer();
            }
            return Err(self.err("expected TABLE, INDEX, VIEW, RULE or TIMER after CREATE"));
        }
        if self.accept_kw("drop") {
            if self.accept_kw("table") {
                return Ok(Statement::DropTable {
                    name: self.ident()?,
                });
            }
            if self.accept_kw("rule") {
                return Ok(Statement::DropRule {
                    name: self.ident()?,
                });
            }
            if self.accept_kw("timer") {
                return Ok(Statement::DropTimer {
                    name: self.ident()?,
                });
            }
            return Err(self.err("expected TABLE, RULE or TIMER after DROP"));
        }
        if self.peek_kw("select") {
            return Ok(Statement::Select(self.query()?));
        }
        if self.accept_kw("insert") {
            return self.insert();
        }
        if self.accept_kw("update") {
            return self.update();
        }
        if self.accept_kw("delete") {
            return self.delete();
        }
        Err(self.err("expected a statement"))
    }

    fn data_type(&mut self) -> Result<DataType> {
        let name = self.ident()?;
        Ok(match name.as_str() {
            "int" | "integer" | "bigint" => DataType::Int,
            "float" | "real" | "double" => DataType::Float,
            "str" | "text" | "varchar" | "char" | "symbol" => {
                // Accept an optional length, e.g. varchar(16); ignored since
                // all strings are fixed-width symbols in STRIP's spirit.
                if self.accept(&Token::LParen) {
                    match self.next() {
                        Token::Int(_) => {}
                        _ => return Err(self.err("expected length in type")),
                    }
                    self.expect(&Token::RParen)?;
                }
                DataType::Str
            }
            "bool" | "boolean" => DataType::Bool,
            "timestamp" => DataType::Timestamp,
            other => return Err(SqlError::parse(format!("unknown type `{other}`"))),
        })
    }

    fn create_table(&mut self) -> Result<Statement> {
        let name = self.ident()?;
        self.expect(&Token::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col = self.ident()?;
            let ty = self.data_type()?;
            columns.push((col, ty));
            if !self.accept(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen)?;
        Ok(Statement::CreateTable(CreateTable { name, columns }))
    }

    fn create_index(&mut self) -> Result<Statement> {
        let name = self.ident()?;
        self.expect_kw("on")?;
        let table = self.ident()?;
        self.expect(&Token::LParen)?;
        let column = self.ident()?;
        self.expect(&Token::RParen)?;
        let mut using_rbtree = false;
        if self.accept_kw("using") {
            let kind = self.ident()?;
            using_rbtree = match kind.as_str() {
                "hash" => false,
                "rbtree" | "tree" | "btree" => true,
                other => return Err(SqlError::parse(format!("unknown index kind `{other}`"))),
            };
        }
        Ok(Statement::CreateIndex(CreateIndex {
            name,
            table,
            column,
            using_rbtree,
        }))
    }

    fn create_view(&mut self, materialized: bool) -> Result<Statement> {
        let name = self.ident()?;
        self.expect_kw("as")?;
        let query = self.query()?;
        Ok(Statement::CreateView(CreateView {
            name,
            materialized,
            query,
        }))
    }

    /// `create rule name on table when events [if ...] then [evaluate ...]
    ///  execute f [unique [on cols]] [after t seconds]
    ///  [slo [on] table [p99] t [seconds|ms|us]] [end rule]`
    fn create_rule(&mut self) -> Result<Statement> {
        let name = self.ident()?;
        self.expect_kw("on")?;
        let table = self.ident()?;
        self.expect_kw("when")?;

        let mut events = Vec::new();
        loop {
            if self.accept_kw("inserted") {
                events.push(Event::Inserted);
            } else if self.accept_kw("deleted") {
                events.push(Event::Deleted);
            } else if self.accept_kw("updated") {
                let mut cols = Vec::new();
                // Optional column-commalist; ends at a keyword that can
                // follow the transition predicate.
                while let Token::Ident(s) = self.peek() {
                    if Self::is_rule_keyword(s) {
                        break;
                    }
                    cols.push(self.ident()?);
                    if !self.accept(&Token::Comma) {
                        break;
                    }
                }
                events.push(Event::Updated(cols));
            } else {
                break;
            }
            // Events may be separated by `or` or commas or juxtaposition.
            let _ = self.accept_kw("or") || self.accept(&Token::Comma);
        }
        if events.is_empty() {
            return Err(self.err("rule must name at least one event"));
        }

        let mut condition = Vec::new();
        if self.accept_kw("if") {
            condition = self.bindable_queries()?;
        }
        self.expect_kw("then")?;
        let mut evaluate = Vec::new();
        if self.accept_kw("evaluate") {
            evaluate = self.bindable_queries()?;
        }
        self.expect_kw("execute")?;
        let execute = self.ident()?;

        let mut unique = None;
        if self.accept_kw("unique") {
            let mut cols = Vec::new();
            if self.accept_kw("on") {
                loop {
                    // Accept optionally qualified names (e.g. `X.A` in the
                    // paper); the qualifier is dropped since unique columns
                    // name bound-table columns, which are unqualified.
                    let first = self.ident()?;
                    let col = if self.accept(&Token::Dot) {
                        self.ident()?
                    } else {
                        first
                    };
                    cols.push(col);
                    if !self.accept(&Token::Comma) {
                        break;
                    }
                }
            }
            unique = Some(cols);
        }

        let mut after_us = 0u64;
        if self.accept_kw("after") {
            after_us = self.time_value_us("AFTER")?;
        }

        // `slo [on] <derived-table> [p99] <bound> [unit]`: a staleness
        // objective for the derived table the rule maintains.
        let mut slo = None;
        if self.accept_kw("slo") {
            let _ = self.accept_kw("on");
            let slo_table = self.ident()?;
            let _ = self.accept_kw("p99");
            let bound = self.time_value_us("SLO")?;
            slo = Some(crate::ast::SloClause {
                table: slo_table,
                p99_bound_us: bound,
            });
        }

        // Optional `end rule` terminator (used in the paper's figures).
        if self.accept_kw("end") {
            let _ = self.accept_kw("rule") || self.accept_kw("function");
        }

        Ok(Statement::CreateRule(CreateRule {
            name,
            table,
            events,
            condition,
            evaluate,
            execute,
            unique,
            after_us,
            slo,
        }))
    }

    /// A time literal with an optional unit, in µs; bare numbers are
    /// seconds, as in the paper's `after` clause.
    fn time_value_us(&mut self, what: &str) -> Result<u64> {
        let v = match self.next() {
            Token::Int(i) => i as f64,
            Token::Float(f) => f,
            other => {
                return Err(SqlError::parse(format!(
                    "expected time value after {what}, found `{other}`"
                )))
            }
        };
        let unit_us: f64 = if self.accept_kw("seconds") || self.accept_kw("second") {
            1_000_000.0
        } else if self.accept_kw("milliseconds") || self.accept_kw("ms") {
            1_000.0
        } else if self.accept_kw("microseconds") || self.accept_kw("us") {
            1.0
        } else {
            1_000_000.0
        };
        Ok((v * unit_us).round() as u64)
    }

    /// `create timer name every <t> [seconds|ms|us] execute f [limit n]`
    fn create_timer(&mut self) -> Result<Statement> {
        let name = self.ident()?;
        self.expect_kw("every")?;
        let v = match self.next() {
            Token::Int(i) => i as f64,
            Token::Float(f) => f,
            other => {
                return Err(SqlError::parse(format!(
                    "expected interval after EVERY, found `{other}`"
                )))
            }
        };
        let unit_us: f64 = if self.accept_kw("seconds") || self.accept_kw("second") {
            1_000_000.0
        } else if self.accept_kw("milliseconds") || self.accept_kw("ms") {
            1_000.0
        } else if self.accept_kw("microseconds") || self.accept_kw("us") {
            1.0
        } else {
            1_000_000.0
        };
        self.expect_kw("execute")?;
        let execute = self.ident()?;
        let limit = if self.accept_kw("limit") {
            match self.next() {
                Token::Int(i) if i > 0 => Some(i as u64),
                other => {
                    return Err(SqlError::parse(format!(
                        "expected positive LIMIT, found `{other}`"
                    )))
                }
            }
        } else {
            None
        };
        if (v * unit_us) < 1.0 {
            return Err(SqlError::parse("timer interval must be at least 1 us"));
        }
        Ok(Statement::CreateTimer(CreateTimer {
            name,
            every_us: (v * unit_us).round() as u64,
            execute,
            limit,
        }))
    }

    fn is_rule_keyword(s: &str) -> bool {
        matches!(
            s,
            "if" | "then" | "inserted" | "deleted" | "updated" | "or" | "evaluate" | "execute"
        )
    }

    fn bindable_queries(&mut self) -> Result<Vec<BindableQuery>> {
        let mut out = Vec::new();
        loop {
            let query = self.query()?;
            let bind_as = if self.accept_kw("bind") {
                self.expect_kw("as")?;
                Some(self.ident()?)
            } else {
                None
            };
            out.push(BindableQuery { query, bind_as });
            if !self.accept(&Token::Comma) {
                break;
            }
        }
        Ok(out)
    }

    // ---- queries ---------------------------------------------------------

    fn query(&mut self) -> Result<Query> {
        self.expect_kw("select")?;
        let distinct = self.accept_kw("distinct");
        let mut items = Vec::new();
        loop {
            items.push(self.select_item()?);
            if !self.accept(&Token::Comma) {
                break;
            }
        }
        self.expect_kw("from")?;
        let mut from = Vec::new();
        loop {
            let table = self.ident()?;
            // Optional alias: a bare identifier that is not a clause keyword.
            let alias = match self.peek() {
                Token::Ident(s) if !Self::is_clause_keyword(s) => self.ident()?,
                _ => table.clone(),
            };
            from.push(TableRef { table, alias });
            // A comma continues the FROM list unless it is followed by
            // `select`, in which case it separates queries in a rule's
            // query-commalist and belongs to our caller.
            let continues = self.peek() == &Token::Comma
                && !matches!(self.peek2(), Token::Ident(s) if s == "select");
            if continues {
                self.next();
            } else {
                break;
            }
        }
        let where_clause = if self.accept_kw("where") {
            Some(self.expr(0)?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        let mut having = None;
        if self.accept_kw("group") {
            self.expect_kw("by")?;
            loop {
                group_by.push(self.expr(0)?);
                if !self.accept(&Token::Comma) {
                    break;
                }
            }
        } else if self.accept_kw("groupby") {
            // The paper writes `groupby` as one word in places.
            loop {
                group_by.push(self.expr(0)?);
                if !self.accept(&Token::Comma) {
                    break;
                }
            }
        }
        if self.accept_kw("having") {
            having = Some(self.expr(0)?);
        }
        let mut order_by = Vec::new();
        if self.accept_kw("order") {
            self.expect_kw("by")?;
            loop {
                let e = self.expr(0)?;
                let desc = if self.accept_kw("desc") {
                    true
                } else {
                    let _ = self.accept_kw("asc");
                    false
                };
                order_by.push((e, desc));
                if !self.accept(&Token::Comma) {
                    break;
                }
            }
        }
        let limit = if self.accept_kw("limit") {
            match self.next() {
                Token::Int(i) if i >= 0 => Some(i as u64),
                other => {
                    return Err(SqlError::parse(format!(
                        "expected non-negative LIMIT, found `{other}`"
                    )))
                }
            }
        } else {
            None
        };
        Ok(Query {
            distinct,
            items,
            from,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn is_clause_keyword(s: &str) -> bool {
        matches!(
            s,
            "where"
                | "group"
                | "groupby"
                | "order"
                | "limit"
                | "bind"
                | "from"
                | "select"
                | "then"
                | "execute"
                | "evaluate"
                | "unique"
                | "after"
                | "end"
                | "on"
                | "as"
                | "set"
                | "values"
                | "having"
                | "distinct"
        )
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        if self.accept(&Token::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // `alias.*`
        if let (Token::Ident(q), Token::Dot) = (self.peek(), self.peek2()) {
            if self.tokens.get(self.pos + 2) == Some(&Token::Star) {
                let q = q.clone();
                self.next();
                self.next();
                self.next();
                return Ok(SelectItem::QualifiedWildcard(q));
            }
        }
        let expr = self.expr(0)?;
        let alias = if self.accept_kw("as") {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    // ---- DML ---------------------------------------------------------------

    fn insert(&mut self) -> Result<Statement> {
        self.expect_kw("into")?;
        let table = self.ident()?;
        let mut columns = Vec::new();
        if self.accept(&Token::LParen) {
            loop {
                columns.push(self.ident()?);
                if !self.accept(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
        }
        let source = if self.accept_kw("values") {
            let mut rows = Vec::new();
            loop {
                self.expect(&Token::LParen)?;
                let mut row = Vec::new();
                loop {
                    row.push(self.expr(0)?);
                    if !self.accept(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RParen)?;
                rows.push(row);
                if !self.accept(&Token::Comma) {
                    break;
                }
            }
            InsertSource::Values(rows)
        } else if self.peek_kw("select") {
            InsertSource::Query(self.query()?)
        } else {
            return Err(self.err("expected VALUES or SELECT in INSERT"));
        };
        Ok(Statement::Insert(Insert {
            table,
            columns,
            source,
        }))
    }

    fn update(&mut self) -> Result<Statement> {
        let table = self.ident()?;
        self.expect_kw("set")?;
        let mut assignments = Vec::new();
        loop {
            let column = self.ident()?;
            let increment = if self.accept(&Token::PlusEq) {
                true
            } else {
                self.expect(&Token::Eq)?;
                false
            };
            let expr = self.expr(0)?;
            assignments.push(Assignment {
                column,
                expr,
                increment,
            });
            if !self.accept(&Token::Comma) {
                break;
            }
        }
        let where_clause = if self.accept_kw("where") {
            Some(self.expr(0)?)
        } else {
            None
        };
        Ok(Statement::Update(Update {
            table,
            assignments,
            where_clause,
        }))
    }

    fn delete(&mut self) -> Result<Statement> {
        self.expect_kw("from")?;
        let table = self.ident()?;
        let where_clause = if self.accept_kw("where") {
            Some(self.expr(0)?)
        } else {
            None
        };
        Ok(Statement::Delete(Delete {
            table,
            where_clause,
        }))
    }

    // ---- expressions (precedence climbing) -------------------------------

    fn expr(&mut self, min_prec: u8) -> Result<Expr> {
        let mut left = self.unary()?;
        loop {
            // Comparison-level postfix predicates: IS [NOT] NULL,
            // [NOT] BETWEEN .. AND .., [NOT] IN (..).
            if min_prec <= 3 {
                if let Some(e) = self.postfix_predicate(left.clone())? {
                    left = e;
                    continue;
                }
            }
            let op = match self.peek() {
                Token::Plus => BinOp::Add,
                Token::Minus => BinOp::Sub,
                Token::Star => BinOp::Mul,
                Token::Slash => BinOp::Div,
                Token::Eq => BinOp::Eq,
                Token::NotEq => BinOp::NotEq,
                Token::Lt => BinOp::Lt,
                Token::LtEq => BinOp::LtEq,
                Token::Gt => BinOp::Gt,
                Token::GtEq => BinOp::GtEq,
                Token::Ident(s) if s == "and" => BinOp::And,
                Token::Ident(s) if s == "or" => BinOp::Or,
                _ => break,
            };
            if op.precedence() < min_prec {
                break;
            }
            self.next();
            let right = self.expr(op.precedence() + 1)?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    /// Try the postfix predicate forms on `left`. Returns `None` (leaving
    /// the token stream untouched) when the lookahead doesn't match.
    fn postfix_predicate(&mut self, left: Expr) -> Result<Option<Expr>> {
        if self.accept_kw("is") {
            let negated = self.accept_kw("not");
            self.expect_kw("null")?;
            return Ok(Some(Expr::IsNull {
                expr: Box::new(left),
                negated,
            }));
        }
        // `NOT` only binds here when followed by IN/BETWEEN.
        let negated = if self.peek_kw("not")
            && matches!(self.peek2(), Token::Ident(s) if s == "in" || s == "between")
        {
            self.next();
            true
        } else {
            false
        };
        if self.accept_kw("between") {
            // Bounds parse at additive precedence so the connecting AND is
            // not consumed as a logical operator.
            let lo = self.expr(4)?;
            self.expect_kw("and")?;
            let hi = self.expr(4)?;
            let ge = Expr::Binary {
                op: BinOp::GtEq,
                left: Box::new(left.clone()),
                right: Box::new(lo),
            };
            let le = Expr::Binary {
                op: BinOp::LtEq,
                left: Box::new(left),
                right: Box::new(hi),
            };
            let both = Expr::Binary {
                op: BinOp::And,
                left: Box::new(ge),
                right: Box::new(le),
            };
            return Ok(Some(if negated {
                Expr::Not(Box::new(both))
            } else {
                both
            }));
        }
        if self.accept_kw("in") {
            self.expect(&Token::LParen)?;
            let mut alts = Vec::new();
            loop {
                alts.push(self.expr(0)?);
                if !self.accept(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            // Desugar to an OR chain of equalities.
            let mut it = alts.into_iter();
            let first = it.next().expect("IN list is non-empty");
            let mut acc = Expr::Binary {
                op: BinOp::Eq,
                left: Box::new(left.clone()),
                right: Box::new(first),
            };
            for alt in it {
                acc = Expr::Binary {
                    op: BinOp::Or,
                    left: Box::new(acc),
                    right: Box::new(Expr::Binary {
                        op: BinOp::Eq,
                        left: Box::new(left.clone()),
                        right: Box::new(alt),
                    }),
                };
            }
            return Ok(Some(if negated {
                Expr::Not(Box::new(acc))
            } else {
                acc
            }));
        }
        if negated {
            return Err(self.err("expected IN or BETWEEN after NOT"));
        }
        Ok(None)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.accept(&Token::Minus) {
            return Ok(Expr::Neg(Box::new(self.unary()?)));
        }
        if self.accept_kw("not") {
            return Ok(Expr::Not(Box::new(self.unary()?)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.next() {
            Token::Int(i) => Ok(Expr::IntLit(i)),
            Token::Float(f) => Ok(Expr::FloatLit(f)),
            Token::Str(s) => Ok(Expr::StrLit(s)),
            Token::Question => {
                let idx = self.params;
                self.params += 1;
                Ok(Expr::Param(idx))
            }
            Token::LParen => {
                let e = self.expr(0)?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Token::Ident(name) => {
                if name == "true" {
                    return Ok(Expr::BoolLit(true));
                }
                if name == "false" {
                    return Ok(Expr::BoolLit(false));
                }
                if name == "null" {
                    return Ok(Expr::NullLit);
                }
                // Function or aggregate call.
                if self.peek() == &Token::LParen {
                    self.next();
                    if let Some(func) = AggFunc::from_name(&name) {
                        // count(*) special case.
                        if func == AggFunc::Count && self.accept(&Token::Star) {
                            self.expect(&Token::RParen)?;
                            return Ok(Expr::Aggregate { func, arg: None });
                        }
                        let arg = self.expr(0)?;
                        self.expect(&Token::RParen)?;
                        return Ok(Expr::Aggregate {
                            func,
                            arg: Some(Box::new(arg)),
                        });
                    }
                    let mut args = Vec::new();
                    if self.peek() != &Token::RParen {
                        loop {
                            args.push(self.expr(0)?);
                            if !self.accept(&Token::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&Token::RParen)?;
                    return Ok(Expr::Call { name, args });
                }
                // Qualified column `alias.col`.
                if self.accept(&Token::Dot) {
                    let col = self.ident()?;
                    return Ok(Expr::Column {
                        qualifier: Some(name),
                        name: col,
                    });
                }
                Ok(Expr::Column {
                    qualifier: None,
                    name,
                })
            }
            other => Err(SqlError::parse(format!(
                "expected expression, found `{other}`"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_create_table() {
        let s = parse_statement("create table stocks (symbol str, price float)").unwrap();
        match s {
            Statement::CreateTable(ct) => {
                assert_eq!(ct.name, "stocks");
                assert_eq!(ct.columns.len(), 2);
                assert_eq!(ct.columns[0], ("symbol".to_string(), DataType::Str));
                assert_eq!(ct.columns[1], ("price".to_string(), DataType::Float));
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn parse_select_with_joins_groupby() {
        let q = parse_query(
            "select comp, sum(price*weight) as price \
             from stocks, comps_list \
             where stocks.symbol = comps_list.symbol \
             group by comp",
        )
        .unwrap();
        assert_eq!(q.items.len(), 2);
        assert_eq!(q.from.len(), 2);
        assert!(q.where_clause.is_some());
        assert_eq!(q.group_by, vec![Expr::col("comp")]);
    }

    #[test]
    fn parse_aliases() {
        let q = parse_query("select r.a from table1 r where r.a > 3").unwrap();
        assert_eq!(q.from[0].table, "table1");
        assert_eq!(q.from[0].alias, "r");
    }

    #[test]
    fn parse_paper_rule_do_comps3() {
        // Figure 7, lightly reformatted.
        let s = parse_statement(
            "create rule do_comps3 on stocks \
             when updated price \
             if \
               select comp, comps_list.symbol as symbol, weight, \
                      old.price as old_price, new.price as new_price \
               from comps_list, new, old \
               where comps_list.symbol = new.symbol \
                 and new.execute_order = old.execute_order \
               bind as matches \
             then \
               execute compute_comps3 \
               unique on comp \
               after 1.0 seconds \
             end rule",
        )
        .unwrap();
        let Statement::CreateRule(r) = s else {
            panic!("expected rule")
        };
        assert_eq!(r.name, "do_comps3");
        assert_eq!(r.table, "stocks");
        assert_eq!(r.events, vec![Event::Updated(vec!["price".to_string()])]);
        assert_eq!(r.condition.len(), 1);
        assert_eq!(r.condition[0].bind_as.as_deref(), Some("matches"));
        assert_eq!(r.execute, "compute_comps3");
        assert_eq!(r.unique, Some(vec!["comp".to_string()]));
        assert_eq!(r.after_us, 1_000_000);
    }

    #[test]
    fn parse_rule_without_condition() {
        // The `foo` rule from §2.
        let s = parse_statement(
            "create rule foo on table1 \
             when inserted \
             then evaluate select * from inserted bind as my_inserted \
             execute my_function",
        )
        .unwrap();
        let Statement::CreateRule(r) = s else {
            panic!("expected rule")
        };
        assert!(r.condition.is_empty());
        assert_eq!(r.evaluate.len(), 1);
        assert_eq!(r.evaluate[0].bind_as.as_deref(), Some("my_inserted"));
        assert_eq!(r.unique, None);
        assert_eq!(r.after_us, 0);
    }

    #[test]
    fn parse_rule_multiple_events_and_coarse_unique() {
        let s = parse_statement(
            "create rule r on t when inserted or deleted or updated a, b \
             then execute f unique after 250 ms",
        )
        .unwrap();
        let Statement::CreateRule(r) = s else {
            panic!("expected rule")
        };
        assert_eq!(r.events.len(), 3);
        assert_eq!(
            r.events[2],
            Event::Updated(vec!["a".to_string(), "b".to_string()])
        );
        assert_eq!(r.unique, Some(vec![]));
        assert_eq!(r.after_us, 250_000);
    }

    #[test]
    fn parse_rule_with_slo_clause() {
        let s = parse_statement(
            "create rule comp on stocks when updated price \
             then execute f unique on comp after 2 seconds \
             slo on comp_prices p99 1 second end rule",
        )
        .unwrap();
        let Statement::CreateRule(r) = s else {
            panic!("expected rule")
        };
        assert_eq!(r.after_us, 2_000_000);
        let slo = r.slo.expect("slo clause");
        assert_eq!(slo.table, "comp_prices");
        assert_eq!(slo.p99_bound_us, 1_000_000);
    }

    #[test]
    fn parse_rule_slo_units_and_optional_keywords() {
        // `on` and `p99` are optional; ms/us units work; bare numbers are
        // seconds.
        let s = parse_statement("create rule r on t when inserted then execute f slo d 250 ms")
            .unwrap();
        let Statement::CreateRule(r) = s else {
            panic!("expected rule")
        };
        let slo = r.slo.expect("slo clause");
        assert_eq!(slo.table, "d");
        assert_eq!(slo.p99_bound_us, 250_000);

        let s = parse_statement("create rule r on t when inserted then execute f slo d 3").unwrap();
        let Statement::CreateRule(r) = s else {
            panic!("expected rule")
        };
        assert_eq!(r.slo.unwrap().p99_bound_us, 3_000_000);
        // No slo clause -> None.
        let s = parse_statement("create rule r on t when inserted then execute f").unwrap();
        let Statement::CreateRule(r) = s else {
            panic!("expected rule")
        };
        assert_eq!(r.slo, None);
    }

    #[test]
    fn parse_unique_on_qualified_column() {
        // The paper writes `unique on X.A`.
        let s = parse_statement("create rule r on x when updated then execute f unique on x.a")
            .unwrap();
        let Statement::CreateRule(r) = s else {
            panic!("expected rule")
        };
        assert_eq!(r.unique, Some(vec!["a".to_string()]));
    }

    #[test]
    fn parse_update_with_increment() {
        let s = parse_statement("update comp_prices set price += 1.5 where comp = 'C1'").unwrap();
        let Statement::Update(u) = s else {
            panic!("expected update")
        };
        assert_eq!(u.table, "comp_prices");
        assert!(u.assignments[0].increment);
        assert!(u.where_clause.is_some());
    }

    #[test]
    fn parse_insert_forms() {
        let s = parse_statement("insert into t values (1, 'a'), (2, 'b')").unwrap();
        let Statement::Insert(i) = s else {
            panic!("expected insert")
        };
        assert!(matches!(i.source, InsertSource::Values(ref v) if v.len() == 2));

        let s = parse_statement("insert into t (a, b) select a, b from u").unwrap();
        let Statement::Insert(i) = s else {
            panic!("expected insert")
        };
        assert_eq!(i.columns, vec!["a".to_string(), "b".to_string()]);
        assert!(matches!(i.source, InsertSource::Query(_)));
    }

    #[test]
    fn parse_delete() {
        let s = parse_statement("delete from t where x <> 3").unwrap();
        assert!(matches!(s, Statement::Delete(_)));
    }

    #[test]
    fn expression_precedence() {
        let q = parse_query("select a + b * c from t").unwrap();
        let SelectItem::Expr { expr, .. } = &q.items[0] else {
            panic!()
        };
        // a + (b * c)
        let Expr::Binary { op, right, .. } = expr else {
            panic!()
        };
        assert_eq!(*op, BinOp::Add);
        assert!(matches!(**right, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn and_or_precedence() {
        let q = parse_query("select * from t where a = 1 or b = 2 and c = 3").unwrap();
        // or(a=1, and(b=2, c=3))
        let Some(Expr::Binary { op, .. }) = &q.where_clause else {
            panic!()
        };
        assert_eq!(*op, BinOp::Or);
    }

    #[test]
    fn params_numbered_in_order() {
        let q = parse_query("select * from t where a = ? and b = ?").unwrap();
        let mut params = Vec::new();
        fn walk(e: &Expr, out: &mut Vec<usize>) {
            match e {
                Expr::Param(i) => out.push(*i),
                Expr::Binary { left, right, .. } => {
                    walk(left, out);
                    walk(right, out);
                }
                _ => {}
            }
        }
        walk(q.where_clause.as_ref().unwrap(), &mut params);
        assert_eq!(params, vec![0, 1]);
    }

    #[test]
    fn count_star_and_aggregates() {
        let q = parse_query("select count(*), sum(x), avg(y) from t").unwrap();
        assert!(matches!(
            q.items[0],
            SelectItem::Expr {
                expr: Expr::Aggregate {
                    func: AggFunc::Count,
                    arg: None
                },
                ..
            }
        ));
    }

    #[test]
    fn wildcards() {
        let q = parse_query("select *, t.* from t").unwrap();
        assert_eq!(q.items[0], SelectItem::Wildcard);
        assert_eq!(q.items[1], SelectItem::QualifiedWildcard("t".to_string()));
    }

    #[test]
    fn order_by_and_limit() {
        let q = parse_query("select * from t order by a desc, b limit 10").unwrap();
        assert_eq!(q.order_by.len(), 2);
        assert!(q.order_by[0].1);
        assert!(!q.order_by[1].1);
        assert_eq!(q.limit, Some(10));
    }

    #[test]
    fn parse_script_multiple_statements() {
        let stmts =
            parse_script("create table a (x int); create table b (y float);; select * from a;")
                .unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn error_messages_mention_context() {
        let e = parse_statement("create banana x").unwrap_err();
        assert!(matches!(e, SqlError::Parse(_)));
        let e = parse_statement("select from t").unwrap_err();
        assert!(matches!(e, SqlError::Parse(_)));
    }

    #[test]
    fn groupby_one_word_accepted() {
        // The paper's compute_comps2 writes `groupby comp`.
        let q = parse_query("select comp, sum(d) from m groupby comp").unwrap();
        assert_eq!(q.group_by.len(), 1);
    }

    #[test]
    fn create_materialized_view() {
        let s = parse_statement(
            "create materialized view comp_prices as \
             select comp, sum(price*weight) as price from stocks, comps_list \
             where stocks.symbol = comps_list.symbol group by comp",
        )
        .unwrap();
        let Statement::CreateView(v) = s else {
            panic!()
        };
        assert!(v.materialized);
        assert_eq!(v.name, "comp_prices");
    }
}
