//! Query and DML execution.
//!
//! The executor is a small volcano-style engine specialized for STRIP's
//! workload: short selections and equi-joins between base tables (indexed)
//! and tiny transition/bound tables, plus hash aggregation for the paper's
//! `group by` recompute queries.
//!
//! Join planning is greedy: start from the smallest input, then repeatedly
//! attach the table reachable through an equi-join predicate, preferring one
//! with a usable index (`comps_list.symbol = new.symbol` probes the
//! `comps_list` hash index once per `new` row instead of scanning 80 000
//! rows per stock update — essential for the paper's update rates).
//!
//! ## Provenance and bound tables
//!
//! While joining, the executor tracks which `RecordRef` produced each FROM
//! item's slice of the row. When a query result is bound (`bind as`), select
//! items that are plain column references resolve into **pointer** columns of
//! the output [`TempTable`] (the §6.1 scheme); computed items become
//! materialized slots.
//!
//! ## Metering
//!
//! Read-side work is charged here (cursor open/fetch, index probes, temp
//! tuple reads/builds, expression evaluation, aggregation rows). Write-side
//! work (locks, tuple writes, index maintenance) is charged by the [`Env`]
//! implementation, which routes DML through transaction bookkeeping.

use crate::ast::*;
use crate::error::{Result, SqlError};
use crate::expr::{bind_expr, BExpr, Layout, LayoutCol, ScalarFn};
use std::collections::HashMap;
use std::sync::Arc;
use strip_storage::{
    ColumnSource, DataType, Meter, Op, RecordRef, RowId, Schema, SchemaRef, StaticMap, TempTable,
    Value,
};

/// A readable relation.
#[derive(Clone)]
pub enum Rel {
    /// A standard table from the catalog.
    Standard(strip_storage::TableRef),
    /// A temporary table (transition table, bound table, query result).
    Temp(Arc<TempTable>),
}

impl Rel {
    /// The relation's schema.
    pub fn schema(&self) -> SchemaRef {
        match self {
            Rel::Standard(t) => t.read().schema().clone(),
            Rel::Temp(t) => t.schema().clone(),
        }
    }

    /// Estimated (here: exact) row count.
    pub fn len(&self) -> usize {
        match self {
            Rel::Standard(t) => t.read().len(),
            Rel::Temp(t) => t.len(),
        }
    }

    /// True if no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The environment a statement executes in: relation resolution, scalar
/// functions, metering, and DML hooks that route writes through transaction
/// bookkeeping (locking, logging, index maintenance).
pub trait Env {
    /// Operation meter for cost accounting.
    fn meter(&self) -> &dyn Meter;
    /// Resolve a named relation (standard, transition, or bound table).
    fn relation(&self, name: &str) -> Option<Rel>;
    /// Resolve a registered scalar function.
    fn scalar_fn(&self, name: &str) -> Option<ScalarFn>;
    /// Called once before reading a standard table (S-lock acquisition).
    fn before_read(&self, _table: &str) -> Result<()> {
        Ok(())
    }
    /// Called before a statement that will write `table` reads it
    /// (X-lock acquisition up front, preventing S→X upgrade deadlocks
    /// between concurrent single-statement updates).
    fn before_write(&self, _table: &str) -> Result<()> {
        Ok(())
    }
    /// Insert a row (write-side charging + logging inside).
    fn dml_insert(&self, table: &str, row: Vec<Value>) -> Result<()>;
    /// Update a row to new values.
    fn dml_update(&self, table: &str, id: RowId, new: Vec<Value>) -> Result<()>;
    /// Delete a row.
    fn dml_delete(&self, table: &str, id: RowId) -> Result<()>;
}

/// A fully-materialized query result.
#[derive(Debug, Clone)]
pub struct ResultSet {
    /// Output schema.
    pub schema: SchemaRef,
    /// Output rows.
    pub rows: Vec<Vec<Value>>,
}

impl ResultSet {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Value at `(row, named column)`.
    pub fn value(&self, row: usize, column: &str) -> Result<&Value> {
        let c = self.schema.index_of_ok(column)?;
        self.rows
            .get(row)
            .map(|r| &r[c])
            .ok_or_else(|| SqlError::exec(format!("row {row} out of range")))
    }

    /// First row's value in `column`, convenient for scalar lookups.
    pub fn single(&self, column: &str) -> Result<&Value> {
        if self.rows.is_empty() {
            return Err(SqlError::exec("query returned no rows"));
        }
        self.value(0, column)
    }
}

// ---------------------------------------------------------------------------
// Planning structures
// ---------------------------------------------------------------------------

struct FromItemEx {
    alias: String,
    #[allow(dead_code)] // kept for diagnostics
    name: String,
    rel: Rel,
    schema: SchemaRef,
    est_rows: usize,
    /// For each visible column: offset within the item's single backing
    /// record, when the column can be served by a record pointer.
    prov_offsets: Vec<Option<usize>>,
    /// Whether the item can yield a `RecordRef` per row at all.
    has_prov: bool,
}

fn make_item(env: &dyn Env, tref: &crate::ast::TableRef) -> Result<FromItemEx> {
    let rel = env
        .relation(&tref.table)
        .ok_or_else(|| SqlError::analyze(format!("unknown table `{}`", tref.table)))?;
    if let Rel::Standard(_) = rel {
        env.before_read(&tref.table)?;
    }
    let schema = rel.schema();
    let est_rows = rel.len();
    let (prov_offsets, has_prov) = match &rel {
        Rel::Standard(_) => ((0..schema.arity()).map(Some).collect(), true),
        Rel::Temp(t) => {
            let map = t.static_map();
            if map.n_ptrs() == 1 {
                (
                    map.sources()
                        .iter()
                        .map(|s| match s {
                            ColumnSource::Pointer { offset, .. } => Some(*offset),
                            ColumnSource::Slot(_) => None,
                        })
                        .collect(),
                    true,
                )
            } else {
                // Zero or multiple backing records per tuple: no single
                // provenance pointer; downstream bound tables materialize.
                (vec![None; schema.arity()], false)
            }
        }
    };
    Ok(FromItemEx {
        alias: tref.alias.to_ascii_lowercase(),
        name: tref.table.to_ascii_lowercase(),
        rel,
        schema,
        est_rows,
        prov_offsets,
        has_prov,
    })
}

/// One row mid-join: concatenated values plus per-item provenance.
#[derive(Clone)]
struct JRow {
    vals: Vec<Value>,
    provs: Vec<Option<RecordRef>>,
}

fn build_layout(items: &[FromItemEx]) -> Layout {
    let mut cols = Vec::new();
    for (i, item) in items.iter().enumerate() {
        for (j, c) in item.schema.columns().iter().enumerate() {
            cols.push(LayoutCol {
                qualifier: item.alias.clone(),
                name: c.name.clone(),
                dtype: c.dtype,
                item: i,
                item_offset: j,
            });
        }
    }
    Layout { cols }
}

fn split_conjuncts(e: &Expr, out: &mut Vec<Expr>) {
    if let Expr::Binary {
        op: BinOp::And,
        left,
        right,
    } = e
    {
        split_conjuncts(left, out);
        split_conjuncts(right, out);
    } else {
        out.push(e.clone());
    }
}

fn max_col_of(b: &BExpr) -> Option<usize> {
    match b {
        BExpr::Col(i) => Some(*i),
        BExpr::IsNull { expr, .. } => max_col_of(expr),
        BExpr::Neg(e) | BExpr::Not(e) => max_col_of(e),
        BExpr::Binary { left, right, .. } => match (max_col_of(left), max_col_of(right)) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        },
        BExpr::Call { args, .. } => args.iter().filter_map(max_col_of).max(),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// The join pipeline
// ---------------------------------------------------------------------------

/// Output of the join phase: the joined rows, the join-order layout, and the
/// items in join order.
struct Joined {
    items: Vec<FromItemEx>,
    layout: Layout,
    rows: Vec<JRow>,
}

fn scan_item(env: &dyn Env, item: &FromItemEx) -> Vec<(Vec<Value>, Option<RecordRef>)> {
    let m = env.meter();
    m.charge(Op::OpenCursor, 1);
    let out = match &item.rel {
        Rel::Standard(t) => {
            let t = t.read();
            let mut v = Vec::with_capacity(t.len());
            for (_, rec) in t.scan() {
                v.push((rec.values().to_vec(), Some(rec.clone())));
            }
            m.charge(Op::FetchCursor, v.len() as u64);
            v
        }
        Rel::Temp(t) => {
            let mut v = Vec::with_capacity(t.len());
            for i in 0..t.len() {
                let rec = if item.has_prov && !t.tuples()[i].ptrs().is_empty() {
                    Some(t.tuples()[i].ptrs()[0].clone())
                } else {
                    None
                };
                v.push((t.row_values(i), rec));
            }
            m.charge(Op::TempTupleRead, v.len() as u64);
            v
        }
    };
    m.charge(Op::CloseCursor, 1);
    out
}

fn probe_item(
    env: &dyn Env,
    item: &FromItemEx,
    column: usize,
    key: &Value,
) -> Option<Vec<(Vec<Value>, Option<RecordRef>)>> {
    let Rel::Standard(t) = &item.rel else {
        return None;
    };
    let t = t.read();
    let ids = t.index_lookup(column, key)?;
    let m = env.meter();
    m.charge(Op::IndexProbe, 1);
    m.charge(Op::FetchCursor, ids.len() as u64);
    Some(
        ids.into_iter()
            .filter_map(|id| t.get(id).ok())
            .map(|rec| (rec.values().to_vec(), Some(rec)))
            .collect(),
    )
}

fn item_has_index(item: &FromItemEx, column: usize) -> bool {
    match &item.rel {
        Rel::Standard(t) => t.read().index_on(column).is_some(),
        Rel::Temp(_) => false,
    }
}

/// Try to interpret a conjunct as `col = other-side` usable as an index
/// probe into `target` (an item index in join order) given that all other
/// referenced columns lie within `prefix_len`.
struct ProbePlan {
    /// Column offset within the target item to probe.
    target_col: usize,
    /// Key expression over the already-joined prefix row.
    key: BExpr,
}

fn join_all(env: &dyn Env, query: &Query, params: &[Value]) -> Result<Joined> {
    // Resolve FROM items in declaration order first.
    let mut declared = Vec::with_capacity(query.from.len());
    for tref in &query.from {
        declared.push(make_item(env, tref)?);
    }
    if declared.is_empty() {
        return Err(SqlError::analyze("query has no FROM items"));
    }
    // Duplicate alias check.
    for (i, a) in declared.iter().enumerate() {
        if declared[..i].iter().any(|b| b.alias == a.alias) {
            return Err(SqlError::analyze(format!(
                "duplicate table alias `{}`",
                a.alias
            )));
        }
    }

    // Classify conjuncts using a layout over declaration order (names only;
    // the BExpr binding happens later against join order).
    let decl_layout = build_layout(&declared);
    let mut conjuncts = Vec::new();
    if let Some(w) = &query.where_clause {
        split_conjuncts(w, &mut conjuncts);
    }
    // Which declared items does each conjunct touch?
    let mut conj_items: Vec<Vec<usize>> = Vec::with_capacity(conjuncts.len());
    for c in &conjuncts {
        let mut items = Vec::new();
        let mut err = None;
        c.visit_columns(&mut |q, n| {
            match decl_layout.resolve(q, n) {
                Ok(i) => {
                    let it = decl_layout.cols[i].item;
                    if !items.contains(&it) {
                        items.push(it);
                    }
                }
                Err(e) => err = Some(e),
            };
        });
        if let Some(e) = err {
            return Err(e);
        }
        conj_items.push(items);
    }

    // Greedy join-order selection over declared item indices.
    let n = declared.len();
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut bound = vec![false; n];
    // Seed: smallest estimated input.
    let seed = (0..n).min_by_key(|&i| declared[i].est_rows).unwrap();
    order.push(seed);
    bound[seed] = true;
    while order.len() < n {
        // Candidates joined to the bound set by an equi-join conjunct.
        let mut best: Option<(usize, bool, usize)> = None; // (item, has_index, rows)
        for (ci, c) in conjuncts.iter().enumerate() {
            let items = &conj_items[ci];
            if items.len() != 2 {
                continue;
            }
            let (a, b) = (items[0], items[1]);
            let target = match (bound[a], bound[b]) {
                (true, false) => b,
                (false, true) => a,
                _ => continue,
            };
            // Does the conjunct give the target an indexable column?
            let has_index = equi_join_target_col(c, &decl_layout, target)
                .map(|col| item_has_index(&declared[target], col))
                .unwrap_or(false);
            let rows = declared[target].est_rows;
            let better = match &best {
                None => true,
                Some((_, bi, br)) => (has_index, std::cmp::Reverse(rows)) > (*bi, std::cmp::Reverse(*br)),
            };
            if better {
                best = Some((target, has_index, rows));
            }
        }
        let next = match best {
            Some((t, _, _)) => t,
            // No join predicate reaches any unbound item: cartesian step
            // with the smallest remaining input.
            None => (0..n)
                .filter(|&i| !bound[i])
                .min_by_key(|&i| declared[i].est_rows)
                .unwrap(),
        };
        order.push(next);
        bound[next] = true;
    }

    // Re-arrange items into join order and build the final layout.
    let mut items: Vec<FromItemEx> = Vec::with_capacity(n);
    let mut decl_to_join = vec![0usize; n];
    for (pos, &d) in order.iter().enumerate() {
        decl_to_join[d] = pos;
    }
    // `order` holds declared indices in join order; move them.
    let mut opt: Vec<Option<FromItemEx>> = declared.into_iter().map(Some).collect();
    for &d in &order {
        items.push(opt[d].take().expect("each item moved once"));
    }
    let layout = build_layout(&items);
    let prefix_len: Vec<usize> = {
        let mut v = Vec::with_capacity(n + 1);
        let mut acc = 0;
        v.push(0);
        for it in &items {
            acc += it.schema.arity();
            v.push(acc);
        }
        v
    };

    // Bind all conjuncts against the join-order layout.
    let fns = |name: &str| env.scalar_fn(name);
    struct BoundConj {
        expr: BExpr,
        max_col: usize,
        applied: bool,
        ast: Expr,
    }
    let mut bconj = Vec::with_capacity(conjuncts.len());
    for c in &conjuncts {
        let b = bind_expr(c, &layout, &fns)?;
        bconj.push(BoundConj {
            max_col: max_col_of(&b).unwrap_or(0),
            expr: b,
            applied: false,
            ast: c.clone(),
        });
    }

    // Seed access path: prefer an index probe when some conjunct pins an
    // indexed seed column to a constant (`where symbol = ?` point lookups
    // must not scan the table).
    let m = env.meter();
    let mut seed_rows: Option<Vec<(Vec<Value>, Option<RecordRef>)>> = None;
    for bc in bconj.iter_mut() {
        if bc.applied {
            continue;
        }
        if let Some(plan) = probe_plan_for(&bc.ast, &layout, 0, 0, &fns)? {
            if item_has_index(&items[0], plan.target_col) {
                let key = plan.key.eval(&[], params)?;
                if let Some(hits) = probe_item(env, &items[0], plan.target_col, &key) {
                    bc.applied = true;
                    seed_rows = Some(hits);
                    break;
                }
            }
        }
    }
    let seed_rows = match seed_rows {
        Some(r) => r,
        None => scan_item(env, &items[0]),
    };
    let mut rows: Vec<JRow> = seed_rows
        .into_iter()
        .map(|(vals, prov)| {
            let mut provs = vec![None; n];
            provs[0] = prov;
            JRow { vals, provs }
        })
        .collect();

    // Apply conjuncts that fit the first prefix, then join remaining items.
    let apply_fitting = |rows: &mut Vec<JRow>,
                             bconj: &mut Vec<BoundConj>,
                             upto: usize|
     -> Result<()> {
        for bc in bconj.iter_mut() {
            if !bc.applied && bc.max_col < upto {
                bc.applied = true;
                let mut kept = Vec::with_capacity(rows.len());
                for r in rows.drain(..) {
                    m.charge(Op::EvalExpr, 1);
                    if bc.expr.eval_bool(&r.vals, params)? {
                        kept.push(r);
                    }
                }
                *rows = kept;
            }
        }
        Ok(())
    };
    apply_fitting(&mut rows, &mut bconj, prefix_len[1])?;

    for k in 1..n {
        let item = &items[k];
        // Find an index-probe plan: an unapplied equi-join conjunct whose
        // target is this item, key side within the prefix, and an index on
        // the target column.
        let mut probe: Option<(usize, ProbePlan)> = None;
        for (ci, bc) in bconj.iter().enumerate() {
            if bc.applied {
                continue;
            }
            if let Some(plan) = probe_plan_for(&bc.ast, &layout, k, prefix_len[k], &fns)? {
                if item_has_index(item, plan.target_col) {
                    probe = Some((ci, plan));
                    break;
                }
            }
        }

        let item_arity = item.schema.arity();
        let mut next_rows = Vec::new();
        match probe {
            Some((ci, plan)) => {
                bconj[ci].applied = true;
                for r in &rows {
                    m.charge(Op::EvalExpr, 1);
                    let key = plan.key.eval(&r.vals, params)?;
                    if let Some(matches) = probe_item(env, item, plan.target_col, &key) {
                        for (vals, prov) in matches {
                            let mut nr = r.clone();
                            nr.vals.extend(vals);
                            nr.provs[k] = prov;
                            next_rows.push(nr);
                        }
                    }
                }
            }
            None => {
                // Nested-loop join: materialize the inner once.
                let inner = scan_item(env, item);
                for r in &rows {
                    for (vals, prov) in &inner {
                        let mut nr = r.clone();
                        nr.vals.extend(vals.iter().cloned());
                        nr.provs[k] = prov.clone();
                        next_rows.push(nr);
                    }
                }
            }
        }
        let _ = item_arity;
        rows = next_rows;
        apply_fitting(&mut rows, &mut bconj, prefix_len[k + 1])?;
    }

    // All conjuncts must have been applied by now.
    debug_assert!(bconj.iter().all(|b| b.applied));

    Ok(Joined {
        items,
        layout,
        rows,
    })
}

/// If `e` is `colA = colB` (or `col = const/param expr`) where the column on
/// one side belongs to item `target` (in join order) and the other side
/// references only columns below `prefix`, return the probe plan.
fn probe_plan_for(
    e: &Expr,
    layout: &Layout,
    target: usize,
    prefix: usize,
    fns: &dyn Fn(&str) -> Option<ScalarFn>,
) -> Result<Option<ProbePlan>> {
    let Expr::Binary {
        op: BinOp::Eq,
        left,
        right,
    } = e
    else {
        return Ok(None);
    };
    for (a, b) in [(left, right), (right, left)] {
        if let Expr::Column { qualifier, name } = a.as_ref() {
            if let Ok(idx) = layout.resolve(qualifier, name) {
                let lc = &layout.cols[idx];
                if lc.item == target {
                    // The other side must bind within the prefix.
                    let key = match bind_expr(b, layout, fns) {
                        Ok(k) => k,
                        Err(_) => continue,
                    };
                    if max_col_of(&key).map(|c| c < prefix).unwrap_or(true) {
                        return Ok(Some(ProbePlan {
                            target_col: lc.item_offset,
                            key,
                        }));
                    }
                }
            }
        }
    }
    Ok(None)
}

/// Extract the target-side column offset of an equi-join conjunct, if any.
fn equi_join_target_col(e: &Expr, layout: &Layout, target: usize) -> Option<usize> {
    let Expr::Binary {
        op: BinOp::Eq,
        left,
        right,
    } = e
    else {
        return None;
    };
    for side in [left, right] {
        if let Expr::Column { qualifier, name } = side.as_ref() {
            if let Ok(idx) = layout.resolve(qualifier, name) {
                if layout.cols[idx].item == target {
                    return Some(layout.cols[idx].item_offset);
                }
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Projection / aggregation
// ---------------------------------------------------------------------------

/// A select item after binding.
enum OutCol {
    /// Direct column passthrough: flat offset. Eligible for pointer-column
    /// output in bound tables.
    Passthrough { idx: usize, name: String },
    /// Computed expression.
    Computed { expr: BExpr, name: String, dtype: DataType },
}

fn expand_items(q: &Query, layout: &Layout) -> Result<Vec<(Expr, Option<String>)>> {
    let mut out = Vec::new();
    for item in &q.items {
        match item {
            SelectItem::Wildcard => {
                for c in &layout.cols {
                    out.push((
                        Expr::Column {
                            qualifier: Some(c.qualifier.clone()),
                            name: c.name.clone(),
                        },
                        Some(c.name.clone()),
                    ));
                }
            }
            SelectItem::QualifiedWildcard(q) => {
                let ql = q.to_ascii_lowercase();
                let mut any = false;
                for c in layout.cols.iter().filter(|c| c.qualifier == ql) {
                    any = true;
                    out.push((
                        Expr::Column {
                            qualifier: Some(c.qualifier.clone()),
                            name: c.name.clone(),
                        },
                        Some(c.name.clone()),
                    ));
                }
                if !any {
                    return Err(SqlError::analyze(format!("unknown alias `{q}` in `{q}.*`")));
                }
            }
            SelectItem::Expr { expr, alias } => out.push((expr.clone(), alias.clone())),
        }
    }
    Ok(out)
}

fn default_name(e: &Expr, i: usize) -> String {
    match e {
        Expr::Column { name, .. } => name.clone(),
        Expr::Aggregate { func, .. } => func.name().to_string(),
        _ => format!("col{i}"),
    }
}

fn bind_output(
    q: &Query,
    layout: &Layout,
    fns: &dyn Fn(&str) -> Option<ScalarFn>,
) -> Result<Vec<OutCol>> {
    let items = expand_items(q, layout)?;
    let mut out = Vec::with_capacity(items.len());
    for (i, (e, alias)) in items.iter().enumerate() {
        let name = alias.clone().unwrap_or_else(|| default_name(e, i));
        let b = bind_expr(e, layout, fns)?;
        match b {
            BExpr::Col(idx) => out.push(OutCol::Passthrough { idx, name }),
            other => {
                let dtype = other.dtype(layout);
                out.push(OutCol::Computed {
                    expr: other,
                    name,
                    dtype,
                })
            }
        }
    }
    Ok(out)
}

fn output_schema(cols: &[OutCol], layout: &Layout) -> Result<SchemaRef> {
    let mut sc = Vec::new();
    for c in cols {
        match c {
            OutCol::Passthrough { idx, name } => {
                sc.push((name.clone(), layout.cols[*idx].dtype));
            }
            OutCol::Computed { name, dtype, .. } => sc.push((name.clone(), *dtype)),
        }
    }
    let columns = sc
        .into_iter()
        .map(|(n, t)| strip_storage::Column::new(n, t))
        .collect();
    Ok(Schema::new(columns).map(Schema::into_ref)?)
}

/// Aggregate accumulator.
enum AggState {
    Sum { acc: f64, any: bool, int: bool, iacc: i64 },
    Count(i64),
    Avg { sum: f64, n: i64 },
    Min(Option<Value>),
    Max(Option<Value>),
    /// Welford accumulator for var/stddev (population).
    Var { n: i64, mean: f64, m2: f64, stddev: bool },
}

impl AggState {
    fn new(func: AggFunc, int_input: bool) -> AggState {
        match func {
            AggFunc::Sum => AggState::Sum {
                acc: 0.0,
                any: false,
                int: int_input,
                iacc: 0,
            },
            AggFunc::Count => AggState::Count(0),
            AggFunc::Avg => AggState::Avg { sum: 0.0, n: 0 },
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
            AggFunc::Var => AggState::Var {
                n: 0,
                mean: 0.0,
                m2: 0.0,
                stddev: false,
            },
            AggFunc::Stddev => AggState::Var {
                n: 0,
                mean: 0.0,
                m2: 0.0,
                stddev: true,
            },
        }
    }

    fn update(&mut self, v: Option<&Value>) -> Result<()> {
        match self {
            AggState::Count(n) => {
                // count(*) gets None and counts every row; count(expr)
                // skips nulls per SQL.
                match v {
                    Some(Value::Null) => {}
                    _ => *n += 1,
                }
            }
            AggState::Sum {
                acc,
                any,
                int,
                iacc,
            } => {
                if let Some(v) = v {
                    if v.is_null() {
                        return Ok(());
                    }
                    *any = true;
                    match v {
                        Value::Int(i) if *int => {
                            *iacc = iacc
                                .checked_add(*i)
                                .ok_or_else(|| SqlError::exec("sum overflow"))?
                        }
                        _ => {
                            *int = false;
                            *acc += v
                                .as_f64()
                                .ok_or_else(|| SqlError::exec("sum of non-numeric value"))?;
                        }
                    }
                    if !*int {
                        // Keep the float accumulator in sync after a switch.
                    }
                }
            }
            AggState::Avg { sum, n } => {
                if let Some(v) = v {
                    if v.is_null() {
                        return Ok(());
                    }
                    *sum += v
                        .as_f64()
                        .ok_or_else(|| SqlError::exec("avg of non-numeric value"))?;
                    *n += 1;
                }
            }
            AggState::Min(cur) => {
                if let Some(v) = v {
                    if v.is_null() {
                        return Ok(());
                    }
                    if cur.as_ref().map(|c| v < c).unwrap_or(true) {
                        *cur = Some(v.clone());
                    }
                }
            }
            AggState::Max(cur) => {
                if let Some(v) = v {
                    if v.is_null() {
                        return Ok(());
                    }
                    if cur.as_ref().map(|c| v > c).unwrap_or(true) {
                        *cur = Some(v.clone());
                    }
                }
            }
            AggState::Var { n, mean, m2, .. } => {
                if let Some(v) = v {
                    if v.is_null() {
                        return Ok(());
                    }
                    let x = v
                        .as_f64()
                        .ok_or_else(|| SqlError::exec("var/stddev of non-numeric value"))?;
                    // Welford's online update.
                    *n += 1;
                    let d = x - *mean;
                    *mean += d / *n as f64;
                    *m2 += d * (x - *mean);
                }
            }
        }
        Ok(())
    }

    fn finish(self) -> Value {
        match self {
            AggState::Sum {
                acc,
                any,
                int,
                iacc,
            } => {
                if !any {
                    Value::Null
                } else if int {
                    Value::Int(iacc)
                } else {
                    Value::Float(acc + iacc as f64)
                }
            }
            AggState::Count(n) => Value::Int(n),
            AggState::Avg { sum, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / n as f64)
                }
            }
            AggState::Min(v) | AggState::Max(v) => v.unwrap_or(Value::Null),
            AggState::Var { n, m2, stddev, .. } => {
                if n == 0 {
                    Value::Null
                } else {
                    let var = m2 / n as f64;
                    Value::Float(if stddev { var.sqrt() } else { var })
                }
            }
        }
    }
}

/// A select item in a grouped query, rewritten over the "outer row"
/// `[group keys..., aggregate results...]`.
enum GroupedOut {
    /// Index into the outer row.
    OuterCol { idx: usize, name: String, dtype: DataType },
    /// Expression over outer-row offsets.
    Expr { expr: BExpr, name: String, dtype: DataType },
}

/// Execute a grouped query over joined rows. Returns (schema, rows).
#[allow(clippy::type_complexity)]
fn run_grouped(
    env: &dyn Env,
    q: &Query,
    joined: &Joined,
    params: &[Value],
) -> Result<(SchemaRef, Vec<Vec<Value>>)> {
    let layout = &joined.layout;
    let fns = |name: &str| env.scalar_fn(name);

    // Bind the group-key expressions.
    let mut key_exprs = Vec::with_capacity(q.group_by.len());
    for g in &q.group_by {
        key_exprs.push(bind_expr(g, layout, &fns)?);
    }

    // Collect aggregates and rewrite select items over the outer row.
    // Outer row layout: [k0..k_{m-1}, a0..a_{p-1}].
    let m = key_exprs.len();
    let mut aggs: Vec<(AggFunc, Option<BExpr>, bool)> = Vec::new(); // (func, arg, int_input)
    let items = expand_items(q, layout)?;
    let mut outs: Vec<GroupedOut> = Vec::with_capacity(items.len());

    // Rewrites an AST expression into a BExpr over the outer row.
    fn rewrite(
        e: &Expr,
        group_by: &[Expr],
        layout: &Layout,
        fns: &dyn Fn(&str) -> Option<ScalarFn>,
        aggs: &mut Vec<(AggFunc, Option<BExpr>, bool)>,
        m: usize,
    ) -> Result<BExpr> {
        // A subtree that syntactically equals a group-by expression reads
        // the corresponding key slot.
        if let Some(k) = group_by.iter().position(|g| g == e) {
            return Ok(BExpr::Col(k));
        }
        match e {
            Expr::Aggregate { func, arg } => {
                let (bound, int_input) = match arg {
                    Some(a) => {
                        let b = bind_expr(a, layout, fns)?;
                        let int_input = b.dtype(layout) == DataType::Int;
                        (Some(b), int_input)
                    }
                    None => (None, false),
                };
                aggs.push((*func, bound, int_input));
                Ok(BExpr::Col(m + aggs.len() - 1))
            }
            Expr::IntLit(i) => Ok(BExpr::Lit(Value::Int(*i))),
            Expr::FloatLit(f) => Ok(BExpr::Lit(Value::Float(*f))),
            Expr::StrLit(s) => Ok(BExpr::Lit(Value::str(s))),
            Expr::BoolLit(b) => Ok(BExpr::Lit(Value::Bool(*b))),
            Expr::Param(i) => Ok(BExpr::Param(*i)),
            Expr::NullLit => Ok(BExpr::Lit(Value::Null)),
            Expr::IsNull { expr, negated } => Ok(BExpr::IsNull {
                expr: Box::new(rewrite(expr, group_by, layout, fns, aggs, m)?),
                negated: *negated,
            }),
            Expr::Neg(inner) => Ok(BExpr::Neg(Box::new(rewrite(
                inner, group_by, layout, fns, aggs, m,
            )?))),
            Expr::Not(inner) => Ok(BExpr::Not(Box::new(rewrite(
                inner, group_by, layout, fns, aggs, m,
            )?))),
            Expr::Binary { op, left, right } => Ok(BExpr::Binary {
                op: *op,
                left: Box::new(rewrite(left, group_by, layout, fns, aggs, m)?),
                right: Box::new(rewrite(right, group_by, layout, fns, aggs, m)?),
            }),
            Expr::Call { name, args } => {
                let f = fns(name)
                    .ok_or_else(|| SqlError::analyze(format!("unknown function `{name}`")))?;
                Ok(BExpr::Call {
                    f,
                    args: args
                        .iter()
                        .map(|a| rewrite(a, group_by, layout, fns, aggs, m))
                        .collect::<Result<_>>()?,
                })
            }
            Expr::Column { qualifier, name } => Err(SqlError::analyze(format!(
                "column `{}` must appear in GROUP BY or inside an aggregate",
                match qualifier {
                    Some(q) => format!("{q}.{name}"),
                    None => name.clone(),
                }
            ))),
        }
    }

    for (i, (e, alias)) in items.iter().enumerate() {
        let name = alias.clone().unwrap_or_else(|| default_name(e, i));
        let before = aggs.len();
        let b = rewrite(e, &q.group_by, layout, &fns, &mut aggs, m)?;
        let dtype = match &b {
            BExpr::Col(k) if *k < m => key_exprs[*k].dtype(layout),
            BExpr::Col(k) => {
                // Pure aggregate reference.
                let (func, arg, int_input) = &aggs[*k - m];
                agg_dtype(*func, arg.as_ref().map(|a| a.dtype(layout)), *int_input)
            }
            other => {
                // A computed expression over keys/aggregates; infer
                // conservatively as float unless clearly bool/int.
                let _ = before;
                computed_grouped_dtype(other)
            }
        };
        match b {
            BExpr::Col(idx) => outs.push(GroupedOut::OuterCol { idx, name, dtype }),
            expr => outs.push(GroupedOut::Expr { expr, name, dtype }),
        }
    }

    // HAVING binds through the same rewrite machinery (it may reference
    // aggregates, which register additional accumulator slots); it must be
    // rewritten BEFORE the aggregation pass so its states are computed.
    let having = match &q.having {
        Some(h) => Some(rewrite(h, &q.group_by, layout, &fns, &mut aggs, m)?),
        None => None,
    };

    // Hash aggregation.
    let meter = env.meter();
    let mut groups: HashMap<Vec<Value>, Vec<AggState>> = HashMap::new();
    let mut group_order: Vec<Vec<Value>> = Vec::new();
    for r in &joined.rows {
        meter.charge(Op::AggRow, 1);
        let mut key = Vec::with_capacity(m);
        for ke in &key_exprs {
            key.push(ke.eval(&r.vals, params)?);
        }
        let states = match groups.get_mut(&key) {
            Some(s) => s,
            None => {
                group_order.push(key.clone());
                groups.entry(key.clone()).or_insert_with(|| {
                    aggs.iter()
                        .map(|(f, _, int)| AggState::new(*f, *int))
                        .collect()
                });
                groups.get_mut(&key).expect("just inserted")
            }
        };
        for (st, (_, arg, _)) in states.iter_mut().zip(&aggs) {
            let v = match arg {
                Some(a) => Some(a.eval(&r.vals, params)?),
                None => None,
            };
            st.update(v.as_ref())?;
        }
    }

    // Global aggregate without GROUP BY over empty input still yields one row.
    if m == 0 && group_order.is_empty() {
        group_order.push(Vec::new());
        groups.insert(
            Vec::new(),
            aggs.iter()
                .map(|(f, _, int)| AggState::new(*f, *int))
                .collect(),
        );
    }

    // Emit one output row per group in first-seen order.
    let mut out_rows = Vec::with_capacity(group_order.len());
    for key in group_order {
        let states = groups.remove(&key).expect("group present");
        let mut outer: Vec<Value> = key;
        outer.extend(states.into_iter().map(AggState::finish));
        if let Some(h) = &having {
            meter.charge(Op::EvalExpr, 1);
            if !h.eval_bool(&outer, params)? {
                continue;
            }
        }
        let mut row = Vec::with_capacity(outs.len());
        for o in &outs {
            match o {
                GroupedOut::OuterCol { idx, .. } => row.push(outer[*idx].clone()),
                GroupedOut::Expr { expr, .. } => row.push(expr.eval(&outer, params)?),
            }
        }
        out_rows.push(row);
    }

    let columns = outs
        .iter()
        .map(|o| match o {
            GroupedOut::OuterCol { name, dtype, .. } => {
                strip_storage::Column::new(name.clone(), *dtype)
            }
            GroupedOut::Expr { name, dtype, .. } => {
                strip_storage::Column::new(name.clone(), *dtype)
            }
        })
        .collect();
    let schema = Schema::new(columns)?.into_ref();
    Ok((schema, out_rows))
}

fn agg_dtype(func: AggFunc, arg: Option<DataType>, int_input: bool) -> DataType {
    match func {
        AggFunc::Count => DataType::Int,
        AggFunc::Sum => {
            if int_input {
                DataType::Int
            } else {
                DataType::Float
            }
        }
        AggFunc::Avg | AggFunc::Var | AggFunc::Stddev => DataType::Float,
        AggFunc::Min | AggFunc::Max => arg.unwrap_or(DataType::Float),
    }
}

fn computed_grouped_dtype(e: &BExpr) -> DataType {
    match e {
        BExpr::Lit(v) => v.data_type().unwrap_or(DataType::Float),
        BExpr::Not(_) => DataType::Bool,
        BExpr::Binary { op, .. } => match op {
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => DataType::Float,
            _ => DataType::Bool,
        },
        BExpr::Call { f, .. } => f.returns,
        _ => DataType::Float,
    }
}

// ---------------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------------

/// `SELECT DISTINCT`: deduplicate rows preserving first-occurrence order.
fn dedup_rows(rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    let mut seen = std::collections::HashSet::with_capacity(rows.len());
    let mut out = Vec::with_capacity(rows.len());
    for r in rows {
        if seen.insert(r.clone()) {
            out.push(r);
        }
    }
    out
}

/// Layout over a flat output schema (no qualifiers). ORDER BY falls back to
/// this when keys don't resolve against the input layout; qualified names
/// are matched by ignoring the qualifier.
fn output_layout(schema: &SchemaRef) -> Layout {
    Layout {
        cols: schema
            .columns()
            .iter()
            .enumerate()
            .map(|(i, c)| LayoutCol {
                qualifier: String::new(),
                name: c.name.clone(),
                dtype: c.dtype,
                item: 0,
                item_offset: i,
            })
            .collect(),
    }
}

/// Strip qualifiers from column references (used when binding ORDER BY
/// against the unqualified output schema).
fn strip_qualifiers(e: &Expr) -> Expr {
    match e {
        Expr::Column { name, .. } => Expr::Column {
            qualifier: None,
            name: name.clone(),
        },
        Expr::Neg(i) => Expr::Neg(Box::new(strip_qualifiers(i))),
        Expr::Not(i) => Expr::Not(Box::new(strip_qualifiers(i))),
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(strip_qualifiers(expr)),
            negated: *negated,
        },
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(strip_qualifiers(left)),
            right: Box::new(strip_qualifiers(right)),
        },
        Expr::Call { name, args } => Expr::Call {
            name: name.clone(),
            args: args.iter().map(strip_qualifiers).collect(),
        },
        Expr::Aggregate { func, arg } => Expr::Aggregate {
            func: *func,
            arg: arg.as_ref().map(|a| Box::new(strip_qualifiers(a))),
        },
        other => other.clone(),
    }
}

/// Sort rows by bound key expressions.
fn sort_rows(
    keys: &[(BExpr, bool)],
    rows: &mut [Vec<Value>],
    params: &[Value],
) -> Result<()> {
    let mut err = None;
    rows.sort_by(|a, b| {
        for (k, desc) in keys {
            let (va, vb) = match (k.eval(a, params), k.eval(b, params)) {
                (Ok(x), Ok(y)) => (x, y),
                (Err(e), _) | (_, Err(e)) => {
                    err.get_or_insert(e);
                    return std::cmp::Ordering::Equal;
                }
            };
            let ord = va.cmp(&vb);
            let ord = if *desc { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    match err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Apply ORDER BY / LIMIT to materialized output rows, binding keys against
/// the output schema (qualifiers ignored).
fn order_and_limit(
    env: &dyn Env,
    q: &Query,
    schema: &SchemaRef,
    mut rows: Vec<Vec<Value>>,
    params: &[Value],
) -> Result<Vec<Vec<Value>>> {
    if !q.order_by.is_empty() {
        let layout = output_layout(schema);
        let fns = |name: &str| env.scalar_fn(name);
        let mut keys = Vec::new();
        for (e, desc) in &q.order_by {
            keys.push((bind_expr(&strip_qualifiers(e), &layout, &fns)?, *desc));
        }
        sort_rows(&keys, &mut rows, params)?;
    }
    if let Some(l) = q.limit {
        rows.truncate(l as usize);
    }
    Ok(rows)
}

/// Execute a `SELECT`, returning a materialized result set.
pub fn execute_query(env: &dyn Env, q: &Query, params: &[Value]) -> Result<ResultSet> {
    let mut joined = join_all(env, q, params)?;
    if !q.group_by.is_empty() || q.items.iter().any(|i| match i {
        SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
        _ => false,
    }) {
        let (schema, rows) = run_grouped(env, q, &joined, params)?;
        let rows = if q.distinct { dedup_rows(rows) } else { rows };
        let rows = order_and_limit(env, q, &schema, rows, params)?;
        return Ok(ResultSet { schema, rows });
    }
    let fns = |name: &str| env.scalar_fn(name);

    // For non-grouped queries, ORDER BY preferentially binds against the
    // *input* layout (SQL permits ordering by non-projected columns, e.g.
    // `select new_price from ... order by new.execute_order`); if that
    // fails, it falls back to the output schema after projection.
    let mut sorted_pre_projection = false;
    if !q.order_by.is_empty() {
        let bound: Result<Vec<(BExpr, bool)>> = q
            .order_by
            .iter()
            .map(|(e, d)| bind_expr(e, &joined.layout, &fns).map(|b| (b, *d)))
            .collect();
        if let Ok(keys) = bound {
            let mut err = None;
            joined.rows.sort_by(|a, b| {
                for (k, desc) in &keys {
                    let (va, vb) = match (k.eval(&a.vals, params), k.eval(&b.vals, params)) {
                        (Ok(x), Ok(y)) => (x, y),
                        (Err(e), _) | (_, Err(e)) => {
                            err.get_or_insert(e);
                            return std::cmp::Ordering::Equal;
                        }
                    };
                    let ord = va.cmp(&vb);
                    let ord = if *desc { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            if let Some(e) = err {
                return Err(e);
            }
            sorted_pre_projection = true;
        }
    }

    let outs = bind_output(q, &joined.layout, &fns)?;
    let schema = output_schema(&outs, &joined.layout)?;
    let meter = env.meter();
    let mut rows = Vec::with_capacity(joined.rows.len());
    for r in &joined.rows {
        meter.charge(Op::EvalExpr, 1);
        let mut row = Vec::with_capacity(outs.len());
        for o in &outs {
            match o {
                OutCol::Passthrough { idx, .. } => row.push(r.vals[*idx].clone()),
                OutCol::Computed { expr, .. } => row.push(expr.eval(&r.vals, params)?),
            }
        }
        rows.push(row);
    }
    let rows = if q.distinct { dedup_rows(rows) } else { rows };
    let rows = if sorted_pre_projection {
        if let Some(l) = q.limit {
            let mut rows = rows;
            rows.truncate(l as usize);
            rows
        } else {
            rows
        }
    } else {
        order_and_limit(env, q, &schema, rows, params)?
    };
    Ok(ResultSet { schema, rows })
}

/// Execute a `SELECT` and bind its result as a named temporary table using
/// the §6.1 pointer scheme where possible: passthrough columns backed by a
/// provenance record become pointer columns; computed columns become slots.
pub fn execute_query_bound(
    env: &dyn Env,
    q: &Query,
    params: &[Value],
    bind_name: &str,
) -> Result<TempTable> {
    // Grouped/aggregate results are computed values: fully materialized.
    let grouped = !q.group_by.is_empty()
        || q.items.iter().any(|i| match i {
            SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
            _ => false,
        });
    if grouped || !q.order_by.is_empty() || q.limit.is_some() {
        let rs = execute_query(env, q, params)?;
        let mut t = TempTable::materialized(bind_name, rs.schema.clone());
        let meter = env.meter();
        for row in rs.rows {
            meter.charge(Op::TempTupleBuild, 1);
            t.push_row(row)?;
        }
        return Ok(t);
    }

    let joined = join_all(env, q, params)?;
    let fns = |name: &str| env.scalar_fn(name);
    let outs = bind_output(q, &joined.layout, &fns)?;
    let schema = output_schema(&outs, &joined.layout)?;

    // Decide per output column: pointer or slot. Pointer columns require the
    // producing FROM item to supply a RecordRef on *every* row (standard
    // tables and single-pointer temp tables do).
    // Assign pointer slots per contributing item, in first-use order — the
    // paper's "one pointer to each standard tuple that contributes at least
    // one attribute".
    let mut item_ptr_slot: HashMap<usize, usize> = HashMap::new();
    let mut sources = Vec::with_capacity(outs.len());
    let mut slot_count = 0usize;
    for o in &outs {
        match o {
            OutCol::Passthrough { idx, .. } => {
                let lc = &joined.layout.cols[*idx];
                let item = &joined.items[lc.item];
                if item.has_prov {
                    if let Some(offset) = item.prov_offsets[lc.item_offset] {
                        let next = item_ptr_slot.len();
                        let ptr = *item_ptr_slot.entry(lc.item).or_insert(next);
                        sources.push(ColumnSource::Pointer { ptr, offset });
                        continue;
                    }
                }
                sources.push(ColumnSource::Slot(slot_count));
                slot_count += 1;
            }
            OutCol::Computed { .. } => {
                sources.push(ColumnSource::Slot(slot_count));
                slot_count += 1;
            }
        }
    }
    let map = StaticMap::new(sources.clone())?;
    let mut out = TempTable::new(bind_name, schema, map)?;

    // Item -> pointer slot, ordered by slot for row building.
    let mut ptr_items: Vec<usize> = vec![0; item_ptr_slot.len()];
    for (item, slot) in &item_ptr_slot {
        ptr_items[*slot] = *item;
    }

    let meter = env.meter();
    for r in &joined.rows {
        meter.charge(Op::TempTupleBuild, 1);
        let mut ptrs = Vec::with_capacity(ptr_items.len());
        for &item in &ptr_items {
            ptrs.push(
                r.provs[item]
                    .clone()
                    .ok_or_else(|| SqlError::exec("missing provenance record"))?,
            );
        }
        let mut slots = Vec::with_capacity(slot_count);
        for (o, src) in outs.iter().zip(&sources) {
            if let ColumnSource::Slot(_) = src {
                match o {
                    OutCol::Passthrough { idx, .. } => slots.push(r.vals[*idx].clone()),
                    OutCol::Computed { expr, .. } => slots.push(expr.eval(&r.vals, params)?),
                }
            }
        }
        out.push(ptrs, slots)?;
    }
    Ok(out)
}

/// Rows matched by a single-table predicate: `(RowId, current values)`.
type MatchedRows = Vec<(RowId, Vec<Value>)>;

/// Uses an index probe when the predicate contains an indexed `col = const`
/// conjunct; otherwise scans.
fn match_rows(
    env: &dyn Env,
    table_name: &str,
    where_clause: &Option<Expr>,
    params: &[Value],
) -> Result<(strip_storage::TableRef, MatchedRows)> {
    let rel = env
        .relation(table_name)
        .ok_or_else(|| SqlError::analyze(format!("unknown table `{table_name}`")))?;
    let Rel::Standard(tref) = rel else {
        return Err(SqlError::exec(format!(
            "`{table_name}` is read-only (temporary/bound table)"
        )));
    };
    // This scan feeds an UPDATE/DELETE: take the exclusive lock up front
    // so concurrent writers don't deadlock on S→X upgrades.
    env.before_write(table_name)?;
    let schema = tref.read().schema().clone();
    let layout = Layout {
        cols: schema
            .columns()
            .iter()
            .enumerate()
            .map(|(i, c)| LayoutCol {
                qualifier: table_name.to_ascii_lowercase(),
                name: c.name.clone(),
                dtype: c.dtype,
                item: 0,
                item_offset: i,
            })
            .collect(),
    };
    let fns = |name: &str| env.scalar_fn(name);
    let pred = match where_clause {
        Some(w) => Some(bind_expr(w, &layout, &fns)?),
        None => None,
    };

    // Index fast path: a conjunct `col = <const expr>` with an index on col.
    let mut probe: Option<(usize, Value)> = None;
    if let Some(w) = where_clause {
        let mut conjs = Vec::new();
        split_conjuncts(w, &mut conjs);
        for c in &conjs {
            if let Some(plan) = probe_plan_for(c, &layout, 0, 0, &fns)? {
                let t = tref.read();
                if t.index_on(plan.target_col).is_some() {
                    let key = plan.key.eval(&[], params)?;
                    probe = Some((plan.target_col, key));
                    break;
                }
            }
        }
    }

    let meter = env.meter();
    meter.charge(Op::OpenCursor, 1);
    let mut out = Vec::new();
    {
        let t = tref.read();
        let candidates: Vec<(RowId, RecordRef)> = match &probe {
            Some((col, key)) => {
                meter.charge(Op::IndexProbe, 1);
                t.index_lookup(*col, key)
                    .unwrap_or_default()
                    .into_iter()
                    .filter_map(|id| t.get(id).ok().map(|r| (id, r)))
                    .collect()
            }
            None => t.scan().map(|(id, r)| (id, r.clone())).collect(),
        };
        meter.charge(Op::FetchCursor, candidates.len() as u64);
        for (id, rec) in candidates {
            let vals = rec.values().to_vec();
            let keep = match &pred {
                Some(p) => {
                    meter.charge(Op::EvalExpr, 1);
                    p.eval_bool(&vals, params)?
                }
                None => true,
            };
            if keep {
                out.push((id, vals));
            }
        }
    }
    meter.charge(Op::CloseCursor, 1);
    Ok((tref, out))
}

/// Execute an `UPDATE`. Returns the number of rows updated.
pub fn execute_update(env: &dyn Env, u: &Update, params: &[Value]) -> Result<usize> {
    let (tref, matched) = match_rows(env, &u.table, &u.where_clause, params)?;
    let schema = tref.read().schema().clone();
    let layout = Layout {
        cols: schema
            .columns()
            .iter()
            .enumerate()
            .map(|(i, c)| LayoutCol {
                qualifier: u.table.to_ascii_lowercase(),
                name: c.name.clone(),
                dtype: c.dtype,
                item: 0,
                item_offset: i,
            })
            .collect(),
    };
    let fns = |name: &str| env.scalar_fn(name);
    let mut bound = Vec::with_capacity(u.assignments.len());
    for a in &u.assignments {
        let col = schema.index_of_ok(&a.column)?;
        bound.push((col, bind_expr(&a.expr, &layout, &fns)?, a.increment));
    }
    let count = matched.len();
    for (id, old_vals) in matched {
        let mut new_vals = old_vals.clone();
        for (col, expr, increment) in &bound {
            let v = expr.eval(&old_vals, params)?;
            new_vals[*col] = if *increment {
                // `col += expr` (paper's compute_comps functions).
                let base = old_vals[*col]
                    .as_f64()
                    .ok_or_else(|| SqlError::exec("+= on non-numeric column"))?;
                let delta = v
                    .as_f64()
                    .ok_or_else(|| SqlError::exec("+= with non-numeric value"))?;
                match schema.column(*col).dtype {
                    DataType::Int => Value::Int((base + delta) as i64),
                    _ => Value::Float(base + delta),
                }
            } else {
                v
            };
        }
        env.dml_update(&u.table, id, new_vals)?;
    }
    Ok(count)
}

/// Execute a `DELETE`. Returns the number of rows deleted.
pub fn execute_delete(env: &dyn Env, d: &Delete, params: &[Value]) -> Result<usize> {
    let (_tref, matched) = match_rows(env, &d.table, &d.where_clause, params)?;
    let count = matched.len();
    for (id, _) in matched {
        env.dml_delete(&d.table, id)?;
    }
    Ok(count)
}

/// Execute an `INSERT`. Returns the number of rows inserted.
pub fn execute_insert(env: &dyn Env, ins: &Insert, params: &[Value]) -> Result<usize> {
    let rel = env
        .relation(&ins.table)
        .ok_or_else(|| SqlError::analyze(format!("unknown table `{}`", ins.table)))?;
    let Rel::Standard(tref) = rel else {
        return Err(SqlError::exec(format!(
            "`{}` is read-only (temporary/bound table)",
            ins.table
        )));
    };
    let schema = tref.read().schema().clone();

    // Column mapping: explicit column list or full schema order.
    let positions: Vec<usize> = if ins.columns.is_empty() {
        (0..schema.arity()).collect()
    } else {
        let mut v = Vec::with_capacity(ins.columns.len());
        for c in &ins.columns {
            v.push(schema.index_of_ok(c)?);
        }
        v
    };

    let source_rows: Vec<Vec<Value>> = match &ins.source {
        InsertSource::Values(rows) => {
            let fns = |name: &str| env.scalar_fn(name);
            let empty = Layout::default();
            let mut out = Vec::with_capacity(rows.len());
            for r in rows {
                let mut vals = Vec::with_capacity(r.len());
                for e in r {
                    vals.push(bind_expr(e, &empty, &fns)?.eval(&[], params)?);
                }
                out.push(vals);
            }
            out
        }
        InsertSource::Query(q) => execute_query(env, q, params)?.rows,
    };

    let count = source_rows.len();
    for vals in source_rows {
        if vals.len() != positions.len() {
            return Err(SqlError::exec(format!(
                "INSERT provides {} values for {} columns",
                vals.len(),
                positions.len()
            )));
        }
        let mut row = vec![Value::Null; schema.arity()];
        for (pos, v) in positions.iter().zip(vals) {
            row[*pos] = v;
        }
        // Unmentioned columns are not defaulted: base tables are
        // non-nullable, so storage will reject the Null.
        env.dml_insert(&ins.table, row)?;
    }
    Ok(count)
}

