//! Physical-plan execution.
//!
//! The executor is a small volcano-style engine specialized for STRIP's
//! workload: short selections and equi-joins between base tables (indexed)
//! and tiny transition/bound tables, plus hash aggregation for the paper's
//! `group by` recompute queries.
//!
//! All planning decisions — join order, access paths, filter placement,
//! expression compilation — are made up front by [`crate::plan`]; this
//! module interprets the resulting [`PhysicalPlan`]s. A plan is immutable
//! and shareable, so prepared plans can be cached and re-executed (the
//! prepared-plan cache in `strip-core` does exactly that). Execution
//! re-resolves relations by name on every run: locks, transaction overlays,
//! and view expansion are per-execution concerns, and a relation whose
//! shape no longer matches the plan raises [`SqlError::Stale`] so callers
//! can replan.
//!
//! ## Provenance and bound tables
//!
//! While joining, the executor tracks which `RecordRef` produced each FROM
//! item's slice of the row. When a query result is bound (`bind as`), select
//! items that are plain column references resolve into **pointer** columns of
//! the output [`TempTable`] (the §6.1 scheme); computed items become
//! materialized slots.
//!
//! ## Metering
//!
//! Planning charges nothing. Read-side work is charged here (cursor
//! open/fetch, index probes, temp tuple reads/builds, expression evaluation,
//! aggregation rows). Write-side work (locks, tuple writes, index
//! maintenance) is charged by the [`Env`] implementation, which routes DML
//! through transaction bookkeeping.

use crate::ast::*;
use crate::cost::PlannerMode;
use crate::error::{Result, SqlError};
use crate::expr::ScalarFn;
use crate::plan::{
    self, Access, AggSpec, BindMode, DeletePlan, GroupedOut, InsertPlan, InsertSourcePlan,
    JoinStep, OutCol, OutputPlan, PhysicalPlan, PlannedItem, RelMeta, SelectPlan, SortPlan,
    UpdatePlan,
};
use std::collections::HashMap;
use std::sync::Arc;
use strip_storage::{
    ColumnSource, Meter, Op, RecordRef, RowId, SchemaRef, StaticMap, TempTable, Value,
};

/// Rows produced by an index probe or range scan: the materialized values
/// plus, for standard tables, the live record handle for in-place updates.
pub(crate) type IndexedRows = Vec<(Vec<Value>, Option<RecordRef>)>;

/// A readable relation.
#[derive(Clone)]
pub enum Rel {
    /// A standard table from the catalog.
    Standard(strip_storage::TableRef),
    /// A temporary table (transition table, bound table, query result).
    Temp(Arc<TempTable>),
}

impl Rel {
    /// The relation's schema.
    pub fn schema(&self) -> SchemaRef {
        match self {
            Rel::Standard(t) => t.schema().clone(),
            Rel::Temp(t) => t.schema().clone(),
        }
    }

    /// Estimated (here: exact) row count.
    pub fn len(&self) -> usize {
        match self {
            Rel::Standard(t) => t.len(),
            Rel::Temp(t) => t.len(),
        }
    }

    /// True if no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The environment a statement executes in: relation resolution, scalar
/// functions, metering, and DML hooks that route writes through transaction
/// bookkeeping (locking, logging, index maintenance).
pub trait Env {
    /// Operation meter for cost accounting.
    fn meter(&self) -> &dyn Meter;
    /// Resolve a named relation (standard, transition, or bound table).
    fn relation(&self, name: &str) -> Option<Rel>;
    /// Resolve a registered scalar function.
    fn scalar_fn(&self, name: &str) -> Option<ScalarFn>;
    /// Relation metadata for the planner: schema, size estimate, indexes.
    /// Unlike [`Env::relation`], this must be side-effect free — no locks,
    /// no meter charges, no view materialization.
    fn plan_relation(&self, name: &str) -> Option<RelMeta> {
        self.relation(name).map(|r| RelMeta::of(&r))
    }
    /// Current schema epoch (see `strip_storage::Catalog::epoch`). Prepared
    /// plans are only valid for the epoch they were built under.
    fn schema_epoch(&self) -> u64 {
        0
    }
    /// The epoch prepared plans are cached under. Defaults to the schema
    /// epoch; transaction environments additionally fold in the catalog's
    /// statistics epoch so a stats-driven plan flip (a table crossing a
    /// cardinality size class) invalidates cached physical plans rather
    /// than serving a stale operator choice.
    fn plan_epoch(&self) -> u64 {
        self.schema_epoch()
    }
    /// Which physical-plan chooser [`crate::plan::plan_query`] runs.
    fn planner_mode(&self) -> PlannerMode {
        PlannerMode::CostBased
    }
    /// Plan-quality feedback, invoked once per join-pipeline invocation
    /// with the plan's bounded shape label and its estimated vs actual
    /// joined-row cardinality. Transaction environments forward this to the
    /// observability sink; the default discards it.
    fn plan_feedback(&self, _choice: &str, _est_rows: u64, _actual_rows: u64) {}
    /// The snapshot timestamp this environment reads at, when it is a
    /// read-only snapshot transaction. `Some(ts)` routes every standard-
    /// table read through the version chains (`get_at`/`scan_at`) — the
    /// newest version with `commit_ts <= ts` — without consulting the lock
    /// manager. `None` (the default) keeps strict-2PL current reads.
    fn snapshot_ts(&self) -> Option<u64> {
        None
    }
    /// Called once before reading a standard table (S-lock acquisition).
    fn before_read(&self, _table: &str) -> Result<()> {
        Ok(())
    }
    /// Called before a statement that will write `table` reads it
    /// (X-lock acquisition up front, preventing S→X upgrade deadlocks
    /// between concurrent single-statement updates).
    fn before_write(&self, _table: &str) -> Result<()> {
        Ok(())
    }
    /// Called before an index probe reads only the rows of `table` whose
    /// `column` equals `key` — a key-granular read. Implementations take
    /// IS on the table plus S on the key resource; the default keeps
    /// table-granular behavior.
    fn before_read_keyed(&self, table: &str, _column: &str, _key: &Value) -> Result<()> {
        self.before_read(table)
    }
    /// Keyed counterpart of [`Env::before_write`]: the statement will write
    /// only rows of `table` whose `column` equals `key` (planned index
    /// probe). Implementations take IX on the table plus X on the key
    /// resource, which also phantom-protects the probe predicate against
    /// concurrent inserts of that key.
    fn before_write_keyed(&self, table: &str, _column: &str, _key: &Value) -> Result<()> {
        self.before_write(table)
    }
    /// Insert a row (write-side charging + logging inside).
    fn dml_insert(&self, table: &str, row: Vec<Value>) -> Result<()>;
    /// Update a row to new values.
    fn dml_update(&self, table: &str, id: RowId, new: Vec<Value>) -> Result<()>;
    /// Delete a row.
    fn dml_delete(&self, table: &str, id: RowId) -> Result<()>;
}

/// A fully-materialized query result.
#[derive(Debug, Clone)]
pub struct ResultSet {
    /// Output schema.
    pub schema: SchemaRef,
    /// Output rows.
    pub rows: Vec<Vec<Value>>,
}

impl ResultSet {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Value at `(row, named column)`.
    pub fn value(&self, row: usize, column: &str) -> Result<&Value> {
        let c = self.schema.index_of_ok(column)?;
        self.rows
            .get(row)
            .map(|r| &r[c])
            .ok_or_else(|| SqlError::exec(format!("row {row} out of range")))
    }

    /// First row's value in `column`, convenient for scalar lookups.
    pub fn single(&self, column: &str) -> Result<&Value> {
        if self.rows.is_empty() {
            return Err(SqlError::exec("query returned no rows"));
        }
        self.value(0, column)
    }
}

// ---------------------------------------------------------------------------
// Relation resolution at execution time
// ---------------------------------------------------------------------------

/// A FROM item resolved against the live environment for one execution.
pub(crate) struct ResolvedItem {
    pub(crate) rel: Rel,
    /// For each visible column: offset within the item's single backing
    /// record, when the column can be served by a record pointer.
    pub(crate) prov_offsets: Vec<Option<usize>>,
    /// Whether the item can yield a `RecordRef` per row at all.
    pub(crate) has_prov: bool,
}

/// `keyed` marks an item the plan reads only through equality index probes
/// (seed `IndexEq` or a join `IndexProbe`): its lock acquisition is deferred
/// to the probe sites ([`Env::before_read_keyed`] per probed key) instead of
/// taking a whole-table S lock here.
fn resolve_item(env: &dyn Env, item: &PlannedItem, keyed: bool) -> Result<ResolvedItem> {
    let rel = env
        .relation(&item.table)
        .ok_or_else(|| SqlError::analyze(format!("unknown table `{}`", item.table)))?;
    if let Rel::Standard(_) = rel {
        if !keyed {
            env.before_read(&item.table)?;
        }
    }
    let arity = rel.schema().arity();
    if arity != item.arity {
        return Err(SqlError::stale(format!(
            "table `{}` changed shape since planning",
            item.table
        )));
    }
    let (prov_offsets, has_prov) = match &rel {
        Rel::Standard(_) => ((0..arity).map(Some).collect(), true),
        Rel::Temp(t) => {
            let map = t.static_map();
            if map.n_ptrs() == 1 {
                (
                    map.sources()
                        .iter()
                        .map(|s| match s {
                            ColumnSource::Pointer { offset, .. } => Some(*offset),
                            ColumnSource::Slot(_) => None,
                        })
                        .collect(),
                    true,
                )
            } else {
                // Zero or multiple backing records per tuple: no single
                // provenance pointer; downstream bound tables materialize.
                (vec![None; arity], false)
            }
        }
    };
    Ok(ResolvedItem {
        rel,
        prov_offsets,
        has_prov,
    })
}

/// Resolve all FROM items in declaration order (that is the lock-acquisition
/// order), then permute into join order.
pub(crate) fn resolve_items(env: &dyn Env, plan: &SelectPlan) -> Result<Vec<ResolvedItem>> {
    // Items the plan reads only through equality probes (seed `IndexEq`,
    // join `IndexProbe`) lock key-granularly at the probe sites instead of
    // taking a table S lock up front.
    let mut keyed = vec![false; plan.items.len()];
    if matches!(plan.seed, Access::IndexEq { .. }) {
        keyed[plan.join_order[0]] = true;
    }
    for (k, step) in plan.steps.iter().enumerate() {
        if matches!(step, JoinStep::IndexProbe { .. }) {
            keyed[plan.join_order[k + 1]] = true;
        }
    }
    let mut declared = Vec::with_capacity(plan.items.len());
    for (d, item) in plan.items.iter().enumerate() {
        declared.push(Some(resolve_item(env, item, keyed[d])?));
    }
    let mut joined = Vec::with_capacity(declared.len());
    for &d in &plan.join_order {
        joined.push(declared[d].take().expect("each item moved once"));
    }
    Ok(joined)
}

// ---------------------------------------------------------------------------
// The join pipeline
// ---------------------------------------------------------------------------

/// One row mid-join: concatenated values plus per-item (join-order)
/// provenance.
#[derive(Clone)]
struct JRow {
    vals: Vec<Value>,
    provs: Vec<Option<RecordRef>>,
}

pub(crate) fn scan_item(
    env: &dyn Env,
    item: &ResolvedItem,
) -> Vec<(Vec<Value>, Option<RecordRef>)> {
    let m = env.meter();
    m.charge(Op::OpenCursor, 1);
    let out = match &item.rel {
        Rel::Standard(t) => {
            let rows = match env.snapshot_ts() {
                Some(ts) => t.scan_at(ts),
                None => t.scan(),
            };
            let mut v = Vec::with_capacity(rows.len());
            for (_, rec) in rows {
                v.push((rec.values().to_vec(), Some(rec)));
            }
            m.charge(Op::FetchCursor, v.len() as u64);
            v
        }
        Rel::Temp(t) => {
            let mut v = Vec::with_capacity(t.len());
            for i in 0..t.len() {
                let rec = if item.has_prov && !t.tuples()[i].ptrs().is_empty() {
                    Some(t.tuples()[i].ptrs()[0].clone())
                } else {
                    None
                };
                v.push((t.row_values(i), rec));
            }
            m.charge(Op::TempTupleRead, v.len() as u64);
            v
        }
    };
    m.charge(Op::CloseCursor, 1);
    out
}

pub(crate) fn probe_item(
    env: &dyn Env,
    item: &ResolvedItem,
    column: usize,
    key: &Value,
) -> Result<Option<IndexedRows>> {
    let Rel::Standard(t) = &item.rel else {
        return Ok(None);
    };
    if t.index_on(column).is_none() {
        return Ok(None);
    }
    // Key-granular read lock: IS on the table, S on `table#column=key`.
    // Taken before the index lookup so the probe sees a stable key range.
    env.before_read_keyed(t.name(), &t.schema().column(column).name, key)?;
    let Some(ids) = t.index_lookup(column, key) else {
        return Ok(None);
    };
    let m = env.meter();
    m.charge(Op::IndexProbe, 1);
    m.charge(Op::FetchCursor, ids.len() as u64);
    let ts = env.snapshot_ts();
    Ok(Some(
        ids.into_iter()
            .filter_map(|id| match ts {
                Some(ts) => t.get_at(id, ts),
                None => t.get(id).ok(),
            })
            // The planner consumed the `column = key` conjunct when it chose
            // this probe, and a version chain keeps a posting for every key
            // any retained version carries — so a posting may resolve to a
            // version that no longer has the probed key. Revalidate here.
            .filter(|rec| rec.get(column) == key)
            .map(|rec| (rec.values().to_vec(), Some(rec)))
            .collect(),
    ))
}

/// Inclusive ordered-index range scan on the seed item.
pub(crate) fn range_item(
    env: &dyn Env,
    item: &ResolvedItem,
    column: usize,
    lo: &Value,
    hi: &Value,
) -> Option<IndexedRows> {
    let Rel::Standard(t) = &item.rel else {
        return None;
    };
    let ids = t.index_range(column, lo, hi)?;
    let m = env.meter();
    m.charge(Op::IndexProbe, 1);
    m.charge(Op::FetchCursor, ids.len() as u64);
    let ts = env.snapshot_ts();
    // No key revalidation needed: the planner retains range conjuncts as
    // residual filters, which drop rows whose resolved version left the
    // range (stale postings, snapshot-visible older versions).
    Some(
        ids.into_iter()
            .filter_map(|id| match ts {
                Some(ts) => t.get_at(id, ts),
                None => t.get(id).ok(),
            })
            .map(|rec| (rec.values().to_vec(), Some(rec)))
            .collect(),
    )
}

/// Apply residual filters assigned to one join position, in original
/// conjunct order (each filter is charged per row it sees).
fn apply_filters(
    env: &dyn Env,
    filters: &[crate::expr::Program],
    rows: &mut Vec<JRow>,
    params: &[Value],
) -> Result<()> {
    let m = env.meter();
    for f in filters {
        let mut kept = Vec::with_capacity(rows.len());
        for r in rows.drain(..) {
            m.charge(Op::EvalExpr, 1);
            if f.eval_bool(&r.vals, params)? {
                kept.push(r);
            }
        }
        *rows = kept;
    }
    Ok(())
}

/// Run the access-path + join + filter section of a plan, producing the
/// joined rows (values in join-order layout, plus per-item provenance).
fn run_join(
    env: &dyn Env,
    plan: &SelectPlan,
    items: &[ResolvedItem],
    params: &[Value],
) -> Result<Vec<JRow>> {
    let n = items.len();
    let m = env.meter();

    let seed_rows = match &plan.seed {
        Access::Scan => scan_item(env, &items[0]),
        Access::IndexEq { column, key } => {
            let key = key.eval(&[], params)?;
            probe_item(env, &items[0], *column, &key)?
                .ok_or_else(|| SqlError::stale("index used by plan no longer exists"))?
        }
        Access::IndexRange { column, lo, hi } => {
            let lo = lo.eval(&[], params)?;
            let hi = hi.eval(&[], params)?;
            range_item(env, &items[0], *column, &lo, &hi)
                .ok_or_else(|| SqlError::stale("ordered index used by plan no longer exists"))?
        }
    };
    let mut rows: Vec<JRow> = seed_rows
        .into_iter()
        .map(|(vals, prov)| {
            let mut provs = vec![None; n];
            provs[0] = prov;
            JRow { vals, provs }
        })
        .collect();
    apply_filters(env, &plan.filters[0], &mut rows, params)?;

    for (k, step) in plan.steps.iter().enumerate() {
        let k = k + 1;
        let item = &items[k];
        let mut next_rows = Vec::new();
        match step {
            JoinStep::IndexProbe { column, key } => {
                for r in &rows {
                    m.charge(Op::EvalExpr, 1);
                    let key = key.eval(&r.vals, params)?;
                    if let Some(matches) = probe_item(env, item, *column, &key)? {
                        for (vals, prov) in matches {
                            let mut nr = r.clone();
                            nr.vals.extend(vals);
                            nr.provs[k] = prov;
                            next_rows.push(nr);
                        }
                    }
                }
            }
            JoinStep::HashJoin { column, key } => {
                // Hash join: materialize and hash the inner once, then one
                // key evaluation and one hash probe per prefix row; every
                // emitted match reads one built tuple.
                let inner = scan_item(env, item);
                m.charge(Op::UniqueHashOp, inner.len() as u64);
                let mut table: HashMap<Value, Vec<usize>> = HashMap::new();
                for (i, (vals, _)) in inner.iter().enumerate() {
                    table.entry(vals[*column].clone()).or_default().push(i);
                }
                for r in &rows {
                    m.charge(Op::EvalExpr, 1);
                    let key = key.eval(&r.vals, params)?;
                    m.charge(Op::UniqueHashOp, 1);
                    if let Some(idxs) = table.get(&key) {
                        m.charge(Op::TempTupleRead, idxs.len() as u64);
                        for &i in idxs {
                            let (vals, prov) = &inner[i];
                            let mut nr = r.clone();
                            nr.vals.extend(vals.iter().cloned());
                            nr.provs[k] = prov.clone();
                            next_rows.push(nr);
                        }
                    }
                }
            }
            JoinStep::NestedLoop => {
                // Nested-loop join: materialize the inner once.
                let inner = scan_item(env, item);
                for r in &rows {
                    for (vals, prov) in &inner {
                        let mut nr = r.clone();
                        nr.vals.extend(vals.iter().cloned());
                        nr.provs[k] = prov.clone();
                        next_rows.push(nr);
                    }
                }
            }
        }
        rows = next_rows;
        apply_filters(env, &plan.filters[k], &mut rows, params)?;
    }
    Ok(rows)
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

/// Aggregate accumulator.
pub(crate) enum AggState {
    Sum {
        acc: f64,
        any: bool,
        int: bool,
        iacc: i64,
    },
    Count(i64),
    Avg {
        sum: f64,
        n: i64,
    },
    Min(Option<Value>),
    Max(Option<Value>),
    /// Welford accumulator for var/stddev (population).
    Var {
        n: i64,
        mean: f64,
        m2: f64,
        stddev: bool,
    },
}

impl AggState {
    pub(crate) fn new(func: AggFunc, int_input: bool) -> AggState {
        match func {
            AggFunc::Sum => AggState::Sum {
                acc: 0.0,
                any: false,
                int: int_input,
                iacc: 0,
            },
            AggFunc::Count => AggState::Count(0),
            AggFunc::Avg => AggState::Avg { sum: 0.0, n: 0 },
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
            AggFunc::Var => AggState::Var {
                n: 0,
                mean: 0.0,
                m2: 0.0,
                stddev: false,
            },
            AggFunc::Stddev => AggState::Var {
                n: 0,
                mean: 0.0,
                m2: 0.0,
                stddev: true,
            },
        }
    }

    pub(crate) fn update(&mut self, v: Option<&Value>) -> Result<()> {
        match self {
            AggState::Count(n) => {
                // count(*) gets None and counts every row; count(expr)
                // skips nulls per SQL.
                match v {
                    Some(Value::Null) => {}
                    _ => *n += 1,
                }
            }
            AggState::Sum {
                acc,
                any,
                int,
                iacc,
            } => {
                if let Some(v) = v {
                    if v.is_null() {
                        return Ok(());
                    }
                    *any = true;
                    match v {
                        Value::Int(i) if *int => {
                            *iacc = iacc
                                .checked_add(*i)
                                .ok_or_else(|| SqlError::exec("sum overflow"))?
                        }
                        _ => {
                            *int = false;
                            *acc += v
                                .as_f64()
                                .ok_or_else(|| SqlError::exec("sum of non-numeric value"))?;
                        }
                    }
                }
            }
            AggState::Avg { sum, n } => {
                if let Some(v) = v {
                    if v.is_null() {
                        return Ok(());
                    }
                    *sum += v
                        .as_f64()
                        .ok_or_else(|| SqlError::exec("avg of non-numeric value"))?;
                    *n += 1;
                }
            }
            AggState::Min(cur) => {
                if let Some(v) = v {
                    if v.is_null() {
                        return Ok(());
                    }
                    if cur.as_ref().map(|c| v < c).unwrap_or(true) {
                        *cur = Some(v.clone());
                    }
                }
            }
            AggState::Max(cur) => {
                if let Some(v) = v {
                    if v.is_null() {
                        return Ok(());
                    }
                    if cur.as_ref().map(|c| v > c).unwrap_or(true) {
                        *cur = Some(v.clone());
                    }
                }
            }
            AggState::Var { n, mean, m2, .. } => {
                if let Some(v) = v {
                    if v.is_null() {
                        return Ok(());
                    }
                    let x = v
                        .as_f64()
                        .ok_or_else(|| SqlError::exec("var/stddev of non-numeric value"))?;
                    // Welford's online update.
                    *n += 1;
                    let d = x - *mean;
                    *mean += d / *n as f64;
                    *m2 += d * (x - *mean);
                }
            }
        }
        Ok(())
    }

    pub(crate) fn finish(self) -> Value {
        match self {
            AggState::Sum {
                acc,
                any,
                int,
                iacc,
            } => {
                if !any {
                    Value::Null
                } else if int {
                    Value::Int(iacc)
                } else {
                    Value::Float(acc + iacc as f64)
                }
            }
            AggState::Count(n) => Value::Int(n),
            AggState::Avg { sum, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / n as f64)
                }
            }
            AggState::Min(v) | AggState::Max(v) => v.unwrap_or(Value::Null),
            AggState::Var { n, m2, stddev, .. } => {
                if n == 0 {
                    Value::Null
                } else {
                    let var = m2 / n as f64;
                    Value::Float(if stddev { var.sqrt() } else { var })
                }
            }
        }
    }
}

/// Execute the hash-aggregation stage of a plan over joined rows.
fn run_aggregate(
    env: &dyn Env,
    agg: &plan::AggPlan,
    rows: &[JRow],
    params: &[Value],
) -> Result<Vec<Vec<Value>>> {
    let meter = env.meter();
    let m = agg.keys.len();
    let mut groups: HashMap<Vec<Value>, Vec<AggState>> = HashMap::new();
    let mut group_order: Vec<Vec<Value>> = Vec::new();
    let new_states = |aggs: &[AggSpec]| -> Vec<AggState> {
        aggs.iter()
            .map(|a| AggState::new(a.func, a.int_input))
            .collect()
    };
    for r in rows {
        meter.charge(Op::AggRow, 1);
        let mut key = Vec::with_capacity(m);
        for ke in &agg.keys {
            key.push(ke.eval(&r.vals, params)?);
        }
        let states = match groups.get_mut(&key) {
            Some(s) => s,
            None => {
                group_order.push(key.clone());
                groups
                    .entry(key.clone())
                    .or_insert_with(|| new_states(&agg.aggs));
                groups.get_mut(&key).expect("just inserted")
            }
        };
        for (st, spec) in states.iter_mut().zip(&agg.aggs) {
            let v = match &spec.arg {
                Some(a) => Some(a.eval(&r.vals, params)?),
                None => None,
            };
            st.update(v.as_ref())?;
        }
    }

    // Global aggregate without GROUP BY over empty input still yields one row.
    if m == 0 && group_order.is_empty() {
        group_order.push(Vec::new());
        groups.insert(Vec::new(), new_states(&agg.aggs));
    }

    // Emit one output row per group in first-seen order.
    let mut out_rows = Vec::with_capacity(group_order.len());
    for key in group_order {
        let states = groups.remove(&key).expect("group present");
        let mut outer: Vec<Value> = key;
        outer.extend(states.into_iter().map(AggState::finish));
        if let Some(h) = &agg.having {
            meter.charge(Op::EvalExpr, 1);
            if !h.eval_bool(&outer, params)? {
                continue;
            }
        }
        let mut row = Vec::with_capacity(agg.outs.len());
        for o in &agg.outs {
            match o {
                GroupedOut::OuterCol(idx) => row.push(outer[*idx].clone()),
                GroupedOut::Expr(p) => row.push(p.eval(&outer, params)?),
            }
        }
        out_rows.push(row);
    }
    Ok(out_rows)
}

// ---------------------------------------------------------------------------
// Output helpers
// ---------------------------------------------------------------------------

/// `SELECT DISTINCT`: deduplicate rows preserving first-occurrence order.
pub(crate) fn dedup_rows(rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    let mut seen = std::collections::HashSet::with_capacity(rows.len());
    let mut out = Vec::with_capacity(rows.len());
    for r in rows {
        if seen.insert(r.clone()) {
            out.push(r);
        }
    }
    out
}

/// Sort materialized rows by compiled key programs.
pub(crate) fn sort_rows(
    keys: &[(crate::expr::Program, bool)],
    rows: &mut [Vec<Value>],
    params: &[Value],
) -> Result<()> {
    let mut err = None;
    rows.sort_by(|a, b| {
        for (k, desc) in keys {
            let (va, vb) = match (k.eval(a, params), k.eval(b, params)) {
                (Ok(x), Ok(y)) => (x, y),
                (Err(e), _) | (_, Err(e)) => {
                    err.get_or_insert(e);
                    return std::cmp::Ordering::Equal;
                }
            };
            let ord = va.cmp(&vb);
            let ord = if *desc { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    match err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Sort joined rows in place (pre-projection ORDER BY).
fn sort_jrows(
    keys: &[(crate::expr::Program, bool)],
    rows: &mut [JRow],
    params: &[Value],
) -> Result<()> {
    let mut err = None;
    rows.sort_by(|a, b| {
        for (k, desc) in keys {
            let (va, vb) = match (k.eval(&a.vals, params), k.eval(&b.vals, params)) {
                (Ok(x), Ok(y)) => (x, y),
                (Err(e), _) | (_, Err(e)) => {
                    err.get_or_insert(e);
                    return std::cmp::Ordering::Equal;
                }
            };
            let ord = va.cmp(&vb);
            let ord = if *desc { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    match err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

fn project_rows(
    env: &dyn Env,
    outs: &[OutCol],
    rows: &[JRow],
    params: &[Value],
) -> Result<Vec<Vec<Value>>> {
    let meter = env.meter();
    let mut out = Vec::with_capacity(rows.len());
    for r in rows {
        meter.charge(Op::EvalExpr, 1);
        let mut row = Vec::with_capacity(outs.len());
        for o in outs {
            match o {
                OutCol::Passthrough { idx } => row.push(r.vals[*idx].clone()),
                OutCol::Computed(p) => row.push(p.eval(&r.vals, params)?),
            }
        }
        out.push(row);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Plan execution entry points
// ---------------------------------------------------------------------------

/// Execute a compiled `SELECT`, returning a materialized result set.
///
/// This is the vectorized path: the join pipeline and the
/// filter/project/aggregate operators run batch-at-a-time over a columnar
/// [`crate::batch::RowBatch`] — one operator invocation per plan execution,
/// not per row. The row-at-a-time interpreter survives as
/// [`execute_select_rowwise`], the parity oracle every physical plan is
/// equivalence-checked against.
pub fn execute_select(env: &dyn Env, plan: &SelectPlan, params: &[Value]) -> Result<ResultSet> {
    let items = resolve_items(env, plan)?;
    let mut batch = crate::batch::run_join_batch(env, plan, &items, params)?;

    match &plan.output {
        OutputPlan::Aggregate(agg) => {
            let rows = crate::batch::aggregate_batch(env, agg, &batch, params)?;
            let rows = if plan.distinct {
                dedup_rows(rows)
            } else {
                rows
            };
            let mut rows = match &plan.sort {
                SortPlan::Post(keys) => {
                    let mut rows = rows;
                    sort_rows(keys, &mut rows, params)?;
                    rows
                }
                _ => rows,
            };
            if let Some(l) = plan.limit {
                rows.truncate(l as usize);
            }
            Ok(ResultSet {
                schema: plan.schema.clone(),
                rows,
            })
        }
        OutputPlan::Project(outs) => {
            let pre_sorted = if let SortPlan::Pre(keys) = &plan.sort {
                crate::batch::sort_batch(keys, &mut batch, params)?;
                true
            } else {
                false
            };
            let rows = crate::batch::project_batch(env, outs, &batch, params)?;
            let rows = if plan.distinct {
                dedup_rows(rows)
            } else {
                rows
            };
            let mut rows = match (&plan.sort, pre_sorted) {
                (SortPlan::Post(keys), false) => {
                    let mut rows = rows;
                    sort_rows(keys, &mut rows, params)?;
                    rows
                }
                _ => rows,
            };
            if let Some(l) = plan.limit {
                rows.truncate(l as usize);
            }
            Ok(ResultSet {
                schema: plan.schema.clone(),
                rows,
            })
        }
    }
}

/// The row-at-a-time reference interpreter: identical semantics and meter
/// charges to [`execute_select`], one row flowing through the operators at
/// a time. Kept as the parity oracle for the batch executor (the
/// cached-vs-fresh proptests run every plan through both).
pub fn execute_select_rowwise(
    env: &dyn Env,
    plan: &SelectPlan,
    params: &[Value],
) -> Result<ResultSet> {
    let items = resolve_items(env, plan)?;
    let mut joined = run_join(env, plan, &items, params)?;

    match &plan.output {
        OutputPlan::Aggregate(agg) => {
            let rows = run_aggregate(env, agg, &joined, params)?;
            let rows = if plan.distinct {
                dedup_rows(rows)
            } else {
                rows
            };
            let mut rows = match &plan.sort {
                SortPlan::Post(keys) => {
                    let mut rows = rows;
                    sort_rows(keys, &mut rows, params)?;
                    rows
                }
                _ => rows,
            };
            if let Some(l) = plan.limit {
                rows.truncate(l as usize);
            }
            Ok(ResultSet {
                schema: plan.schema.clone(),
                rows,
            })
        }
        OutputPlan::Project(outs) => {
            // ORDER BY preferentially sorts the *input* rows (SQL permits
            // ordering by non-projected columns, e.g. `select new_price
            // from ... order by new.execute_order`).
            let pre_sorted = if let SortPlan::Pre(keys) = &plan.sort {
                sort_jrows(keys, &mut joined, params)?;
                true
            } else {
                false
            };
            let rows = project_rows(env, outs, &joined, params)?;
            let rows = if plan.distinct {
                dedup_rows(rows)
            } else {
                rows
            };
            let mut rows = match (&plan.sort, pre_sorted) {
                (SortPlan::Post(keys), false) => {
                    let mut rows = rows;
                    sort_rows(keys, &mut rows, params)?;
                    rows
                }
                _ => rows,
            };
            if let Some(l) = plan.limit {
                rows.truncate(l as usize);
            }
            Ok(ResultSet {
                schema: plan.schema.clone(),
                rows,
            })
        }
    }
}

/// Execute a compiled `SELECT` and bind its result as a named temporary
/// table using the §6.1 pointer scheme where possible: passthrough columns
/// backed by a provenance record become pointer columns; computed columns
/// become slots.
pub fn execute_select_bound(
    env: &dyn Env,
    plan: &SelectPlan,
    params: &[Value],
    bind_name: &str,
) -> Result<TempTable> {
    // Grouped/ordered/limited results are computed values: fully
    // materialized.
    if plan.bind_mode == BindMode::Materialize {
        let rs = execute_select(env, plan, params)?;
        let mut t = TempTable::materialized(bind_name, rs.schema.clone());
        let meter = env.meter();
        for row in rs.rows {
            meter.charge(Op::TempTupleBuild, 1);
            t.push_row(row)?;
        }
        return Ok(t);
    }

    let items = resolve_items(env, plan)?;
    let batch = crate::batch::run_join_batch(env, plan, &items, params)?;
    let OutputPlan::Project(outs) = &plan.output else {
        unreachable!("pointer bind mode implies projection output");
    };

    // Decide per output column: pointer or slot. Pointer columns require the
    // producing FROM item to supply a RecordRef on *every* row (standard
    // tables and single-pointer temp tables do).
    // Assign pointer slots per contributing item, in first-use order — the
    // paper's "one pointer to each standard tuple that contributes at least
    // one attribute".
    let mut item_ptr_slot: HashMap<usize, usize> = HashMap::new();
    let mut sources = Vec::with_capacity(outs.len());
    let mut slot_count = 0usize;
    for o in outs {
        match o {
            OutCol::Passthrough { idx } => {
                let lc = &plan.layout.cols[*idx];
                let item = &items[lc.item];
                if item.has_prov {
                    if let Some(offset) = item.prov_offsets[lc.item_offset] {
                        let next = item_ptr_slot.len();
                        let ptr = *item_ptr_slot.entry(lc.item).or_insert(next);
                        sources.push(ColumnSource::Pointer { ptr, offset });
                        continue;
                    }
                }
                sources.push(ColumnSource::Slot(slot_count));
                slot_count += 1;
            }
            OutCol::Computed(_) => {
                sources.push(ColumnSource::Slot(slot_count));
                slot_count += 1;
            }
        }
    }
    let map = StaticMap::new(sources.clone())?;
    let mut out = TempTable::new(bind_name, plan.schema.clone(), map)?;

    // Item -> pointer slot, ordered by slot for row building.
    let mut ptr_items: Vec<usize> = vec![0; item_ptr_slot.len()];
    for (item, slot) in &item_ptr_slot {
        ptr_items[*slot] = *item;
    }

    let meter = env.meter();
    for r in 0..batch.len() {
        meter.charge(Op::TempTupleBuild, 1);
        let mut ptrs = Vec::with_capacity(ptr_items.len());
        for &item in &ptr_items {
            ptrs.push(
                batch.provs[item][r]
                    .clone()
                    .ok_or_else(|| SqlError::exec("missing provenance record"))?,
            );
        }
        let mut slots = Vec::with_capacity(slot_count);
        for (o, src) in outs.iter().zip(&sources) {
            if let ColumnSource::Slot(_) = src {
                match o {
                    OutCol::Passthrough { idx } => slots.push(batch.cols[*idx][r].clone()),
                    OutCol::Computed(p) => {
                        slots.push(p.eval_with(&|i| batch.cols[i][r].clone(), params)?)
                    }
                }
            }
        }
        out.push(ptrs, slots)?;
    }
    Ok(out)
}

/// Rows matched by a single-table predicate: `(RowId, current values)`.
type MatchedRows = Vec<(RowId, Vec<Value>)>;

/// Resolve a DML target table and collect the rows its compiled predicate
/// matches. Uses the planned index probe when present; otherwise scans.
fn match_rows(
    env: &dyn Env,
    table: &str,
    arity: usize,
    pred: &Option<crate::expr::Program>,
    probe: &Option<(usize, crate::expr::Program)>,
    params: &[Value],
) -> Result<(strip_storage::TableRef, MatchedRows)> {
    let rel = env
        .relation(table)
        .ok_or_else(|| SqlError::analyze(format!("unknown table `{table}`")))?;
    let Rel::Standard(tref) = rel else {
        return Err(SqlError::exec(format!(
            "`{table}` is read-only (temporary/bound table)"
        )));
    };
    if tref.schema().arity() != arity {
        return Err(SqlError::stale(format!(
            "table `{table}` changed shape since planning"
        )));
    }
    let probe_key = match probe {
        Some((col, kp)) if tref.index_on(*col).is_some() => Some((*col, kp.eval(&[], params)?)),
        _ => None,
    };
    // This scan feeds an UPDATE/DELETE: take the exclusive lock up front so
    // concurrent writers don't deadlock on S→X upgrades. With a planned
    // index probe the lock is key-granular (IX on the table, X on the key);
    // a full-predicate scan still X-locks the whole table.
    match &probe_key {
        Some((col, key)) => env.before_write_keyed(table, &tref.schema().column(*col).name, key)?,
        None => env.before_write(table)?,
    }

    let meter = env.meter();
    meter.charge(Op::OpenCursor, 1);
    let mut out = Vec::new();
    {
        let candidates: Vec<(RowId, RecordRef)> = match &probe_key {
            Some((col, key)) => {
                meter.charge(Op::IndexProbe, 1);
                tref.index_lookup(*col, key)
                    .unwrap_or_default()
                    .into_iter()
                    .filter_map(|id| tref.get(id).ok().map(|r| (id, r)))
                    .collect()
            }
            None => tref.scan(),
        };
        meter.charge(Op::FetchCursor, candidates.len() as u64);
        for (id, rec) in candidates {
            let vals = rec.values().to_vec();
            let keep = match pred {
                Some(p) => {
                    meter.charge(Op::EvalExpr, 1);
                    p.eval_bool(&vals, params)?
                }
                None => true,
            };
            if keep {
                out.push((id, vals));
            }
        }
    }
    meter.charge(Op::CloseCursor, 1);
    Ok((tref, out))
}

/// Execute a compiled `UPDATE`. Returns the number of rows updated.
pub fn execute_update_plan(env: &dyn Env, plan: &UpdatePlan, params: &[Value]) -> Result<usize> {
    let (_tref, matched) = match_rows(
        env,
        &plan.table,
        plan.arity,
        &plan.pred,
        &plan.probe,
        params,
    )?;
    let count = matched.len();
    for (id, old_vals) in matched {
        let mut new_vals = old_vals.clone();
        for (col, prog, increment, dtype) in &plan.assignments {
            let v = prog.eval(&old_vals, params)?;
            new_vals[*col] = if *increment {
                // `col += expr` (paper's compute_comps functions).
                let base = old_vals[*col]
                    .as_f64()
                    .ok_or_else(|| SqlError::exec("+= on non-numeric column"))?;
                let delta = v
                    .as_f64()
                    .ok_or_else(|| SqlError::exec("+= with non-numeric value"))?;
                match dtype {
                    strip_storage::DataType::Int => Value::Int((base + delta) as i64),
                    _ => Value::Float(base + delta),
                }
            } else {
                v
            };
        }
        env.dml_update(&plan.table, id, new_vals)?;
    }
    Ok(count)
}

/// Execute a compiled `DELETE`. Returns the number of rows deleted.
pub fn execute_delete_plan(env: &dyn Env, plan: &DeletePlan, params: &[Value]) -> Result<usize> {
    let (_tref, matched) = match_rows(
        env,
        &plan.table,
        plan.arity,
        &plan.pred,
        &plan.probe,
        params,
    )?;
    let count = matched.len();
    for (id, _) in matched {
        env.dml_delete(&plan.table, id)?;
    }
    Ok(count)
}

/// Execute a compiled `INSERT`. Returns the number of rows inserted.
pub fn execute_insert_plan(env: &dyn Env, plan: &InsertPlan, params: &[Value]) -> Result<usize> {
    let rel = env
        .relation(&plan.table)
        .ok_or_else(|| SqlError::analyze(format!("unknown table `{}`", plan.table)))?;
    let Rel::Standard(tref) = rel else {
        return Err(SqlError::exec(format!(
            "`{}` is read-only (temporary/bound table)",
            plan.table
        )));
    };
    if tref.schema().arity() != plan.arity {
        return Err(SqlError::stale(format!(
            "table `{}` changed shape since planning",
            plan.table
        )));
    }

    let source_rows: Vec<Vec<Value>> = match &plan.source {
        InsertSourcePlan::Values(rows) => {
            let mut out = Vec::with_capacity(rows.len());
            for r in rows {
                let mut vals = Vec::with_capacity(r.len());
                for p in r {
                    vals.push(p.eval(&[], params)?);
                }
                out.push(vals);
            }
            out
        }
        InsertSourcePlan::Query(q) => execute_select(env, q, params)?.rows,
    };

    let count = source_rows.len();
    for vals in source_rows {
        if vals.len() != plan.positions.len() {
            return Err(SqlError::exec(format!(
                "INSERT provides {} values for {} columns",
                vals.len(),
                plan.positions.len()
            )));
        }
        let mut row = vec![Value::Null; plan.arity];
        for (pos, v) in plan.positions.iter().zip(vals) {
            row[*pos] = v;
        }
        // Unmentioned columns are not defaulted: base tables are
        // non-nullable, so storage will reject the Null.
        env.dml_insert(&plan.table, row)?;
    }
    Ok(count)
}

/// Execute any compiled statement.
pub fn execute_plan(env: &dyn Env, plan: &PhysicalPlan, params: &[Value]) -> Result<ResultSet> {
    match plan {
        PhysicalPlan::Select(p) => execute_select(env, p, params),
        PhysicalPlan::Insert(p) => execute_insert_plan(env, p, params).map(dml_result),
        PhysicalPlan::Update(p) => execute_update_plan(env, p, params).map(dml_result),
        PhysicalPlan::Delete(p) => execute_delete_plan(env, p, params).map(dml_result),
    }
}

fn dml_result(count: usize) -> ResultSet {
    ResultSet {
        schema: strip_storage::Schema::of(&[("count", strip_storage::DataType::Int)]).into_ref(),
        rows: vec![vec![Value::Int(count as i64)]],
    }
}

// ---------------------------------------------------------------------------
// Plan-then-execute convenience wrappers (the pre-planner API)
// ---------------------------------------------------------------------------

/// Execute a `SELECT`, returning a materialized result set.
pub fn execute_query(env: &dyn Env, q: &Query, params: &[Value]) -> Result<ResultSet> {
    let plan = plan::plan_query(env, q)?;
    execute_select(env, &plan, params)
}

/// Execute a `SELECT` and bind its result as a named temporary table.
pub fn execute_query_bound(
    env: &dyn Env,
    q: &Query,
    params: &[Value],
    bind_name: &str,
) -> Result<TempTable> {
    let plan = plan::plan_query(env, q)?;
    execute_select_bound(env, &plan, params, bind_name)
}

/// Execute an `UPDATE`. Returns the number of rows updated.
pub fn execute_update(env: &dyn Env, u: &Update, params: &[Value]) -> Result<usize> {
    let plan = plan::plan_update(env, u)?;
    execute_update_plan(env, &plan, params)
}

/// Execute a `DELETE`. Returns the number of rows deleted.
pub fn execute_delete(env: &dyn Env, d: &Delete, params: &[Value]) -> Result<usize> {
    let plan = plan::plan_delete(env, d)?;
    execute_delete_plan(env, &plan, params)
}

/// Execute an `INSERT`. Returns the number of rows inserted.
pub fn execute_insert(env: &dyn Env, ins: &Insert, params: &[Value]) -> Result<usize> {
    let plan = plan::plan_insert(env, ins)?;
    execute_insert_plan(env, &plan, params)
}
