//! The planner: AST + catalog metadata → [`PhysicalPlan`].
//!
//! Planning is separated from execution so that a plan can be prepared once
//! and executed many times (the prepared-plan cache in `strip-core` keys
//! plans by statement text and schema epoch). The planner never touches
//! data: it consults [`Env::plan_relation`] for schemas, row-count
//! estimates, and index metadata — no locks are taken, no meter charges are
//! made, and plain views are *planned* (for their output schema) rather
//! than materialized.
//!
//! A [`SelectPlan`] records every decision the old monolithic interpreter
//! made on the fly:
//!
//! * the greedy **join order** (seed with the smallest input, then attach
//!   the table reachable through an equi-join predicate, preferring one
//!   with a usable index);
//! * the seed **access path** — full [`Access::Scan`], hash/rbtree point
//!   probe ([`Access::IndexEq`], with commuted `const = col` predicates
//!   normalized), or an ordered-index range scan ([`Access::IndexRange`])
//!   when conjuncts give both a lower and an upper bound on an
//!   rbtree-indexed column;
//! * per join step, an **index nested-loop probe** or a plain nested loop;
//! * residual **filters**, pinned to the earliest join position where all
//!   their columns are available;
//! * the **output stage**: projection or hash aggregation, with sorting
//!   placed before or after projection exactly as the interpreter chose.
//!
//! All expressions are compiled to [`Program`]s (resolved column offsets,
//! no per-row name lookups) at plan time.

use crate::ast::*;
use crate::cost::{self, PlannerMode};
use crate::error::{Result, SqlError};
use crate::exec::{Env, Rel};
use crate::expr::{bind_expr, BExpr, Layout, LayoutCol, Program, ScalarFn};
use crate::logical::{self, layout_of, split_conjuncts};
use strip_storage::{DataType, IndexKind, Schema, SchemaRef};

// ---------------------------------------------------------------------------
// Catalog metadata used by the planner
// ---------------------------------------------------------------------------

/// Planner-visible metadata for one secondary index.
#[derive(Debug, Clone, Copy)]
pub struct IndexMeta {
    /// Indexed column offset.
    pub column: usize,
    /// Index structure.
    pub kind: IndexKind,
    /// Distinct-key estimate at plan time (join selectivity: expected rows
    /// per probe ≈ `est_rows / distinct_keys`).
    pub distinct_keys: usize,
}

/// What the planner needs to know about a relation — schema, size estimate,
/// index metadata, and per-column distinct counts — without taking any
/// lock-manager locks (unindexed-column statistics come from a bounded,
/// cached sample behind short-lived storage latches).
#[derive(Debug, Clone)]
pub struct RelMeta {
    /// The relation's schema.
    pub schema: SchemaRef,
    /// Estimated row count (drives greedy join ordering and operator costs).
    pub est_rows: usize,
    /// Metadata for each secondary index.
    pub indexes: Vec<IndexMeta>,
    /// True for standard (catalog) tables; temporary/bound tables and views
    /// are not standard and cannot be probed or written.
    pub standard: bool,
    /// Distinct-count estimate per column offset: exact index key counts
    /// where an index exists, sampled estimates for unindexed standard
    /// columns, exact counts for (small) temporary tables. Empty when the
    /// relation's data is unavailable at plan time (e.g. unexpanded views);
    /// a `0` entry likewise means "unknown".
    pub col_distincts: Vec<usize>,
}

impl RelMeta {
    /// Derive metadata from a resolved relation (the default
    /// [`Env::plan_relation`] path).
    pub fn of(rel: &Rel) -> RelMeta {
        match rel {
            Rel::Standard(t) => RelMeta {
                schema: t.schema().clone(),
                est_rows: t.len(),
                indexes: t
                    .indexes()
                    .iter()
                    .map(|ix| IndexMeta {
                        column: ix.column(),
                        kind: ix.kind(),
                        distinct_keys: ix.distinct_keys(),
                    })
                    .collect(),
                standard: true,
                col_distincts: (0..t.schema().columns().len())
                    .map(|c| t.distinct_estimate(c))
                    .collect(),
            },
            Rel::Temp(t) => RelMeta {
                schema: t.schema().clone(),
                est_rows: t.len(),
                indexes: Vec::new(),
                standard: false,
                col_distincts: temp_distincts(t),
            },
        }
    }

    pub(crate) fn index_kind_on(&self, column: usize) -> Option<IndexKind> {
        self.indexes
            .iter()
            .find(|m| m.column == column)
            .map(|m| m.kind)
    }

    pub(crate) fn has_index_on(&self, column: usize) -> bool {
        self.standard && self.index_kind_on(column).is_some()
    }

    /// Distinct-value estimate for `column`: the index's exact key count
    /// when one exists, otherwise the sampled/scanned column statistic.
    /// `None` only when the column's data was unavailable at plan time.
    pub(crate) fn distinct_on(&self, column: usize) -> Option<usize> {
        self.indexes
            .iter()
            .find(|m| m.column == column)
            .map(|m| m.distinct_keys)
            .or_else(|| self.col_distincts.get(column).copied().filter(|&d| d > 0))
    }
}

/// Exact per-column distinct counts of a temporary table, capped: transition
/// and bound tables are per-commit small, but a runaway temp table falls
/// back to a scaled estimate over the first rows rather than a full scan.
fn temp_distincts(t: &strip_storage::TempTable) -> Vec<usize> {
    const SAMPLE_ROWS: usize = 2048;
    let rows = t.len();
    let sampled = rows.min(SAMPLE_ROWS);
    let ncols = t.schema().columns().len();
    (0..ncols)
        .map(|c| {
            let mut seen = std::collections::HashSet::new();
            for i in 0..sampled {
                seen.insert(t.value(i, c).clone());
            }
            strip_storage::estimate_distinct(seen.len(), sampled, rows)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Plan structures
// ---------------------------------------------------------------------------

/// A compiled statement, ready for (repeated) execution.
#[allow(clippy::large_enum_variant)] // always behind the plan cache's Arc
pub enum PhysicalPlan {
    /// `SELECT`.
    Select(SelectPlan),
    /// `INSERT`.
    Insert(InsertPlan),
    /// `UPDATE`.
    Update(UpdatePlan),
    /// `DELETE`.
    Delete(DeletePlan),
}

/// One FROM item, in declaration order. The executor re-resolves the
/// relation by name on every run (locks, overlays, and view expansion are
/// per-execution concerns).
pub struct PlannedItem {
    /// Alias (lower-cased).
    pub alias: String,
    /// Table name exactly as written (resolution and error messages).
    pub table: String,
    /// Arity the plan was built against — a mismatch at execution time
    /// means the plan is stale.
    pub arity: usize,
}

/// Access path for the seed (first in join order) item.
pub enum Access {
    /// Full table / temp-table scan.
    Scan,
    /// Hash or rbtree point probe: `column = key`.
    IndexEq {
        /// Column offset within the seed item.
        column: usize,
        /// Key over (no) input columns; parameters allowed.
        key: Program,
    },
    /// Ordered-index range scan: `lo <= column <= hi` (inclusive). The
    /// originating conjuncts are retained as filters, so strict bounds
    /// stay correct.
    IndexRange {
        /// Column offset within the seed item.
        column: usize,
        /// Lower bound.
        lo: Program,
        /// Upper bound.
        hi: Program,
    },
}

/// How join position `k` (k ≥ 1) attaches to the joined prefix.
pub enum JoinStep {
    /// Index nested-loop: evaluate `key` over the prefix row, probe the
    /// item's index on `column`.
    IndexProbe {
        /// Column offset within the joined item.
        column: usize,
        /// Key over the joined prefix row.
        key: Program,
    },
    /// Hash join: materialize the inner once and hash it on `column`;
    /// evaluate `key` over the prefix row and probe the hash table. Chosen
    /// by the cost-based planner when the equi-join column has no usable
    /// index (or the build amortizes better than repeated probes); never
    /// chosen syntactically.
    HashJoin {
        /// Column offset within the joined item (hash-build key).
        column: usize,
        /// Key over the joined prefix row.
        key: Program,
    },
    /// Plain nested loop (inner materialized once).
    NestedLoop,
}

/// A select item after binding: a passthrough column or a computed program.
pub enum OutCol {
    /// Direct column passthrough (flat offset into the joined row).
    /// Eligible for pointer-column output in bound tables.
    Passthrough {
        /// Flat offset into the joined row.
        idx: usize,
    },
    /// Computed expression.
    Computed(Program),
}

/// One aggregate accumulator slot.
pub struct AggSpec {
    /// The aggregate function.
    pub func: AggFunc,
    /// Argument over the joined row (`None` for `count(*)`).
    pub arg: Option<Program>,
    /// True when the argument is integer-typed (`sum` stays integral).
    pub int_input: bool,
}

/// A grouped select item over the outer row `[keys..., aggregates...]`.
pub enum GroupedOut {
    /// Index into the outer row.
    OuterCol(usize),
    /// Expression over outer-row offsets.
    Expr(Program),
}

/// The hash-aggregation stage.
pub struct AggPlan {
    /// Group-key expressions over the joined row.
    pub keys: Vec<Program>,
    /// Accumulator slots (select items and HAVING combined).
    pub aggs: Vec<AggSpec>,
    /// HAVING over the outer row.
    pub having: Option<Program>,
    /// Output items over the outer row.
    pub outs: Vec<GroupedOut>,
}

/// The output stage.
pub enum OutputPlan {
    /// Plain projection.
    Project(Vec<OutCol>),
    /// Hash aggregation (`GROUP BY` / aggregate select items).
    Aggregate(Box<AggPlan>),
}

/// Where sorting happens relative to projection.
pub enum SortPlan {
    /// No ORDER BY.
    None,
    /// Sort the joined rows before projection (keys over the join layout;
    /// SQL permits ordering by non-projected columns).
    Pre(Vec<(Program, bool)>),
    /// Sort the output rows after projection (keys over the output schema,
    /// qualifiers ignored).
    Post(Vec<(Program, bool)>),
}

/// How `bind as` materializes the result (§6.1).
#[derive(PartialEq, Eq, Clone, Copy)]
pub enum BindMode {
    /// Computed values only: fully materialized temp table.
    Materialize,
    /// Pointer scheme: passthrough columns backed by a provenance record
    /// become pointers; the rest become slots. The exact pointer/slot split
    /// is decided at execution time from the resolved relations.
    Pointer,
}

/// A compiled `SELECT`.
pub struct SelectPlan {
    /// FROM items in declaration order (lock-acquisition order).
    pub items: Vec<PlannedItem>,
    /// Declaration indices in join order.
    pub join_order: Vec<usize>,
    /// Cumulative arity by join position (`n + 1` entries).
    pub prefix_len: Vec<usize>,
    /// Seed access path.
    pub seed: Access,
    /// Join steps for positions `1..n`.
    pub steps: Vec<JoinStep>,
    /// `filters[k]`: residual predicates applied right after join position
    /// `k`, in original conjunct order.
    pub filters: Vec<Vec<Program>>,
    /// Layout of the joined row (join order).
    pub layout: Layout,
    /// Output stage.
    pub output: OutputPlan,
    /// Output schema.
    pub schema: SchemaRef,
    /// Sort placement.
    pub sort: SortPlan,
    /// `SELECT DISTINCT`.
    pub distinct: bool,
    /// `LIMIT`.
    pub limit: Option<u64>,
    /// Bound-result strategy.
    pub bind_mode: BindMode,
    /// Estimated joined-row cardinality (before the output stage). Compared
    /// against the actual count at execution time for plan-quality
    /// telemetry.
    pub est_rows: u64,
    /// Bounded plan-shape label, e.g. `probe(stocks)>hash(feed)` — one
    /// token per join position. Safe to intern: the set of labels is
    /// bounded by the set of cached plans, not by executions.
    pub choice: String,
}

/// A compiled `UPDATE`.
pub struct UpdatePlan {
    /// Target table name as written.
    pub table: String,
    /// Full WHERE predicate over the table row.
    pub pred: Option<Program>,
    /// Point-probe fast path: `(column, key)` from an indexed
    /// `col = const` conjunct.
    pub probe: Option<(usize, Program)>,
    /// `(column offset, value expression, is-increment, column type)`.
    pub assignments: Vec<(usize, Program, bool, DataType)>,
    /// Planned arity (stale check).
    pub arity: usize,
}

/// A compiled `DELETE`.
pub struct DeletePlan {
    /// Target table name as written.
    pub table: String,
    /// Full WHERE predicate over the table row.
    pub pred: Option<Program>,
    /// Point-probe fast path.
    pub probe: Option<(usize, Program)>,
    /// Planned arity (stale check).
    pub arity: usize,
}

/// Row source of an `INSERT`.
pub enum InsertSourcePlan {
    /// `VALUES` lists, compiled.
    Values(Vec<Vec<Program>>),
    /// `INSERT ... SELECT`.
    Query(Box<SelectPlan>),
}

/// A compiled `INSERT`.
pub struct InsertPlan {
    /// Target table name as written.
    pub table: String,
    /// Target column positions per source value.
    pub positions: Vec<usize>,
    /// Target table arity.
    pub arity: usize,
    /// Row source.
    pub source: InsertSourcePlan,
}

// ---------------------------------------------------------------------------
// Planner entry points
// ---------------------------------------------------------------------------

/// Plan any statement that has a physical plan (queries and DML).
pub fn plan_statement(env: &dyn Env, stmt: &Statement) -> Result<PhysicalPlan> {
    match stmt {
        Statement::Select(q) => Ok(PhysicalPlan::Select(plan_query(env, q)?)),
        Statement::Insert(i) => Ok(PhysicalPlan::Insert(plan_insert(env, i)?)),
        Statement::Update(u) => Ok(PhysicalPlan::Update(plan_update(env, u)?)),
        Statement::Delete(d) => Ok(PhysicalPlan::Delete(plan_delete(env, d)?)),
        _ => Err(SqlError::analyze("statement has no physical plan (DDL)")),
    }
}

pub(crate) fn rel_meta(env: &dyn Env, table: &str) -> Result<RelMeta> {
    env.plan_relation(table)
        .ok_or_else(|| SqlError::analyze(format!("unknown table `{table}`")))
}

/// Does the query need the aggregation pipeline?
pub(crate) fn is_grouped(q: &Query) -> bool {
    !q.group_by.is_empty()
        || q.items.iter().any(|i| match i {
            SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
            _ => false,
        })
}

struct BoundConj {
    expr: BExpr,
    max_col: usize,
    applied: bool,
    ast: Expr,
}

/// Plan a `SELECT` with the environment's configured planner mode.
pub fn plan_query(env: &dyn Env, q: &Query) -> Result<SelectPlan> {
    plan_query_with(env, q, env.planner_mode())
}

/// Plan a `SELECT` under an explicit [`PlannerMode`]. Logical analysis and
/// join ordering are mode-independent ([`crate::logical`]); only
/// access-path and join-operator selection differ ([`crate::cost`]).
pub fn plan_query_with(env: &dyn Env, q: &Query, mode: PlannerMode) -> Result<SelectPlan> {
    let fns = |name: &str| env.scalar_fn(name);

    // Logical planning: resolve FROM items, classify conjuncts, and fix
    // the (mode-independent) greedy join order.
    let lq = logical::analyze(env, q)?;
    let order = logical::choose_join_order(&lq);
    let logical::LogicalQuery {
        items,
        metas,
        conjuncts,
        ..
    } = lq;
    let n = items.len();

    // Join-order layout and prefix arities.
    let layout = layout_of(&items, &metas, |pos| order[pos]);
    let prefix_len: Vec<usize> = {
        let mut v = Vec::with_capacity(n + 1);
        let mut acc = 0;
        v.push(0);
        for &d in &order {
            acc += metas[d].schema.arity();
            v.push(acc);
        }
        v
    };

    // Bind all conjuncts against the join-order layout.
    let mut bconj = Vec::with_capacity(conjuncts.len());
    for c in &conjuncts {
        let b = bind_expr(c, &layout, &fns)?;
        bconj.push(BoundConj {
            max_col: max_col_of(&b).unwrap_or(0),
            expr: b,
            applied: false,
            ast: c.clone(),
        });
    }

    // Seed access path. Equality probes are preferred (`where symbol = ?`
    // point lookups must not scan the table); both `col = const` and the
    // commuted `const = col` forms are recognized. Failing that, a pair of
    // bounds on an rbtree-indexed column becomes a range scan. Cost-based
    // planning additionally requires the probe to beat the scan — with the
    // calibrated constants it always does (one probe is cheaper than a
    // cursor open/close), so both modes agree on seeds; the comparison
    // documents the invariant and guards future recalibration.
    let seed_meta = &metas[order[0]];
    let seed_rows = seed_meta.est_rows as u64;
    let mut est: u64 = seed_rows;
    let mut access = Access::Scan;
    for bc in bconj.iter_mut() {
        if let Some((column, key)) = probe_plan_for(&bc.ast, &layout, 0, 0, &fns) {
            if seed_meta.has_index_on(column) {
                let distinct = seed_meta.distinct_on(column).unwrap_or(1) as u64;
                let take = match mode {
                    PlannerMode::Syntactic => true,
                    PlannerMode::CostBased => {
                        cost::seed_probe_cost(seed_rows, distinct)
                            <= cost::seed_scan_cost(seed_rows, seed_meta.standard)
                    }
                };
                if take {
                    bc.applied = true;
                    est = cost::rows_per_key(seed_rows, distinct);
                    access = Access::IndexEq {
                        column,
                        key: Program::compile(&key),
                    };
                    break;
                }
            }
        }
    }
    if matches!(access, Access::Scan) {
        if let Some((column, lo, hi)) = range_plan_for(&bconj, &layout, seed_meta, &fns) {
            est = (seed_rows / 2).max(1);
            access = Access::IndexRange {
                column,
                lo: Program::compile(&lo),
                hi: Program::compile(&hi),
            };
        }
    }
    let mut choice = format!(
        "{}({})",
        match &access {
            Access::Scan => "scan",
            Access::IndexEq { .. } => "probe",
            Access::IndexRange { .. } => "range",
        },
        items[order[0]].alias
    );

    // Join steps for positions 1..n, consuming probe/hash conjuncts, and
    // filter placement after each position.
    let mut steps = Vec::with_capacity(n.saturating_sub(1));
    let mut filters: Vec<Vec<Program>> = vec![Vec::new(); n];
    place_filters(&mut bconj, &mut filters[0], prefix_len[1]);
    for k in 1..n {
        let inner = &metas[order[k]];
        let inner_rows = inner.est_rows as u64;

        // Candidate conjuncts: the first probe-able one with a usable
        // index (index nested-loop), and the first probe-able one at all
        // (hash join — the build side needs no index).
        let mut probe_cand: Option<(usize, usize, BExpr)> = None;
        let mut equi_cand: Option<(usize, usize, BExpr)> = None;
        for (ci, bc) in bconj.iter().enumerate() {
            if bc.applied {
                continue;
            }
            if let Some((column, key)) = probe_plan_for(&bc.ast, &layout, k, prefix_len[k], &fns) {
                if equi_cand.is_none() {
                    equi_cand = Some((ci, column, key.clone()));
                }
                if inner.has_index_on(column) {
                    probe_cand = Some((ci, column, key));
                    break;
                }
            }
        }

        // Output estimate of a nested-loop step: an unconsumed equality
        // conjunct still filters the cross product down to the equi-join's
        // cardinality, so the estimate applies its selectivity instead of
        // multiplying by the full inner size (the old behaviour, kept only
        // for a genuine cross join). This is what keeps the estimate of
        // plan shapes like `scan(new)>ixjoin(comps_list)>nl(old)` honest:
        // `old` pairs 1:1 on `execute_order`, not |old|:1.
        let nl_est = |est: u64| match &equi_cand {
            Some((_, column, _)) => {
                let per_key = inner
                    .distinct_on(*column)
                    .map(|d| cost::rows_per_key(inner_rows, d as u64))
                    .unwrap_or(1);
                est.saturating_mul(per_key)
            }
            None => est.saturating_mul(inner_rows),
        };

        // (step, consumed conjunct, output-cardinality estimate, label)
        let (step, consumed, next_est, tag) = match mode {
            PlannerMode::Syntactic => match probe_cand {
                Some((ci, column, key)) => {
                    let d = inner.distinct_on(column).unwrap_or(1) as u64;
                    (
                        JoinStep::IndexProbe {
                            column,
                            key: Program::compile(&key),
                        },
                        Some(ci),
                        est.saturating_mul(cost::rows_per_key(inner_rows, d)),
                        "ixjoin",
                    )
                }
                None => (JoinStep::NestedLoop, None, nl_est(est), "nl"),
            },
            PlannerMode::CostBased => {
                let nl_cost = cost::step_nl_cost(est, inner_rows, inner.standard);
                let probe_c = probe_cand.as_ref().map(|(_, column, _)| {
                    let d = inner.distinct_on(*column).unwrap_or(1) as u64;
                    (cost::step_probe_cost(est, inner_rows, d), d)
                });
                let hash_c = equi_cand.as_ref().map(|(_, column, _)| {
                    // Expected matches per probe: exact when an index
                    // tracks the column's distinct keys, a sampled
                    // per-column statistic otherwise (unknown columns —
                    // e.g. unexpanded views — assume unique keys).
                    let per_key = inner
                        .distinct_on(*column)
                        .map(|d| cost::rows_per_key(inner_rows, d as u64))
                        .unwrap_or(1);
                    (
                        cost::step_hash_cost(est, inner_rows, inner.standard, per_key),
                        per_key,
                    )
                });
                // Cheapest wins; ties break probe > hash > nested-loop.
                let best_probe = probe_c.map(|(c, _)| c).unwrap_or(u64::MAX);
                let best_hash = hash_c.map(|(c, _)| c).unwrap_or(u64::MAX);
                if best_probe <= best_hash && best_probe <= nl_cost {
                    let (ci, column, key) = probe_cand.expect("probe candidate");
                    let (_, d) = probe_c.expect("probe cost");
                    (
                        JoinStep::IndexProbe {
                            column,
                            key: Program::compile(&key),
                        },
                        Some(ci),
                        est.saturating_mul(cost::rows_per_key(inner_rows, d)),
                        "ixjoin",
                    )
                } else if best_hash <= nl_cost {
                    let (ci, column, key) = equi_cand.expect("hash candidate");
                    let (_, per_key) = hash_c.expect("hash cost");
                    (
                        JoinStep::HashJoin {
                            column,
                            key: Program::compile(&key),
                        },
                        Some(ci),
                        est.saturating_mul(per_key),
                        "hash",
                    )
                } else {
                    (JoinStep::NestedLoop, None, nl_est(est), "nl")
                }
            }
        };
        if let Some(ci) = consumed {
            bconj[ci].applied = true;
        }
        est = next_est;
        choice.push_str(&format!(">{tag}({})", items[order[k]].alias));
        steps.push(step);
        place_filters(&mut bconj, &mut filters[k], prefix_len[k + 1]);
    }
    debug_assert!(bconj.iter().all(|b| b.applied));

    // Output stage.
    let (output, schema) = if is_grouped(q) {
        let (plan, schema) = plan_grouped(q, &layout, &fns)?;
        (OutputPlan::Aggregate(Box::new(plan)), schema)
    } else {
        let outs = bind_output(q, &layout, &fns)?;
        let schema = output_schema(&outs, &layout)?;
        (
            OutputPlan::Project(outs.into_iter().map(|(o, _, _)| o).collect()),
            schema,
        )
    };

    // Sort placement: non-grouped queries preferentially sort the joined
    // rows (ordering by non-projected columns is legal); grouped queries
    // and fallback cases sort the output rows.
    let sort = if q.order_by.is_empty() {
        SortPlan::None
    } else if matches!(output, OutputPlan::Project(_)) {
        let pre: Result<Vec<(Program, bool)>> = q
            .order_by
            .iter()
            .map(|(e, d)| bind_expr(e, &layout, &fns).map(|b| (Program::compile(&b), *d)))
            .collect();
        match pre {
            Ok(keys) => SortPlan::Pre(keys),
            Err(_) => SortPlan::Post(post_sort_keys(q, &schema, &fns)?),
        }
    } else {
        SortPlan::Post(post_sort_keys(q, &schema, &fns)?)
    };

    let grouped = matches!(output, OutputPlan::Aggregate(_));
    let bind_mode = if grouped || !q.order_by.is_empty() || q.limit.is_some() {
        BindMode::Materialize
    } else {
        BindMode::Pointer
    };

    Ok(SelectPlan {
        items,
        join_order: order,
        prefix_len,
        seed: access,
        steps,
        filters,
        layout,
        output,
        schema,
        sort,
        distinct: q.distinct,
        limit: q.limit,
        bind_mode,
        est_rows: est,
        choice,
    })
}

/// Move every unapplied conjunct whose columns fit within `upto` into
/// `slot`, preserving original conjunct order.
fn place_filters(bconj: &mut [BoundConj], slot: &mut Vec<Program>, upto: usize) {
    for bc in bconj.iter_mut() {
        if !bc.applied && bc.max_col < upto {
            bc.applied = true;
            slot.push(Program::compile(&bc.expr));
        }
    }
}

pub(crate) fn max_col_of(b: &BExpr) -> Option<usize> {
    match b {
        BExpr::Col(i) => Some(*i),
        BExpr::IsNull { expr, .. } => max_col_of(expr),
        BExpr::Neg(e) | BExpr::Not(e) => max_col_of(e),
        BExpr::Binary { left, right, .. } => match (max_col_of(left), max_col_of(right)) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        },
        BExpr::Call { args, .. } => args.iter().filter_map(max_col_of).max(),
        _ => None,
    }
}

/// If `e` is `colA = colB` (or `col = const/param expr`, either side first)
/// where the column belongs to item `target` (in join order) and the other
/// side references only columns below `prefix`, return
/// `(target column offset, key expression)`.
pub(crate) fn probe_plan_for(
    e: &Expr,
    layout: &Layout,
    target: usize,
    prefix: usize,
    fns: &dyn Fn(&str) -> Option<ScalarFn>,
) -> Option<(usize, BExpr)> {
    let Expr::Binary {
        op: BinOp::Eq,
        left,
        right,
    } = e
    else {
        return None;
    };
    for (a, b) in [(left, right), (right, left)] {
        if let Expr::Column { qualifier, name } = a.as_ref() {
            if let Ok(idx) = layout.resolve(qualifier, name) {
                let lc = &layout.cols[idx];
                if lc.item == target {
                    let key = match bind_expr(b, layout, fns) {
                        Ok(k) => k,
                        Err(_) => continue,
                    };
                    if max_col_of(&key).map(|c| c < prefix).unwrap_or(true) {
                        return Some((lc.item_offset, key));
                    }
                }
            }
        }
    }
    None
}

/// Look for a pair of constant bounds on the same rbtree-indexed seed
/// column: `col >= lo` (or `lo <= col`) together with `col <= hi`. Strict
/// bounds participate too — the conjuncts are kept as filters, so the
/// inclusive index range is merely a superset.
fn range_plan_for(
    bconj: &[BoundConj],
    layout: &Layout,
    seed_meta: &RelMeta,
    fns: &dyn Fn(&str) -> Option<ScalarFn>,
) -> Option<(usize, BExpr, BExpr)> {
    // Per seed column, in first-seen order: (offset, lo, hi).
    let mut bounds: Vec<(usize, Option<BExpr>, Option<BExpr>)> = Vec::new();
    for bc in bconj {
        if bc.applied {
            continue;
        }
        let Expr::Binary { op, left, right } = &bc.ast else {
            continue;
        };
        if !matches!(op, BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq) {
            continue;
        }
        // Normalize so the column is on the left: `5 < col` reads `col > 5`.
        for (col_side, other, col_op) in [(left, right, *op), (right, left, commute(*op))] {
            let Expr::Column { qualifier, name } = col_side.as_ref() else {
                continue;
            };
            let Ok(idx) = layout.resolve(qualifier, name) else {
                continue;
            };
            let lc = &layout.cols[idx];
            if lc.item != 0 {
                continue;
            }
            let Ok(key) = bind_expr(other, layout, fns) else {
                continue;
            };
            if max_col_of(&key).is_some() {
                continue;
            }
            let entry = match bounds.iter_mut().find(|(c, _, _)| *c == lc.item_offset) {
                Some(e) => e,
                None => {
                    bounds.push((lc.item_offset, None, None));
                    bounds.last_mut().unwrap()
                }
            };
            match col_op {
                BinOp::Gt | BinOp::GtEq if entry.1.is_none() => entry.1 = Some(key),
                BinOp::Lt | BinOp::LtEq if entry.2.is_none() => entry.2 = Some(key),
                _ => {}
            }
            break;
        }
    }
    bounds
        .into_iter()
        .find(|(c, lo, hi)| {
            lo.is_some() && hi.is_some() && seed_meta.index_kind_on(*c) == Some(IndexKind::RbTree)
        })
        .map(|(c, lo, hi)| (c, lo.unwrap(), hi.unwrap()))
}

fn commute(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::LtEq => BinOp::GtEq,
        BinOp::Gt => BinOp::Lt,
        BinOp::GtEq => BinOp::LtEq,
        other => other,
    }
}

// ---------------------------------------------------------------------------
// Output binding
// ---------------------------------------------------------------------------

fn expand_items(q: &Query, layout: &Layout) -> Result<Vec<(Expr, Option<String>)>> {
    let mut out = Vec::new();
    for item in &q.items {
        match item {
            SelectItem::Wildcard => {
                for c in &layout.cols {
                    out.push((
                        Expr::Column {
                            qualifier: Some(c.qualifier.clone()),
                            name: c.name.clone(),
                        },
                        Some(c.name.clone()),
                    ));
                }
            }
            SelectItem::QualifiedWildcard(q) => {
                let ql = q.to_ascii_lowercase();
                let mut any = false;
                for c in layout.cols.iter().filter(|c| c.qualifier == ql) {
                    any = true;
                    out.push((
                        Expr::Column {
                            qualifier: Some(c.qualifier.clone()),
                            name: c.name.clone(),
                        },
                        Some(c.name.clone()),
                    ));
                }
                if !any {
                    return Err(SqlError::analyze(format!("unknown alias `{q}` in `{q}.*`")));
                }
            }
            SelectItem::Expr { expr, alias } => out.push((expr.clone(), alias.clone())),
        }
    }
    Ok(out)
}

fn default_name(e: &Expr, i: usize) -> String {
    match e {
        Expr::Column { name, .. } => name.clone(),
        Expr::Aggregate { func, .. } => func.name().to_string(),
        _ => format!("col{i}"),
    }
}

type NamedOut = (OutCol, String, DataType);

fn bind_output(
    q: &Query,
    layout: &Layout,
    fns: &dyn Fn(&str) -> Option<ScalarFn>,
) -> Result<Vec<NamedOut>> {
    let items = expand_items(q, layout)?;
    let mut out = Vec::with_capacity(items.len());
    for (i, (e, alias)) in items.iter().enumerate() {
        let name = alias.clone().unwrap_or_else(|| default_name(e, i));
        let b = bind_expr(e, layout, fns)?;
        match b {
            BExpr::Col(idx) => {
                out.push((OutCol::Passthrough { idx }, name, layout.cols[idx].dtype))
            }
            other => {
                let dtype = other.dtype(layout);
                out.push((OutCol::Computed(Program::compile(&other)), name, dtype));
            }
        }
    }
    Ok(out)
}

fn output_schema(outs: &[NamedOut], _layout: &Layout) -> Result<SchemaRef> {
    let columns = outs
        .iter()
        .map(|(_, name, dtype)| strip_storage::Column::new(name.clone(), *dtype))
        .collect();
    Ok(Schema::new(columns).map(Schema::into_ref)?)
}

// ---------------------------------------------------------------------------
// Grouped output
// ---------------------------------------------------------------------------

type AggSlot = (AggFunc, Option<BExpr>, bool);

/// Rewrite an AST expression into a BExpr over the outer row
/// `[k0..k_{m-1}, a0..a_{p-1}]`, registering aggregate slots on the way.
fn rewrite_grouped(
    e: &Expr,
    group_by: &[Expr],
    layout: &Layout,
    fns: &dyn Fn(&str) -> Option<ScalarFn>,
    aggs: &mut Vec<AggSlot>,
    m: usize,
) -> Result<BExpr> {
    // A subtree that syntactically equals a group-by expression reads the
    // corresponding key slot.
    if let Some(k) = group_by.iter().position(|g| g == e) {
        return Ok(BExpr::Col(k));
    }
    match e {
        Expr::Aggregate { func, arg } => {
            let (bound, int_input) = match arg {
                Some(a) => {
                    let b = bind_expr(a, layout, fns)?;
                    let int_input = b.dtype(layout) == DataType::Int;
                    (Some(b), int_input)
                }
                None => (None, false),
            };
            aggs.push((*func, bound, int_input));
            Ok(BExpr::Col(m + aggs.len() - 1))
        }
        Expr::IntLit(i) => Ok(BExpr::Lit(strip_storage::Value::Int(*i))),
        Expr::FloatLit(f) => Ok(BExpr::Lit(strip_storage::Value::Float(*f))),
        Expr::StrLit(s) => Ok(BExpr::Lit(strip_storage::Value::str(s))),
        Expr::BoolLit(b) => Ok(BExpr::Lit(strip_storage::Value::Bool(*b))),
        Expr::Param(i) => Ok(BExpr::Param(*i)),
        Expr::NullLit => Ok(BExpr::Lit(strip_storage::Value::Null)),
        Expr::IsNull { expr, negated } => Ok(BExpr::IsNull {
            expr: Box::new(rewrite_grouped(expr, group_by, layout, fns, aggs, m)?),
            negated: *negated,
        }),
        Expr::Neg(inner) => Ok(BExpr::Neg(Box::new(rewrite_grouped(
            inner, group_by, layout, fns, aggs, m,
        )?))),
        Expr::Not(inner) => Ok(BExpr::Not(Box::new(rewrite_grouped(
            inner, group_by, layout, fns, aggs, m,
        )?))),
        Expr::Binary { op, left, right } => Ok(BExpr::Binary {
            op: *op,
            left: Box::new(rewrite_grouped(left, group_by, layout, fns, aggs, m)?),
            right: Box::new(rewrite_grouped(right, group_by, layout, fns, aggs, m)?),
        }),
        Expr::Call { name, args } => {
            let f =
                fns(name).ok_or_else(|| SqlError::analyze(format!("unknown function `{name}`")))?;
            Ok(BExpr::Call {
                f,
                args: args
                    .iter()
                    .map(|a| rewrite_grouped(a, group_by, layout, fns, aggs, m))
                    .collect::<Result<_>>()?,
            })
        }
        Expr::Column { qualifier, name } => Err(SqlError::analyze(format!(
            "column `{}` must appear in GROUP BY or inside an aggregate",
            match qualifier {
                Some(q) => format!("{q}.{name}"),
                None => name.clone(),
            }
        ))),
    }
}

fn plan_grouped(
    q: &Query,
    layout: &Layout,
    fns: &dyn Fn(&str) -> Option<ScalarFn>,
) -> Result<(AggPlan, SchemaRef)> {
    let mut key_exprs = Vec::with_capacity(q.group_by.len());
    for g in &q.group_by {
        key_exprs.push(bind_expr(g, layout, fns)?);
    }
    let m = key_exprs.len();

    let mut aggs: Vec<AggSlot> = Vec::new();
    let items = expand_items(q, layout)?;
    let mut outs = Vec::with_capacity(items.len());
    let mut columns = Vec::with_capacity(items.len());
    for (i, (e, alias)) in items.iter().enumerate() {
        let name = alias.clone().unwrap_or_else(|| default_name(e, i));
        let b = rewrite_grouped(e, &q.group_by, layout, fns, &mut aggs, m)?;
        let dtype = match &b {
            BExpr::Col(k) if *k < m => key_exprs[*k].dtype(layout),
            BExpr::Col(k) => {
                let (func, arg, int_input) = &aggs[*k - m];
                agg_dtype(*func, arg.as_ref().map(|a| a.dtype(layout)), *int_input)
            }
            other => computed_grouped_dtype(other),
        };
        match b {
            BExpr::Col(idx) => outs.push(GroupedOut::OuterCol(idx)),
            expr => outs.push(GroupedOut::Expr(Program::compile(&expr))),
        }
        columns.push(strip_storage::Column::new(name, dtype));
    }

    // HAVING rewrites through the same machinery (it may register
    // additional accumulator slots), after the select items so slot
    // numbering matches.
    let having = match &q.having {
        Some(h) => Some(Program::compile(&rewrite_grouped(
            h,
            &q.group_by,
            layout,
            fns,
            &mut aggs,
            m,
        )?)),
        None => None,
    };

    let schema = Schema::new(columns)?.into_ref();
    let plan = AggPlan {
        keys: key_exprs.iter().map(Program::compile).collect(),
        aggs: aggs
            .into_iter()
            .map(|(func, arg, int_input)| AggSpec {
                func,
                arg: arg.as_ref().map(Program::compile),
                int_input,
            })
            .collect(),
        having,
        outs,
    };
    Ok((plan, schema))
}

fn agg_dtype(func: AggFunc, arg: Option<DataType>, int_input: bool) -> DataType {
    match func {
        AggFunc::Count => DataType::Int,
        AggFunc::Sum => {
            if int_input {
                DataType::Int
            } else {
                DataType::Float
            }
        }
        AggFunc::Avg | AggFunc::Var | AggFunc::Stddev => DataType::Float,
        AggFunc::Min | AggFunc::Max => arg.unwrap_or(DataType::Float),
    }
}

fn computed_grouped_dtype(e: &BExpr) -> DataType {
    match e {
        BExpr::Lit(v) => v.data_type().unwrap_or(DataType::Float),
        BExpr::Not(_) => DataType::Bool,
        BExpr::Binary { op, .. } => match op {
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => DataType::Float,
            _ => DataType::Bool,
        },
        BExpr::Call { f, .. } => f.returns,
        _ => DataType::Float,
    }
}

// ---------------------------------------------------------------------------
// Sorting
// ---------------------------------------------------------------------------

/// Layout over a flat output schema (no qualifiers).
fn output_layout(schema: &SchemaRef) -> Layout {
    Layout {
        cols: schema
            .columns()
            .iter()
            .enumerate()
            .map(|(i, c)| LayoutCol {
                qualifier: String::new(),
                name: c.name.clone(),
                dtype: c.dtype,
                item: 0,
                item_offset: i,
            })
            .collect(),
    }
}

/// Strip qualifiers from column references (ORDER BY against the
/// unqualified output schema matches names ignoring the qualifier).
fn strip_qualifiers(e: &Expr) -> Expr {
    match e {
        Expr::Column { name, .. } => Expr::Column {
            qualifier: None,
            name: name.clone(),
        },
        Expr::Neg(i) => Expr::Neg(Box::new(strip_qualifiers(i))),
        Expr::Not(i) => Expr::Not(Box::new(strip_qualifiers(i))),
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(strip_qualifiers(expr)),
            negated: *negated,
        },
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(strip_qualifiers(left)),
            right: Box::new(strip_qualifiers(right)),
        },
        Expr::Call { name, args } => Expr::Call {
            name: name.clone(),
            args: args.iter().map(strip_qualifiers).collect(),
        },
        Expr::Aggregate { func, arg } => Expr::Aggregate {
            func: *func,
            arg: arg.as_ref().map(|a| Box::new(strip_qualifiers(a))),
        },
        other => other.clone(),
    }
}

fn post_sort_keys(
    q: &Query,
    schema: &SchemaRef,
    fns: &dyn Fn(&str) -> Option<ScalarFn>,
) -> Result<Vec<(Program, bool)>> {
    let layout = output_layout(schema);
    let mut keys = Vec::with_capacity(q.order_by.len());
    for (e, desc) in &q.order_by {
        keys.push((
            Program::compile(&bind_expr(&strip_qualifiers(e), &layout, fns)?),
            *desc,
        ));
    }
    Ok(keys)
}

// ---------------------------------------------------------------------------
// DML planning
// ---------------------------------------------------------------------------

fn single_table_layout(table: &str, schema: &SchemaRef) -> Layout {
    Layout {
        cols: schema
            .columns()
            .iter()
            .enumerate()
            .map(|(i, c)| LayoutCol {
                qualifier: table.to_ascii_lowercase(),
                name: c.name.clone(),
                dtype: c.dtype,
                item: 0,
                item_offset: i,
            })
            .collect(),
    }
}

/// Predicate + probe planning shared by UPDATE and DELETE.
#[allow(clippy::type_complexity)]
fn plan_match(
    env: &dyn Env,
    table: &str,
    where_clause: &Option<Expr>,
) -> Result<(RelMeta, Layout, Option<Program>, Option<(usize, Program)>)> {
    let meta = rel_meta(env, table)?;
    if !meta.standard {
        return Err(SqlError::exec(format!(
            "`{table}` is read-only (temporary/bound table)"
        )));
    }
    let layout = single_table_layout(table, &meta.schema);
    let fns = |name: &str| env.scalar_fn(name);
    let pred = match where_clause {
        Some(w) => Some(Program::compile(&bind_expr(w, &layout, &fns)?)),
        None => None,
    };
    // Index fast path: a conjunct `col = <const expr>` with an index on col.
    let mut probe = None;
    if let Some(w) = where_clause {
        let mut conjs = Vec::new();
        split_conjuncts(w, &mut conjs);
        for c in &conjs {
            if let Some((column, key)) = probe_plan_for(c, &layout, 0, 0, &fns) {
                if meta.index_kind_on(column).is_some() {
                    probe = Some((column, Program::compile(&key)));
                    break;
                }
            }
        }
    }
    Ok((meta, layout, pred, probe))
}

/// Plan an `UPDATE`.
pub fn plan_update(env: &dyn Env, u: &Update) -> Result<UpdatePlan> {
    let (meta, layout, pred, probe) = plan_match(env, &u.table, &u.where_clause)?;
    let fns = |name: &str| env.scalar_fn(name);
    let mut assignments = Vec::with_capacity(u.assignments.len());
    for a in &u.assignments {
        let col = meta.schema.index_of_ok(&a.column)?;
        assignments.push((
            col,
            Program::compile(&bind_expr(&a.expr, &layout, &fns)?),
            a.increment,
            meta.schema.column(col).dtype,
        ));
    }
    Ok(UpdatePlan {
        table: u.table.clone(),
        pred,
        probe,
        assignments,
        arity: meta.schema.arity(),
    })
}

/// Plan a `DELETE`.
pub fn plan_delete(env: &dyn Env, d: &Delete) -> Result<DeletePlan> {
    let (meta, _layout, pred, probe) = plan_match(env, &d.table, &d.where_clause)?;
    Ok(DeletePlan {
        table: d.table.clone(),
        pred,
        probe,
        arity: meta.schema.arity(),
    })
}

/// Plan an `INSERT`.
pub fn plan_insert(env: &dyn Env, ins: &Insert) -> Result<InsertPlan> {
    let meta = rel_meta(env, &ins.table)?;
    if !meta.standard {
        return Err(SqlError::exec(format!(
            "`{}` is read-only (temporary/bound table)",
            ins.table
        )));
    }
    let positions: Vec<usize> = if ins.columns.is_empty() {
        (0..meta.schema.arity()).collect()
    } else {
        let mut v = Vec::with_capacity(ins.columns.len());
        for c in &ins.columns {
            v.push(meta.schema.index_of_ok(c)?);
        }
        v
    };
    let source = match &ins.source {
        InsertSource::Values(rows) => {
            let fns = |name: &str| env.scalar_fn(name);
            let empty = Layout::default();
            let mut out = Vec::with_capacity(rows.len());
            for r in rows {
                let mut progs = Vec::with_capacity(r.len());
                for e in r {
                    progs.push(Program::compile(&bind_expr(e, &empty, &fns)?));
                }
                out.push(progs);
            }
            InsertSourcePlan::Values(out)
        }
        InsertSource::Query(q) => InsertSourcePlan::Query(Box::new(plan_query(env, q)?)),
    };
    Ok(InsertPlan {
        table: ins.table.clone(),
        positions,
        arity: meta.schema.arity(),
        source,
    })
}

// ---------------------------------------------------------------------------
// Explain
// ---------------------------------------------------------------------------

impl SelectPlan {
    /// A compact, stable textual rendering of the operator tree (for tests
    /// and diagnostics).
    pub fn explain(&self) -> String {
        let mut s = String::new();
        let seed_item = &self.items[self.join_order[0]];
        match &self.seed {
            Access::Scan => s.push_str(&format!("TableScan {}\n", seed_item.alias)),
            Access::IndexEq { column, .. } => {
                s.push_str(&format!("IndexEqScan {} col={column}\n", seed_item.alias))
            }
            Access::IndexRange { column, .. } => s.push_str(&format!(
                "IndexRangeScan {} col={column}\n",
                seed_item.alias
            )),
        }
        if !self.filters[0].is_empty() {
            s.push_str(&format!("Filter x{}\n", self.filters[0].len()));
        }
        for (k, step) in self.steps.iter().enumerate() {
            let item = &self.items[self.join_order[k + 1]];
            match step {
                JoinStep::IndexProbe { column, .. } => {
                    s.push_str(&format!("IndexJoin {} col={column}\n", item.alias))
                }
                JoinStep::HashJoin { column, .. } => {
                    s.push_str(&format!("HashJoin {} col={column}\n", item.alias))
                }
                JoinStep::NestedLoop => s.push_str(&format!("NestedLoopJoin {}\n", item.alias)),
            }
            if !self.filters[k + 1].is_empty() {
                s.push_str(&format!("Filter x{}\n", self.filters[k + 1].len()));
            }
        }
        match &self.output {
            OutputPlan::Project(outs) => s.push_str(&format!("Project x{}\n", outs.len())),
            OutputPlan::Aggregate(a) => s.push_str(&format!(
                "HashAggregate keys={} aggs={}\n",
                a.keys.len(),
                a.aggs.len()
            )),
        }
        match &self.sort {
            SortPlan::None => {}
            SortPlan::Pre(k) => s.push_str(&format!("Sort pre x{}\n", k.len())),
            SortPlan::Post(k) => s.push_str(&format!("Sort post x{}\n", k.len())),
        }
        if self.distinct {
            s.push_str("Distinct\n");
        }
        if let Some(l) = self.limit {
            s.push_str(&format!("Limit {l}\n"));
        }
        s
    }
}
