//! The Volcano-style cost chooser.
//!
//! The logical planner ([`crate::logical`]) fixes *what* is joined and in
//! which order; this module chooses *how*: the seed access path (full scan,
//! index point probe, rbtree range) and, per join step, index nested-loop
//! probe vs hash join vs plain nested loop. Each candidate operator gets a
//! cost in virtual microseconds derived from the same calibrated constants
//! the `strip-txn` [`CostModel`] charges at execution time (Table 1 of the
//! paper plus the engine primitives), fed by the incrementally-maintained
//! cardinality statistics in `strip-storage` (row counts and per-index
//! distinct-key estimates). The cheapest candidate wins; ties break toward
//! the earlier entry in `{probe, hash, nested-loop}` so plans stay
//! deterministic.
//!
//! The original syntactic chooser (probe whenever an index exists, nested
//! loop otherwise) is retained as [`PlannerMode::Syntactic`] — an ablation
//! selectable through `StripBuilder`, mirroring the `LockGranularity::Table`
//! pattern — so benchmarks can quantify what cost-based selection buys.

/// Which physical-plan chooser the planner runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlannerMode {
    /// Pre-refactor behavior: take an index probe whenever an index exists
    /// on an equi-join column, otherwise nested-loop; never hash join.
    Syntactic,
    /// Volcano-style: cost every candidate operator with the calibrated
    /// cost model and table/index statistics, pick the cheapest.
    #[default]
    CostBased,
}

impl PlannerMode {
    /// Stable lower-case label (benchmarks, JSON output).
    pub fn label(&self) -> &'static str {
        match self {
            PlannerMode::Syntactic => "syntactic",
            PlannerMode::CostBased => "cost_based",
        }
    }
}

// Virtual-microsecond constants mirroring `CostModel::paper_calibrated()`.
// The planner never touches a meter, so the figures are duplicated here;
// they only need to *rank* operators, not predict wall time.
pub(crate) const C_OPEN: u64 = 25; // Op::OpenCursor
pub(crate) const C_CLOSE: u64 = 10; // Op::CloseCursor
pub(crate) const C_FETCH: u64 = 10; // Op::FetchCursor
pub(crate) const C_TEMP_READ: u64 = 3; // Op::TempTupleRead
pub(crate) const C_PROBE: u64 = 12; // Op::IndexProbe
pub(crate) const C_EVAL: u64 = 2; // Op::EvalExpr
pub(crate) const C_HASH: u64 = 5; // Op::UniqueHashOp

/// Per-row fetch cost of materializing a relation: standard tables go
/// through the cursor, temp (transition/bound) tables through temp-tuple
/// reads.
pub(crate) fn fetch_unit(standard: bool) -> u64 {
    if standard {
        C_FETCH
    } else {
        C_TEMP_READ
    }
}

/// Expected rows per distinct key: `max(1, rows / distinct)`. `distinct`
/// may lag behind compaction (emptied posting lists still counted), which
/// only makes the estimate conservative.
pub(crate) fn rows_per_key(rows: u64, distinct: u64) -> u64 {
    rows.checked_div(distinct).unwrap_or(rows).max(1)
}

/// Cost of a full scan of the seed relation.
pub(crate) fn seed_scan_cost(rows: u64, standard: bool) -> u64 {
    C_OPEN + C_CLOSE + rows * fetch_unit(standard)
}

/// Cost of an index point probe on the seed (`col = const`).
pub(crate) fn seed_probe_cost(rows: u64, distinct: u64) -> u64 {
    C_PROBE + C_FETCH * rows_per_key(rows, distinct)
}

/// Cost of one join step that index-probes the inner per outer row.
pub(crate) fn step_probe_cost(outer: u64, inner: u64, distinct: u64) -> u64 {
    outer * (C_EVAL + C_PROBE + C_FETCH * rows_per_key(inner, distinct))
}

/// Cost of one hash-join step: materialize + hash the inner once, then one
/// key evaluation, one hash probe, and one emit per expected match for each
/// outer row.
pub(crate) fn step_hash_cost(outer: u64, inner: u64, inner_standard: bool, per_key: u64) -> u64 {
    let build = C_OPEN + C_CLOSE + inner * (fetch_unit(inner_standard) + C_HASH);
    build + outer * (C_EVAL + C_HASH + C_TEMP_READ * per_key)
}

/// Cost of one plain nested-loop step: materialize the inner once, then the
/// (residual-filter) equality predicate runs over the whole cross product.
pub(crate) fn step_nl_cost(outer: u64, inner: u64, inner_standard: bool) -> u64 {
    C_OPEN + C_CLOSE + inner * fetch_unit(inner_standard) + outer * inner * C_EVAL
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_beats_scan_for_selective_keys() {
        // Figure-4 shape: 4 rows, 3 distinct keys.
        assert!(seed_probe_cost(4, 3) < seed_scan_cost(4, true));
    }

    #[test]
    fn small_outer_prefers_index_probe_over_hash() {
        // 3 outer rows probing a 4-row indexed inner (3 distinct keys):
        // the hash build cannot amortize.
        let probe = step_probe_cost(3, 4, 3);
        let hash = step_hash_cost(3, 4, true, rows_per_key(4, 3));
        let nl = step_nl_cost(3, 4, true);
        assert!(probe < nl);
        assert!(probe < hash);
    }

    #[test]
    fn large_outer_unindexed_inner_prefers_hash() {
        // 3000 skewed feed rows against a 200-row inner with no usable
        // index from the outer side: hash join amortizes the build, the
        // nested loop pays 600k evals.
        let hash = step_hash_cost(3000, 200, true, 1);
        let nl = step_nl_cost(3000, 200, true);
        assert!(hash < nl / 10, "hash={hash} nl={nl}");
    }

    #[test]
    fn rows_per_key_is_conservative() {
        assert_eq!(rows_per_key(12, 3), 4);
        assert_eq!(rows_per_key(3, 12), 1);
        assert_eq!(rows_per_key(0, 0), 1);
        assert_eq!(rows_per_key(5, 0), 5);
    }
}
