//! Hand-written SQL lexer.

use crate::error::SqlError;
use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (stored lower-cased; SQL is case-insensitive).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (quotes stripped, '' unescaped).
    Str(String),
    // Punctuation / operators.
    LParen,
    RParen,
    Comma,
    Dot,
    Star,
    Plus,
    Minus,
    Slash,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    PlusEq,
    Question,
    Semicolon,
    /// End of input.
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Float(x) => write!(f, "{x}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::LParen => f.write_str("("),
            Token::RParen => f.write_str(")"),
            Token::Comma => f.write_str(","),
            Token::Dot => f.write_str("."),
            Token::Star => f.write_str("*"),
            Token::Plus => f.write_str("+"),
            Token::Minus => f.write_str("-"),
            Token::Slash => f.write_str("/"),
            Token::Eq => f.write_str("="),
            Token::NotEq => f.write_str("<>"),
            Token::Lt => f.write_str("<"),
            Token::LtEq => f.write_str("<="),
            Token::Gt => f.write_str(">"),
            Token::GtEq => f.write_str(">="),
            Token::PlusEq => f.write_str("+="),
            Token::Question => f.write_str("?"),
            Token::Semicolon => f.write_str(";"),
            Token::Eof => f.write_str("<eof>"),
        }
    }
}

/// Tokenize SQL text. `--` line comments are skipped.
pub fn tokenize(input: &str) -> Result<Vec<Token>, SqlError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    let n = bytes.len();

    while i < n {
        let c = bytes[i] as char;
        match c {
            c if c.is_ascii_whitespace() => i += 1,
            '-' if i + 1 < n && bytes[i + 1] == b'-' => {
                // Line comment.
                while i < n && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            '?' => {
                tokens.push(Token::Question);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            '+' => {
                if i + 1 < n && bytes[i + 1] == b'=' {
                    tokens.push(Token::PlusEq);
                    i += 2;
                } else {
                    tokens.push(Token::Plus);
                    i += 1;
                }
            }
            '-' => {
                tokens.push(Token::Minus);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if i + 1 < n && bytes[i + 1] == b'=' {
                    tokens.push(Token::NotEq);
                    i += 2;
                } else {
                    return Err(SqlError::lex(format!("unexpected character `!` at {i}")));
                }
            }
            '<' => {
                if i + 1 < n && bytes[i + 1] == b'=' {
                    tokens.push(Token::LtEq);
                    i += 2;
                } else if i + 1 < n && bytes[i + 1] == b'>' {
                    tokens.push(Token::NotEq);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < n && bytes[i + 1] == b'=' {
                    tokens.push(Token::GtEq);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                // String literal with '' escaping.
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= n {
                        return Err(SqlError::lex("unterminated string literal".to_string()));
                    }
                    if bytes[i] == b'\'' {
                        if i + 1 < n && bytes[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        s.push(bytes[i] as char);
                        i += 1;
                    }
                }
                tokens.push(Token::Str(s));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < n && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                // A '.' is part of the number only if followed by a digit
                // (so `1.price` lexes as Int Dot Ident, though that's not
                // valid syntax anyway).
                if i + 1 < n && bytes[i] == b'.' && (bytes[i + 1] as char).is_ascii_digit() {
                    is_float = true;
                    i += 1;
                    while i < n && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                // Scientific notation.
                if i < n && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < n && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < n && (bytes[j] as char).is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < n && (bytes[i] as char).is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &input[start..i];
                if is_float {
                    let v: f64 = text
                        .parse()
                        .map_err(|_| SqlError::lex(format!("bad float literal `{text}`")))?;
                    tokens.push(Token::Float(v));
                } else {
                    let v: i64 = text
                        .parse()
                        .map_err(|_| SqlError::lex(format!("bad int literal `{text}`")))?;
                    tokens.push(Token::Int(v));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < n && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                tokens.push(Token::Ident(input[start..i].to_ascii_lowercase()));
            }
            other => {
                return Err(SqlError::lex(format!(
                    "unexpected character `{other}` at offset {i}"
                )))
            }
        }
    }
    tokens.push(Token::Eof);
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Token> {
        tokenize(s).unwrap()
    }

    #[test]
    fn basic_select_tokens() {
        let t = toks("SELECT comp, price FROM comp_prices WHERE price >= 10.5");
        assert_eq!(t[0], Token::Ident("select".into()));
        assert_eq!(t[1], Token::Ident("comp".into()));
        assert_eq!(t[2], Token::Comma);
        assert!(t.contains(&Token::GtEq));
        assert!(t.contains(&Token::Float(10.5)));
        assert_eq!(*t.last().unwrap(), Token::Eof);
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("= <> != < <= > >= + - * / += ?"),
            vec![
                Token::Eq,
                Token::NotEq,
                Token::NotEq,
                Token::Lt,
                Token::LtEq,
                Token::Gt,
                Token::GtEq,
                Token::Plus,
                Token::Minus,
                Token::Star,
                Token::Slash,
                Token::PlusEq,
                Token::Question,
                Token::Eof
            ]
        );
    }

    #[test]
    fn string_escaping() {
        assert_eq!(toks("'it''s'")[0], Token::Str("it's".into()));
        assert!(tokenize("'unterminated").is_err());
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("42")[0], Token::Int(42));
        assert_eq!(toks("1.5")[0], Token::Float(1.5));
        assert_eq!(toks("1e3")[0], Token::Float(1000.0));
        assert_eq!(toks("2.5e-1")[0], Token::Float(0.25));
        // `1.price` must lex the dot separately (qualified-name syntax).
        assert_eq!(
            toks("t1.price")[..3],
            [
                Token::Ident("t1".into()),
                Token::Dot,
                Token::Ident("price".into())
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        let t = toks("select -- a comment\n x");
        assert_eq!(
            t,
            vec![
                Token::Ident("select".into()),
                Token::Ident("x".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn identifiers_lowercased() {
        assert_eq!(toks("CoMp_PriCes")[0], Token::Ident("comp_prices".into()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(tokenize("select #").is_err());
        assert!(tokenize("a ! b").is_err());
    }
}
