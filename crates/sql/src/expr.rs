//! Name-resolved ("bound") expressions and the compiled evaluator.
//!
//! The parser produces [`crate::ast::Expr`] with textual column references.
//! Binding resolves those against the flattened schema of the current row
//! layout into [`BExpr`], whose column references are plain offsets — no
//! per-row name lookups or string hashing. A bound expression is then
//! *compiled* into a flat postfix [`Program`] (a `Vec<Instr>` evaluated on a
//! small value stack, with explicit short-circuit jumps for `AND`/`OR`).
//!
//! `Program` is the **single expression evaluator** of the system: query
//! filters, index-probe keys, projections, aggregate arguments, `HAVING`,
//! `ORDER BY` keys, DML assignments, rule-condition predicates, and the rule
//! engine's transition-predicate checks all execute through it. `BExpr::eval`
//! remains as a tree-walking reference implementation used by binder-level
//! code and differential tests.

use crate::ast::{BinOp, Expr};
use crate::error::{Result, SqlError};
use std::sync::Arc;
use strip_storage::{DataType, Value};

/// The boxed implementation of a scalar function.
pub type ScalarFnImpl = Arc<dyn Fn(&[Value]) -> Result<Value> + Send + Sync>;

/// A registered scalar function: pure `fn(&[Value]) -> Result<Value>` plus
/// its return type for schema inference.
#[derive(Clone)]
pub struct ScalarFn {
    /// Function name (lower-cased).
    pub name: String,
    /// Declared return type.
    pub returns: DataType,
    /// The implementation.
    pub f: ScalarFnImpl,
    /// Virtual cost charged per call, in addition to `Op::EvalExpr`; lets
    /// applications declare expensive model functions (paper §1: "pricing
    /// models ... often involve ... complicated statistics"). Interpreted by
    /// the cost model as `Op::ModelEval` repetitions.
    pub model_evals: u64,
}

impl std::fmt::Debug for ScalarFn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ScalarFn({} -> {})", self.name, self.returns.name())
    }
}

/// One column of the flattened row layout a query executes over.
#[derive(Debug, Clone)]
pub struct LayoutCol {
    /// FROM-item alias that contributed this column.
    pub qualifier: String,
    /// Column name.
    pub name: String,
    /// Declared type.
    pub dtype: DataType,
    /// Which FROM item (by position) the column came from.
    pub item: usize,
    /// Offset of this column within its FROM item's schema.
    pub item_offset: usize,
}

/// The flattened layout: the concatenated schemas of all bound FROM items.
#[derive(Debug, Clone, Default)]
pub struct Layout {
    pub cols: Vec<LayoutCol>,
}

impl Layout {
    /// Resolve a possibly-qualified column name to a flat offset.
    ///
    /// Unqualified names must be unambiguous across all FROM items — the
    /// classic SQL rule. Qualified names match on alias.
    pub fn resolve(&self, qualifier: &Option<String>, name: &str) -> Result<usize> {
        let name = name.to_ascii_lowercase();
        let mut hit = None;
        for (i, c) in self.cols.iter().enumerate() {
            let q_ok = match qualifier {
                Some(q) => c.qualifier == q.to_ascii_lowercase(),
                None => true,
            };
            if q_ok && c.name == name {
                if hit.is_some() {
                    return Err(SqlError::analyze(format!(
                        "ambiguous column reference `{}`",
                        display_name(qualifier, &name)
                    )));
                }
                hit = Some(i);
            }
        }
        hit.ok_or_else(|| {
            SqlError::analyze(format!(
                "unknown column `{}`",
                display_name(qualifier, &name)
            ))
        })
    }
}

fn display_name(q: &Option<String>, n: &str) -> String {
    match q {
        Some(q) => format!("{q}.{n}"),
        None => n.to_string(),
    }
}

/// A bound (name-resolved) scalar expression.
#[derive(Debug, Clone)]
pub enum BExpr {
    Lit(Value),
    /// Flat offset into the current row.
    Col(usize),
    Param(usize),
    Neg(Box<BExpr>),
    Not(Box<BExpr>),
    IsNull {
        expr: Box<BExpr>,
        negated: bool,
    },
    Binary {
        op: BinOp,
        left: Box<BExpr>,
        right: Box<BExpr>,
    },
    Call {
        f: ScalarFn,
        args: Vec<BExpr>,
    },
}

impl BExpr {
    /// Infer the static type of this expression given the layout.
    pub fn dtype(&self, layout: &Layout) -> DataType {
        match self {
            BExpr::Lit(v) => v.data_type().unwrap_or(DataType::Float),
            BExpr::Col(i) => layout.cols[*i].dtype,
            BExpr::Param(_) => DataType::Float,
            BExpr::Neg(e) => e.dtype(layout),
            BExpr::Not(_) => DataType::Bool,
            BExpr::IsNull { .. } => DataType::Bool,
            BExpr::Binary { op, left, right } => match op {
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
                    let (l, r) = (left.dtype(layout), right.dtype(layout));
                    if l == DataType::Int && r == DataType::Int && *op != BinOp::Div {
                        DataType::Int
                    } else {
                        DataType::Float
                    }
                }
                _ => DataType::Bool,
            },
            BExpr::Call { f, .. } => f.returns,
        }
    }

    /// Evaluate against a flat row. `params` supplies `?` values.
    pub fn eval(&self, row: &[Value], params: &[Value]) -> Result<Value> {
        match self {
            BExpr::Lit(v) => Ok(v.clone()),
            BExpr::Col(i) => Ok(row[*i].clone()),
            BExpr::Param(i) => params
                .get(*i)
                .cloned()
                .ok_or_else(|| SqlError::exec(format!("missing parameter ?{}", i + 1))),
            BExpr::Neg(e) => match e.eval(row, params)? {
                Value::Int(i) => Ok(Value::Int(-i)),
                Value::Float(f) => Ok(Value::Float(-f)),
                other => Err(SqlError::exec(format!(
                    "cannot negate {}",
                    other.type_name()
                ))),
            },
            BExpr::IsNull { expr, negated } => {
                let v = expr.eval(row, params)?;
                Ok(Value::Bool(v.is_null() != *negated))
            }
            BExpr::Not(e) => match e.eval(row, params)? {
                Value::Bool(b) => Ok(Value::Bool(!b)),
                other => Err(SqlError::exec(format!(
                    "NOT applied to {}",
                    other.type_name()
                ))),
            },
            BExpr::Binary { op, left, right } => {
                let l = left.eval(row, params)?;
                // Short-circuit logical operators.
                match op {
                    BinOp::And => {
                        return if l == Value::Bool(false) {
                            Ok(Value::Bool(false))
                        } else {
                            let r = right.eval(row, params)?;
                            bool_op(&l, &r, |a, b| a && b)
                        }
                    }
                    BinOp::Or => {
                        return if l == Value::Bool(true) {
                            Ok(Value::Bool(true))
                        } else {
                            let r = right.eval(row, params)?;
                            bool_op(&l, &r, |a, b| a || b)
                        }
                    }
                    _ => {}
                }
                let r = right.eval(row, params)?;
                match op {
                    BinOp::Add => arith(&l, &r, |a, b| a + b, i64::checked_add),
                    BinOp::Sub => arith(&l, &r, |a, b| a - b, i64::checked_sub),
                    BinOp::Mul => arith(&l, &r, |a, b| a * b, i64::checked_mul),
                    BinOp::Div => {
                        // SQL-style: division always yields float; divide by
                        // zero is an execution error.
                        let (a, b) = both_f64(&l, &r)?;
                        if b == 0.0 {
                            Err(SqlError::exec("division by zero"))
                        } else {
                            Ok(Value::Float(a / b))
                        }
                    }
                    BinOp::Eq => Ok(Value::Bool(l == r)),
                    BinOp::NotEq => Ok(Value::Bool(l != r)),
                    BinOp::Lt => Ok(Value::Bool(l < r)),
                    BinOp::LtEq => Ok(Value::Bool(l <= r)),
                    BinOp::Gt => Ok(Value::Bool(l > r)),
                    BinOp::GtEq => Ok(Value::Bool(l >= r)),
                    BinOp::And | BinOp::Or => unreachable!("handled above"),
                }
            }
            BExpr::Call { f, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(a.eval(row, params)?);
                }
                (f.f)(&vals)
            }
        }
    }

    /// Evaluate and require a boolean (for predicates).
    pub fn eval_bool(&self, row: &[Value], params: &[Value]) -> Result<bool> {
        match self.eval(row, params)? {
            Value::Bool(b) => Ok(b),
            Value::Null => Ok(false),
            other => Err(SqlError::exec(format!(
                "predicate evaluated to {} instead of bool",
                other.type_name()
            ))),
        }
    }
}

fn both_f64(l: &Value, r: &Value) -> Result<(f64, f64)> {
    match (l.as_f64(), r.as_f64()) {
        (Some(a), Some(b)) => Ok((a, b)),
        _ => Err(SqlError::exec(format!(
            "arithmetic on non-numeric values ({}, {})",
            l.type_name(),
            r.type_name()
        ))),
    }
}

fn arith(
    l: &Value,
    r: &Value,
    ff: impl Fn(f64, f64) -> f64,
    fi: impl Fn(i64, i64) -> Option<i64>,
) -> Result<Value> {
    if let (Value::Int(a), Value::Int(b)) = (l, r) {
        return fi(*a, *b)
            .map(Value::Int)
            .ok_or_else(|| SqlError::exec("integer overflow"));
    }
    let (a, b) = both_f64(l, r)?;
    Ok(Value::Float(ff(a, b)))
}

fn bool_op(l: &Value, r: &Value, f: impl Fn(bool, bool) -> bool) -> Result<Value> {
    match (l.as_bool(), r.as_bool()) {
        (Some(a), Some(b)) => Ok(Value::Bool(f(a, b))),
        _ => Err(SqlError::exec("logical operator on non-boolean values")),
    }
}

/// Resolve an AST expression against a layout. Aggregates are rejected here;
/// grouped queries extract them before binding (see the executor).
pub fn bind_expr(
    e: &Expr,
    layout: &Layout,
    fns: &dyn Fn(&str) -> Option<ScalarFn>,
) -> Result<BExpr> {
    Ok(match e {
        Expr::IntLit(i) => BExpr::Lit(Value::Int(*i)),
        Expr::FloatLit(f) => BExpr::Lit(Value::Float(*f)),
        Expr::StrLit(s) => BExpr::Lit(Value::str(s)),
        Expr::BoolLit(b) => BExpr::Lit(Value::Bool(*b)),
        Expr::NullLit => BExpr::Lit(Value::Null),
        Expr::Param(i) => BExpr::Param(*i),
        Expr::IsNull { expr, negated } => BExpr::IsNull {
            expr: Box::new(bind_expr(expr, layout, fns)?),
            negated: *negated,
        },
        Expr::Column { qualifier, name } => BExpr::Col(layout.resolve(qualifier, name)?),
        Expr::Neg(inner) => BExpr::Neg(Box::new(bind_expr(inner, layout, fns)?)),
        Expr::Not(inner) => BExpr::Not(Box::new(bind_expr(inner, layout, fns)?)),
        Expr::Binary { op, left, right } => BExpr::Binary {
            op: *op,
            left: Box::new(bind_expr(left, layout, fns)?),
            right: Box::new(bind_expr(right, layout, fns)?),
        },
        Expr::Aggregate { .. } => {
            return Err(SqlError::analyze(
                "aggregate function not allowed in this context",
            ))
        }
        Expr::Call { name, args } => {
            let f =
                fns(name).ok_or_else(|| SqlError::analyze(format!("unknown function `{name}`")))?;
            BExpr::Call {
                f,
                args: args
                    .iter()
                    .map(|a| bind_expr(a, layout, fns))
                    .collect::<Result<_>>()?,
            }
        }
    })
}

// ---------------------------------------------------------------------------
// Compiled programs
// ---------------------------------------------------------------------------

/// One instruction of a compiled expression program.
///
/// Programs are postfix: operands are pushed, operators pop and push. The
/// only control flow is the pair of short-circuit jumps, which *peek* at the
/// top of the stack and skip the right operand (leaving the left value as
/// the result) when it already decides an `AND`/`OR`.
#[derive(Debug, Clone)]
pub enum Instr {
    /// Push a literal.
    Lit(Value),
    /// Push the row value at a flat offset.
    Col(usize),
    /// Push the `?` parameter at an index.
    Param(usize),
    /// Arithmetic negation of the top value.
    Neg,
    /// Boolean negation of the top value.
    Not,
    /// Replace the top value with `IS [NOT] NULL`.
    IsNull {
        /// `IS NOT NULL` when true.
        negated: bool,
    },
    /// Pop two operands, push the result of a non-logical binary operator.
    Bin(BinOp),
    /// `AND` combine: pop right and left, push `left && right` (both must be
    /// boolean). Only reached when the short-circuit jump fell through.
    AndFold,
    /// `OR` combine, symmetric to [`Instr::AndFold`].
    OrFold,
    /// If the top of the stack is `false`, jump to the target (keeping the
    /// value as the expression result); otherwise fall through.
    JumpIfFalse(usize),
    /// If the top of the stack is `true`, jump to the target.
    JumpIfTrue(usize),
    /// Pop `argc` arguments (pushed left to right) and call a scalar
    /// function.
    Call {
        /// The registered function.
        f: ScalarFn,
        /// Argument count.
        argc: usize,
    },
}

/// A compiled expression: a flat instruction sequence over resolved column
/// offsets, evaluated on a reusable value stack. Cheap to clone into cached
/// physical plans and free of per-row allocation beyond the stack itself.
#[derive(Debug, Clone)]
pub struct Program {
    code: Vec<Instr>,
    max_stack: usize,
}

impl Program {
    /// Compile a bound expression.
    pub fn compile(e: &BExpr) -> Program {
        let mut code = Vec::new();
        let mut depth = 0isize;
        let mut max = 0isize;
        emit(e, &mut code, &mut depth, &mut max);
        Program {
            code,
            max_stack: max.max(1) as usize,
        }
    }

    /// The instruction count (diagnostics / tests).
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// True when the program is empty (never produced by `compile`).
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Evaluate against a flat row. `params` supplies `?` values.
    pub fn eval(&self, row: &[Value], params: &[Value]) -> Result<Value> {
        self.eval_with(&|i| row[i].clone(), params)
    }

    /// Evaluate with a column accessor instead of a materialized row. The
    /// batch executor stores data column-major; `col(i)` fetches the value
    /// at flat offset `i` for the row under evaluation, so no per-row
    /// gather into a contiguous slice is needed.
    pub fn eval_with(&self, col: &dyn Fn(usize) -> Value, params: &[Value]) -> Result<Value> {
        let mut stack: Vec<Value> = Vec::with_capacity(self.max_stack);
        let mut pc = 0usize;
        while pc < self.code.len() {
            match &self.code[pc] {
                Instr::Lit(v) => stack.push(v.clone()),
                Instr::Col(i) => stack.push(col(*i)),
                Instr::Param(i) => stack.push(
                    params
                        .get(*i)
                        .cloned()
                        .ok_or_else(|| SqlError::exec(format!("missing parameter ?{}", i + 1)))?,
                ),
                Instr::Neg => {
                    let v = stack.pop().expect("operand");
                    stack.push(match v {
                        Value::Int(i) => Value::Int(-i),
                        Value::Float(f) => Value::Float(-f),
                        other => {
                            return Err(SqlError::exec(format!(
                                "cannot negate {}",
                                other.type_name()
                            )))
                        }
                    });
                }
                Instr::Not => {
                    let v = stack.pop().expect("operand");
                    stack.push(match v {
                        Value::Bool(b) => Value::Bool(!b),
                        other => {
                            return Err(SqlError::exec(format!(
                                "NOT applied to {}",
                                other.type_name()
                            )))
                        }
                    });
                }
                Instr::IsNull { negated } => {
                    let v = stack.pop().expect("operand");
                    stack.push(Value::Bool(v.is_null() != *negated));
                }
                Instr::Bin(op) => {
                    let r = stack.pop().expect("right operand");
                    let l = stack.pop().expect("left operand");
                    stack.push(match op {
                        BinOp::Add => arith(&l, &r, |a, b| a + b, i64::checked_add)?,
                        BinOp::Sub => arith(&l, &r, |a, b| a - b, i64::checked_sub)?,
                        BinOp::Mul => arith(&l, &r, |a, b| a * b, i64::checked_mul)?,
                        BinOp::Div => {
                            let (a, b) = both_f64(&l, &r)?;
                            if b == 0.0 {
                                return Err(SqlError::exec("division by zero"));
                            }
                            Value::Float(a / b)
                        }
                        BinOp::Eq => Value::Bool(l == r),
                        BinOp::NotEq => Value::Bool(l != r),
                        BinOp::Lt => Value::Bool(l < r),
                        BinOp::LtEq => Value::Bool(l <= r),
                        BinOp::Gt => Value::Bool(l > r),
                        BinOp::GtEq => Value::Bool(l >= r),
                        BinOp::And | BinOp::Or => {
                            unreachable!("logical ops compile to jumps + folds")
                        }
                    });
                }
                Instr::AndFold => {
                    let r = stack.pop().expect("right operand");
                    let l = stack.pop().expect("left operand");
                    stack.push(bool_op(&l, &r, |a, b| a && b)?);
                }
                Instr::OrFold => {
                    let r = stack.pop().expect("right operand");
                    let l = stack.pop().expect("left operand");
                    stack.push(bool_op(&l, &r, |a, b| a || b)?);
                }
                Instr::JumpIfFalse(target) => {
                    if stack.last() == Some(&Value::Bool(false)) {
                        pc = *target;
                        continue;
                    }
                }
                Instr::JumpIfTrue(target) => {
                    if stack.last() == Some(&Value::Bool(true)) {
                        pc = *target;
                        continue;
                    }
                }
                Instr::Call { f, argc } => {
                    let at = stack.len() - argc;
                    let args: Vec<Value> = stack.drain(at..).collect();
                    stack.push((f.f)(&args)?);
                }
            }
            pc += 1;
        }
        Ok(stack.pop().expect("program result"))
    }

    /// Evaluate and require a boolean (for predicates). `NULL` is false.
    pub fn eval_bool(&self, row: &[Value], params: &[Value]) -> Result<bool> {
        self.eval_bool_with(&|i| row[i].clone(), params)
    }

    /// [`Program::eval_bool`] with a column accessor (see
    /// [`Program::eval_with`]).
    pub fn eval_bool_with(&self, col: &dyn Fn(usize) -> Value, params: &[Value]) -> Result<bool> {
        match self.eval_with(col, params)? {
            Value::Bool(b) => Ok(b),
            Value::Null => Ok(false),
            other => Err(SqlError::exec(format!(
                "predicate evaluated to {} instead of bool",
                other.type_name()
            ))),
        }
    }
}

fn emit(e: &BExpr, code: &mut Vec<Instr>, depth: &mut isize, max: &mut isize) {
    let push = |code: &mut Vec<Instr>, i: Instr, depth: &mut isize, max: &mut isize| {
        let delta: isize = match &i {
            Instr::Lit(_) | Instr::Col(_) | Instr::Param(_) => 1,
            Instr::Neg | Instr::Not | Instr::IsNull { .. } => 0,
            Instr::Bin(_) | Instr::AndFold | Instr::OrFold => -1,
            Instr::JumpIfFalse(_) | Instr::JumpIfTrue(_) => 0,
            Instr::Call { argc, .. } => 1 - *argc as isize,
        };
        code.push(i);
        *depth += delta;
        *max = (*max).max(*depth);
    };
    match e {
        BExpr::Lit(v) => push(code, Instr::Lit(v.clone()), depth, max),
        BExpr::Col(i) => push(code, Instr::Col(*i), depth, max),
        BExpr::Param(i) => push(code, Instr::Param(*i), depth, max),
        BExpr::Neg(x) => {
            emit(x, code, depth, max);
            push(code, Instr::Neg, depth, max);
        }
        BExpr::Not(x) => {
            emit(x, code, depth, max);
            push(code, Instr::Not, depth, max);
        }
        BExpr::IsNull { expr, negated } => {
            emit(expr, code, depth, max);
            push(code, Instr::IsNull { negated: *negated }, depth, max);
        }
        BExpr::Binary { op, left, right } => match op {
            BinOp::And | BinOp::Or => {
                emit(left, code, depth, max);
                let jump_at = code.len();
                // Placeholder target, patched after the right operand.
                let jump = if *op == BinOp::And {
                    Instr::JumpIfFalse(0)
                } else {
                    Instr::JumpIfTrue(0)
                };
                push(code, jump, depth, max);
                emit(right, code, depth, max);
                push(
                    code,
                    if *op == BinOp::And {
                        Instr::AndFold
                    } else {
                        Instr::OrFold
                    },
                    depth,
                    max,
                );
                let end = code.len();
                match &mut code[jump_at] {
                    Instr::JumpIfFalse(t) | Instr::JumpIfTrue(t) => *t = end,
                    _ => unreachable!("jump placeholder"),
                }
            }
            _ => {
                emit(left, code, depth, max);
                emit(right, code, depth, max);
                push(code, Instr::Bin(*op), depth, max);
            }
        },
        BExpr::Call { f, args } => {
            for a in args {
                emit(a, code, depth, max);
            }
            push(
                code,
                Instr::Call {
                    f: f.clone(),
                    argc: args.len(),
                },
                depth,
                max,
            );
        }
    }
}

/// Bind and compile in one step — the common path for planners.
pub fn compile_expr(
    e: &Expr,
    layout: &Layout,
    fns: &dyn Fn(&str) -> Option<ScalarFn>,
) -> Result<Program> {
    Ok(Program::compile(&bind_expr(e, layout, fns)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> Layout {
        Layout {
            cols: vec![
                LayoutCol {
                    qualifier: "t".into(),
                    name: "a".into(),
                    dtype: DataType::Int,
                    item: 0,
                    item_offset: 0,
                },
                LayoutCol {
                    qualifier: "t".into(),
                    name: "b".into(),
                    dtype: DataType::Float,
                    item: 0,
                    item_offset: 1,
                },
                LayoutCol {
                    qualifier: "u".into(),
                    name: "a".into(),
                    dtype: DataType::Int,
                    item: 1,
                    item_offset: 0,
                },
            ],
        }
    }

    fn no_fns(_: &str) -> Option<ScalarFn> {
        None
    }

    #[test]
    fn resolve_qualified_and_ambiguous() {
        let l = layout();
        assert_eq!(l.resolve(&Some("t".into()), "a").unwrap(), 0);
        assert_eq!(l.resolve(&Some("u".into()), "a").unwrap(), 2);
        assert_eq!(l.resolve(&None, "b").unwrap(), 1);
        assert!(l.resolve(&None, "a").is_err(), "ambiguous");
        assert!(l.resolve(&None, "zzz").is_err());
    }

    #[test]
    fn arithmetic_and_comparison() {
        let l = layout();
        let e = crate::parser::parse_query("select a from t where t.a * 2 + 1 = 7")
            .unwrap()
            .where_clause
            .unwrap();
        let b = bind_expr(&e, &l, &no_fns).unwrap();
        assert!(b
            .eval_bool(&[Value::Int(3), Value::Float(0.0), Value::Int(0)], &[])
            .unwrap());
        assert!(!b
            .eval_bool(&[Value::Int(4), Value::Float(0.0), Value::Int(0)], &[])
            .unwrap());
    }

    #[test]
    fn division_is_float_and_checked() {
        let b = BExpr::Binary {
            op: BinOp::Div,
            left: Box::new(BExpr::Lit(Value::Int(7))),
            right: Box::new(BExpr::Lit(Value::Int(2))),
        };
        assert_eq!(b.eval(&[], &[]).unwrap(), Value::Float(3.5));
        let z = BExpr::Binary {
            op: BinOp::Div,
            left: Box::new(BExpr::Lit(Value::Int(1))),
            right: Box::new(BExpr::Lit(Value::Int(0))),
        };
        assert!(z.eval(&[], &[]).is_err());
    }

    #[test]
    fn integer_overflow_detected() {
        let b = BExpr::Binary {
            op: BinOp::Add,
            left: Box::new(BExpr::Lit(Value::Int(i64::MAX))),
            right: Box::new(BExpr::Lit(Value::Int(1))),
        };
        assert!(b.eval(&[], &[]).is_err());
    }

    #[test]
    fn short_circuit_and_or() {
        // `false and (1/0)` must not evaluate the division.
        let div0 = BExpr::Binary {
            op: BinOp::Div,
            left: Box::new(BExpr::Lit(Value::Int(1))),
            right: Box::new(BExpr::Lit(Value::Int(0))),
        };
        let e = BExpr::Binary {
            op: BinOp::And,
            left: Box::new(BExpr::Lit(Value::Bool(false))),
            right: Box::new(div0.clone()),
        };
        assert_eq!(e.eval(&[], &[]).unwrap(), Value::Bool(false));
        let e = BExpr::Binary {
            op: BinOp::Or,
            left: Box::new(BExpr::Lit(Value::Bool(true))),
            right: Box::new(div0),
        };
        assert_eq!(e.eval(&[], &[]).unwrap(), Value::Bool(true));
    }

    #[test]
    fn params_and_missing_params() {
        let e = BExpr::Param(0);
        assert_eq!(e.eval(&[], &[Value::Int(9)]).unwrap(), Value::Int(9));
        assert!(e.eval(&[], &[]).is_err());
    }

    #[test]
    fn scalar_function_call() {
        let f = ScalarFn {
            name: "twice".into(),
            returns: DataType::Float,
            f: Arc::new(|args| Ok(Value::Float(args[0].as_f64().unwrap() * 2.0))),
            model_evals: 0,
        };
        let fns = move |n: &str| if n == "twice" { Some(f.clone()) } else { None };
        let ast = Expr::Call {
            name: "twice".into(),
            args: vec![Expr::FloatLit(2.5)],
        };
        let b = bind_expr(&ast, &Layout::default(), &fns).unwrap();
        assert_eq!(b.eval(&[], &[]).unwrap(), Value::Float(5.0));
        assert_eq!(b.dtype(&Layout::default()), DataType::Float);
    }

    #[test]
    fn type_inference() {
        let l = layout();
        let int_add = BExpr::Binary {
            op: BinOp::Add,
            left: Box::new(BExpr::Col(0)),
            right: Box::new(BExpr::Lit(Value::Int(1))),
        };
        assert_eq!(int_add.dtype(&l), DataType::Int);
        let mixed = BExpr::Binary {
            op: BinOp::Mul,
            left: Box::new(BExpr::Col(0)),
            right: Box::new(BExpr::Col(1)),
        };
        assert_eq!(mixed.dtype(&l), DataType::Float);
        let cmp = BExpr::Binary {
            op: BinOp::Lt,
            left: Box::new(BExpr::Col(0)),
            right: Box::new(BExpr::Col(1)),
        };
        assert_eq!(cmp.dtype(&l), DataType::Bool);
    }

    #[test]
    fn aggregates_rejected_by_bind() {
        let e = Expr::Aggregate {
            func: crate::ast::AggFunc::Sum,
            arg: Some(Box::new(Expr::col("a"))),
        };
        assert!(bind_expr(&e, &layout(), &no_fns).is_err());
    }

    // -- compiled programs ---------------------------------------------------

    /// Compiled evaluation must agree with the tree-walking reference,
    /// including the error/ok distinction.
    fn assert_parity(b: &BExpr, row: &[Value], params: &[Value]) {
        let p = Program::compile(b);
        match (b.eval(row, params), p.eval(row, params)) {
            (Ok(t), Ok(c)) => assert_eq!(t, c, "tree vs compiled value"),
            (Err(_), Err(_)) => {}
            (t, c) => panic!("divergence: tree={t:?} compiled={c:?}"),
        }
    }

    #[test]
    fn program_parity_basics() {
        let l = layout();
        let row = [Value::Int(3), Value::Float(1.5), Value::Int(7)];
        for sql in [
            "select a from t where t.a * 2 + 1 = 7",
            "select a from t where t.a > 1 and b < 2.0",
            "select a from t where t.a = 99 or u.a = 7",
            "select a from t where not (t.a = 3)",
            "select a from t where b is not null",
            "select a from t where -t.a < 0",
            "select a from t where t.a + u.a = ?",
        ] {
            let e = crate::parser::parse_query(sql)
                .unwrap()
                .where_clause
                .unwrap();
            let b = bind_expr(&e, &l, &no_fns).unwrap();
            assert_parity(&b, &row, &[Value::Int(10)]);
        }
    }

    #[test]
    fn program_short_circuits() {
        let div0 = BExpr::Binary {
            op: BinOp::Div,
            left: Box::new(BExpr::Lit(Value::Int(1))),
            right: Box::new(BExpr::Lit(Value::Int(0))),
        };
        let and = BExpr::Binary {
            op: BinOp::And,
            left: Box::new(BExpr::Lit(Value::Bool(false))),
            right: Box::new(div0.clone()),
        };
        assert_eq!(
            Program::compile(&and).eval(&[], &[]).unwrap(),
            Value::Bool(false)
        );
        let or = BExpr::Binary {
            op: BinOp::Or,
            left: Box::new(BExpr::Lit(Value::Bool(true))),
            right: Box::new(div0.clone()),
        };
        assert_eq!(
            Program::compile(&or).eval(&[], &[]).unwrap(),
            Value::Bool(true)
        );
        // A non-deciding left side still evaluates (and propagates) the
        // right side's error — exactly like the reference evaluator.
        let and_err = BExpr::Binary {
            op: BinOp::And,
            left: Box::new(BExpr::Lit(Value::Bool(true))),
            right: Box::new(div0),
        };
        assert_parity(&and_err, &[], &[]);
        assert!(Program::compile(&and_err).eval(&[], &[]).is_err());
        // NULL on the left does not short-circuit: the right side runs,
        // then the boolean fold rejects the NULL.
        let null_and = BExpr::Binary {
            op: BinOp::And,
            left: Box::new(BExpr::Lit(Value::Null)),
            right: Box::new(BExpr::Lit(Value::Bool(true))),
        };
        assert_parity(&null_and, &[], &[]);
        assert!(Program::compile(&null_and).eval(&[], &[]).is_err());
    }

    #[test]
    fn program_errors_match_reference() {
        let overflow = BExpr::Binary {
            op: BinOp::Add,
            left: Box::new(BExpr::Lit(Value::Int(i64::MAX))),
            right: Box::new(BExpr::Lit(Value::Int(1))),
        };
        assert_parity(&overflow, &[], &[]);
        assert_parity(&BExpr::Param(2), &[], &[Value::Int(1)]);
        assert_parity(
            &BExpr::Neg(Box::new(BExpr::Lit(Value::Bool(true)))),
            &[],
            &[],
        );
        assert_parity(&BExpr::Not(Box::new(BExpr::Lit(Value::Int(1)))), &[], &[]);
    }

    #[test]
    fn program_scalar_calls_and_stack_bound() {
        let f = ScalarFn {
            name: "add3".into(),
            returns: DataType::Float,
            f: Arc::new(|args| {
                Ok(Value::Float(
                    args.iter().map(|v| v.as_f64().unwrap()).sum::<f64>(),
                ))
            }),
            model_evals: 0,
        };
        let b = BExpr::Call {
            f,
            args: vec![
                BExpr::Lit(Value::Float(1.0)),
                BExpr::Lit(Value::Float(2.0)),
                BExpr::Lit(Value::Float(3.0)),
            ],
        };
        let p = Program::compile(&b);
        assert_eq!(p.eval(&[], &[]).unwrap(), Value::Float(6.0));
        assert!(p.max_stack >= 3, "three args pushed before the call");
        assert_parity(&b, &[], &[]);
    }

    #[test]
    fn program_eval_bool_null_is_false() {
        let p = Program::compile(&BExpr::Lit(Value::Null));
        assert!(!p.eval_bool(&[], &[]).unwrap());
        let p = Program::compile(&BExpr::Lit(Value::Int(1)));
        assert!(p.eval_bool(&[], &[]).is_err());
    }
}
