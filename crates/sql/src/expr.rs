//! Name-resolved ("bound") expressions and their evaluation.
//!
//! The parser produces [`crate::ast::Expr`] with textual column references;
//! before execution these are resolved against the flattened schema of the
//! current row layout into [`BExpr`], whose column references are plain
//! offsets. This keeps per-row evaluation allocation-free and O(1) per node.

use crate::ast::{BinOp, Expr};
use crate::error::{Result, SqlError};
use std::sync::Arc;
use strip_storage::{DataType, Value};

/// The boxed implementation of a scalar function.
pub type ScalarFnImpl = Arc<dyn Fn(&[Value]) -> Result<Value> + Send + Sync>;

/// A registered scalar function: pure `fn(&[Value]) -> Result<Value>` plus
/// its return type for schema inference.
#[derive(Clone)]
pub struct ScalarFn {
    /// Function name (lower-cased).
    pub name: String,
    /// Declared return type.
    pub returns: DataType,
    /// The implementation.
    pub f: ScalarFnImpl,
    /// Virtual cost charged per call, in addition to `Op::EvalExpr`; lets
    /// applications declare expensive model functions (paper §1: "pricing
    /// models ... often involve ... complicated statistics"). Interpreted by
    /// the cost model as `Op::ModelEval` repetitions.
    pub model_evals: u64,
}

impl std::fmt::Debug for ScalarFn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ScalarFn({} -> {})", self.name, self.returns.name())
    }
}

/// One column of the flattened row layout a query executes over.
#[derive(Debug, Clone)]
pub struct LayoutCol {
    /// FROM-item alias that contributed this column.
    pub qualifier: String,
    /// Column name.
    pub name: String,
    /// Declared type.
    pub dtype: DataType,
    /// Which FROM item (by position) the column came from.
    pub item: usize,
    /// Offset of this column within its FROM item's schema.
    pub item_offset: usize,
}

/// The flattened layout: the concatenated schemas of all bound FROM items.
#[derive(Debug, Clone, Default)]
pub struct Layout {
    pub cols: Vec<LayoutCol>,
}

impl Layout {
    /// Resolve a possibly-qualified column name to a flat offset.
    ///
    /// Unqualified names must be unambiguous across all FROM items — the
    /// classic SQL rule. Qualified names match on alias.
    pub fn resolve(&self, qualifier: &Option<String>, name: &str) -> Result<usize> {
        let name = name.to_ascii_lowercase();
        let mut hit = None;
        for (i, c) in self.cols.iter().enumerate() {
            let q_ok = match qualifier {
                Some(q) => c.qualifier == q.to_ascii_lowercase(),
                None => true,
            };
            if q_ok && c.name == name {
                if hit.is_some() {
                    return Err(SqlError::analyze(format!(
                        "ambiguous column reference `{}`",
                        display_name(qualifier, &name)
                    )));
                }
                hit = Some(i);
            }
        }
        hit.ok_or_else(|| {
            SqlError::analyze(format!(
                "unknown column `{}`",
                display_name(qualifier, &name)
            ))
        })
    }
}

fn display_name(q: &Option<String>, n: &str) -> String {
    match q {
        Some(q) => format!("{q}.{n}"),
        None => n.to_string(),
    }
}

/// A bound (name-resolved) scalar expression.
#[derive(Debug, Clone)]
pub enum BExpr {
    Lit(Value),
    /// Flat offset into the current row.
    Col(usize),
    Param(usize),
    Neg(Box<BExpr>),
    Not(Box<BExpr>),
    IsNull { expr: Box<BExpr>, negated: bool },
    Binary {
        op: BinOp,
        left: Box<BExpr>,
        right: Box<BExpr>,
    },
    Call {
        f: ScalarFn,
        args: Vec<BExpr>,
    },
}

impl BExpr {
    /// Infer the static type of this expression given the layout.
    pub fn dtype(&self, layout: &Layout) -> DataType {
        match self {
            BExpr::Lit(v) => v.data_type().unwrap_or(DataType::Float),
            BExpr::Col(i) => layout.cols[*i].dtype,
            BExpr::Param(_) => DataType::Float,
            BExpr::Neg(e) => e.dtype(layout),
            BExpr::Not(_) => DataType::Bool,
            BExpr::IsNull { .. } => DataType::Bool,
            BExpr::Binary { op, left, right } => match op {
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
                    let (l, r) = (left.dtype(layout), right.dtype(layout));
                    if l == DataType::Int && r == DataType::Int && *op != BinOp::Div {
                        DataType::Int
                    } else {
                        DataType::Float
                    }
                }
                _ => DataType::Bool,
            },
            BExpr::Call { f, .. } => f.returns,
        }
    }

    /// Evaluate against a flat row. `params` supplies `?` values.
    pub fn eval(&self, row: &[Value], params: &[Value]) -> Result<Value> {
        match self {
            BExpr::Lit(v) => Ok(v.clone()),
            BExpr::Col(i) => Ok(row[*i].clone()),
            BExpr::Param(i) => params
                .get(*i)
                .cloned()
                .ok_or_else(|| SqlError::exec(format!("missing parameter ?{}", i + 1))),
            BExpr::Neg(e) => match e.eval(row, params)? {
                Value::Int(i) => Ok(Value::Int(-i)),
                Value::Float(f) => Ok(Value::Float(-f)),
                other => Err(SqlError::exec(format!(
                    "cannot negate {}",
                    other.type_name()
                ))),
            },
            BExpr::IsNull { expr, negated } => {
                let v = expr.eval(row, params)?;
                Ok(Value::Bool(v.is_null() != *negated))
            }
            BExpr::Not(e) => match e.eval(row, params)? {
                Value::Bool(b) => Ok(Value::Bool(!b)),
                other => Err(SqlError::exec(format!(
                    "NOT applied to {}",
                    other.type_name()
                ))),
            },
            BExpr::Binary { op, left, right } => {
                let l = left.eval(row, params)?;
                // Short-circuit logical operators.
                match op {
                    BinOp::And => {
                        return if l == Value::Bool(false) {
                            Ok(Value::Bool(false))
                        } else {
                            let r = right.eval(row, params)?;
                            bool_op(&l, &r, |a, b| a && b)
                        }
                    }
                    BinOp::Or => {
                        return if l == Value::Bool(true) {
                            Ok(Value::Bool(true))
                        } else {
                            let r = right.eval(row, params)?;
                            bool_op(&l, &r, |a, b| a || b)
                        }
                    }
                    _ => {}
                }
                let r = right.eval(row, params)?;
                match op {
                    BinOp::Add => arith(&l, &r, |a, b| a + b, i64::checked_add),
                    BinOp::Sub => arith(&l, &r, |a, b| a - b, i64::checked_sub),
                    BinOp::Mul => arith(&l, &r, |a, b| a * b, i64::checked_mul),
                    BinOp::Div => {
                        // SQL-style: division always yields float; divide by
                        // zero is an execution error.
                        let (a, b) = both_f64(&l, &r)?;
                        if b == 0.0 {
                            Err(SqlError::exec("division by zero"))
                        } else {
                            Ok(Value::Float(a / b))
                        }
                    }
                    BinOp::Eq => Ok(Value::Bool(l == r)),
                    BinOp::NotEq => Ok(Value::Bool(l != r)),
                    BinOp::Lt => Ok(Value::Bool(l < r)),
                    BinOp::LtEq => Ok(Value::Bool(l <= r)),
                    BinOp::Gt => Ok(Value::Bool(l > r)),
                    BinOp::GtEq => Ok(Value::Bool(l >= r)),
                    BinOp::And | BinOp::Or => unreachable!("handled above"),
                }
            }
            BExpr::Call { f, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(a.eval(row, params)?);
                }
                (f.f)(&vals)
            }
        }
    }

    /// Evaluate and require a boolean (for predicates).
    pub fn eval_bool(&self, row: &[Value], params: &[Value]) -> Result<bool> {
        match self.eval(row, params)? {
            Value::Bool(b) => Ok(b),
            Value::Null => Ok(false),
            other => Err(SqlError::exec(format!(
                "predicate evaluated to {} instead of bool",
                other.type_name()
            ))),
        }
    }
}

fn both_f64(l: &Value, r: &Value) -> Result<(f64, f64)> {
    match (l.as_f64(), r.as_f64()) {
        (Some(a), Some(b)) => Ok((a, b)),
        _ => Err(SqlError::exec(format!(
            "arithmetic on non-numeric values ({}, {})",
            l.type_name(),
            r.type_name()
        ))),
    }
}

fn arith(
    l: &Value,
    r: &Value,
    ff: impl Fn(f64, f64) -> f64,
    fi: impl Fn(i64, i64) -> Option<i64>,
) -> Result<Value> {
    if let (Value::Int(a), Value::Int(b)) = (l, r) {
        return fi(*a, *b)
            .map(Value::Int)
            .ok_or_else(|| SqlError::exec("integer overflow"));
    }
    let (a, b) = both_f64(l, r)?;
    Ok(Value::Float(ff(a, b)))
}

fn bool_op(l: &Value, r: &Value, f: impl Fn(bool, bool) -> bool) -> Result<Value> {
    match (l.as_bool(), r.as_bool()) {
        (Some(a), Some(b)) => Ok(Value::Bool(f(a, b))),
        _ => Err(SqlError::exec("logical operator on non-boolean values")),
    }
}

/// Resolve an AST expression against a layout. Aggregates are rejected here;
/// grouped queries extract them before binding (see the executor).
pub fn bind_expr(
    e: &Expr,
    layout: &Layout,
    fns: &dyn Fn(&str) -> Option<ScalarFn>,
) -> Result<BExpr> {
    Ok(match e {
        Expr::IntLit(i) => BExpr::Lit(Value::Int(*i)),
        Expr::FloatLit(f) => BExpr::Lit(Value::Float(*f)),
        Expr::StrLit(s) => BExpr::Lit(Value::str(s)),
        Expr::BoolLit(b) => BExpr::Lit(Value::Bool(*b)),
        Expr::NullLit => BExpr::Lit(Value::Null),
        Expr::Param(i) => BExpr::Param(*i),
        Expr::IsNull { expr, negated } => BExpr::IsNull {
            expr: Box::new(bind_expr(expr, layout, fns)?),
            negated: *negated,
        },
        Expr::Column { qualifier, name } => BExpr::Col(layout.resolve(qualifier, name)?),
        Expr::Neg(inner) => BExpr::Neg(Box::new(bind_expr(inner, layout, fns)?)),
        Expr::Not(inner) => BExpr::Not(Box::new(bind_expr(inner, layout, fns)?)),
        Expr::Binary { op, left, right } => BExpr::Binary {
            op: *op,
            left: Box::new(bind_expr(left, layout, fns)?),
            right: Box::new(bind_expr(right, layout, fns)?),
        },
        Expr::Aggregate { .. } => {
            return Err(SqlError::analyze(
                "aggregate function not allowed in this context",
            ))
        }
        Expr::Call { name, args } => {
            let f = fns(name)
                .ok_or_else(|| SqlError::analyze(format!("unknown function `{name}`")))?;
            BExpr::Call {
                f,
                args: args
                    .iter()
                    .map(|a| bind_expr(a, layout, fns))
                    .collect::<Result<_>>()?,
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> Layout {
        Layout {
            cols: vec![
                LayoutCol {
                    qualifier: "t".into(),
                    name: "a".into(),
                    dtype: DataType::Int,
                    item: 0,
                    item_offset: 0,
                },
                LayoutCol {
                    qualifier: "t".into(),
                    name: "b".into(),
                    dtype: DataType::Float,
                    item: 0,
                    item_offset: 1,
                },
                LayoutCol {
                    qualifier: "u".into(),
                    name: "a".into(),
                    dtype: DataType::Int,
                    item: 1,
                    item_offset: 0,
                },
            ],
        }
    }

    fn no_fns(_: &str) -> Option<ScalarFn> {
        None
    }

    #[test]
    fn resolve_qualified_and_ambiguous() {
        let l = layout();
        assert_eq!(l.resolve(&Some("t".into()), "a").unwrap(), 0);
        assert_eq!(l.resolve(&Some("u".into()), "a").unwrap(), 2);
        assert_eq!(l.resolve(&None, "b").unwrap(), 1);
        assert!(l.resolve(&None, "a").is_err(), "ambiguous");
        assert!(l.resolve(&None, "zzz").is_err());
    }

    #[test]
    fn arithmetic_and_comparison() {
        let l = layout();
        let e = crate::parser::parse_query("select a from t where t.a * 2 + 1 = 7")
            .unwrap()
            .where_clause
            .unwrap();
        let b = bind_expr(&e, &l, &no_fns).unwrap();
        assert!(b.eval_bool(&[Value::Int(3), Value::Float(0.0), Value::Int(0)], &[]).unwrap());
        assert!(!b.eval_bool(&[Value::Int(4), Value::Float(0.0), Value::Int(0)], &[]).unwrap());
    }

    #[test]
    fn division_is_float_and_checked() {
        let b = BExpr::Binary {
            op: BinOp::Div,
            left: Box::new(BExpr::Lit(Value::Int(7))),
            right: Box::new(BExpr::Lit(Value::Int(2))),
        };
        assert_eq!(b.eval(&[], &[]).unwrap(), Value::Float(3.5));
        let z = BExpr::Binary {
            op: BinOp::Div,
            left: Box::new(BExpr::Lit(Value::Int(1))),
            right: Box::new(BExpr::Lit(Value::Int(0))),
        };
        assert!(z.eval(&[], &[]).is_err());
    }

    #[test]
    fn integer_overflow_detected() {
        let b = BExpr::Binary {
            op: BinOp::Add,
            left: Box::new(BExpr::Lit(Value::Int(i64::MAX))),
            right: Box::new(BExpr::Lit(Value::Int(1))),
        };
        assert!(b.eval(&[], &[]).is_err());
    }

    #[test]
    fn short_circuit_and_or() {
        // `false and (1/0)` must not evaluate the division.
        let div0 = BExpr::Binary {
            op: BinOp::Div,
            left: Box::new(BExpr::Lit(Value::Int(1))),
            right: Box::new(BExpr::Lit(Value::Int(0))),
        };
        let e = BExpr::Binary {
            op: BinOp::And,
            left: Box::new(BExpr::Lit(Value::Bool(false))),
            right: Box::new(div0.clone()),
        };
        assert_eq!(e.eval(&[], &[]).unwrap(), Value::Bool(false));
        let e = BExpr::Binary {
            op: BinOp::Or,
            left: Box::new(BExpr::Lit(Value::Bool(true))),
            right: Box::new(div0),
        };
        assert_eq!(e.eval(&[], &[]).unwrap(), Value::Bool(true));
    }

    #[test]
    fn params_and_missing_params() {
        let e = BExpr::Param(0);
        assert_eq!(e.eval(&[], &[Value::Int(9)]).unwrap(), Value::Int(9));
        assert!(e.eval(&[], &[]).is_err());
    }

    #[test]
    fn scalar_function_call() {
        let f = ScalarFn {
            name: "twice".into(),
            returns: DataType::Float,
            f: Arc::new(|args| Ok(Value::Float(args[0].as_f64().unwrap() * 2.0))),
            model_evals: 0,
        };
        let fns = move |n: &str| if n == "twice" { Some(f.clone()) } else { None };
        let ast = Expr::Call {
            name: "twice".into(),
            args: vec![Expr::FloatLit(2.5)],
        };
        let b = bind_expr(&ast, &Layout::default(), &fns).unwrap();
        assert_eq!(b.eval(&[], &[]).unwrap(), Value::Float(5.0));
        assert_eq!(b.dtype(&Layout::default()), DataType::Float);
    }

    #[test]
    fn type_inference() {
        let l = layout();
        let int_add = BExpr::Binary {
            op: BinOp::Add,
            left: Box::new(BExpr::Col(0)),
            right: Box::new(BExpr::Lit(Value::Int(1))),
        };
        assert_eq!(int_add.dtype(&l), DataType::Int);
        let mixed = BExpr::Binary {
            op: BinOp::Mul,
            left: Box::new(BExpr::Col(0)),
            right: Box::new(BExpr::Col(1)),
        };
        assert_eq!(mixed.dtype(&l), DataType::Float);
        let cmp = BExpr::Binary {
            op: BinOp::Lt,
            left: Box::new(BExpr::Col(0)),
            right: Box::new(BExpr::Col(1)),
        };
        assert_eq!(cmp.dtype(&l), DataType::Bool);
    }

    #[test]
    fn aggregates_rejected_by_bind() {
        let e = Expr::Aggregate {
            func: crate::ast::AggFunc::Sum,
            arg: Some(Box::new(Expr::col("a"))),
        };
        assert!(bind_expr(&e, &layout(), &no_fns).is_err());
    }
}
