//! Incremental delta maintenance of derived tables.
//!
//! A derived table of the shape `D(key, value)` with `value = Σ w·x` over
//! base rows is *incrementally maintainable*: when a rule firing delivers
//! the old and new images of the changed base rows, the new derived value
//! is the old one plus `Δ = Σ w·(new − old)` — no re-aggregation over the
//! unchanged base rows. A [`DeltaSpec`] describes one such derived table
//! (which bound-table columns carry the key, weight, and old/new values,
//! and how to recompute a single key from scratch); [`delta_apply`] sweeps
//! the bound table column-at-a-time, folds the per-key deltas, and applies
//! them with one `update D set value += ? where key = ?` per affected key.
//!
//! Correctness leans on two facts:
//!
//! * each base change appears **exactly once** in the bound rows — old/new
//!   transition images of one update share an `execute_order`, so the
//!   rule's `new.execute_order = old.execute_order` join pairs them 1:1;
//! * coalesced firings append their rows to the pending bound table, so a
//!   merged action's sum telescopes (`w(n₁−o₁) + w(n₂−n₁) = w(n₂−o₁)`).
//!
//! Floating-point drift is bounded by *rebase checkpoints*: every
//! `checkpoint_every` firings the affected keys are recomputed from
//! scratch ([`DeltaSpec::recompute_sql`]) and the stored value is replaced
//! whenever it strays beyond `epsilon`. The FNV digests below give callers
//! a cheap row-level equivalence oracle between a delta-maintained table
//! and an independent recompute.

use crate::ast::{Query, Statement, Update};
use crate::error::{Result, SqlError};
use crate::exec::{execute_query, execute_update, Env};
use crate::parser::parse_statement;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use strip_storage::{TempTable, Value};

/// Planted delta-application bugs for oracle self-tests (hidden; the chaos
/// and mutant suites prove the digest oracle catches each one).
#[doc(hidden)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeltaMutant {
    /// Correct behavior.
    #[default]
    None,
    /// Forget the `old` subtraction: apply `Σ w·new` instead of
    /// `Σ w·(new − old)`.
    DropOldSubtraction,
    /// Double-apply the deltas of a merged (coalesced) firing, as if the
    /// appended rows had been processed once per contributing firing.
    DoubleApply,
}

/// Running counters of one spec's delta activity (all lifetime totals).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Delta firings applied.
    pub fired: u64,
    /// Derived keys updated in place across all firings.
    pub keys_applied: u64,
    /// Checkpoint passes run.
    pub checkpoints: u64,
    /// Stored values replaced by a checkpoint recompute (drift > epsilon).
    pub rebases: u64,
}

/// How one user function incrementally maintains its derived table.
///
/// Registered alongside the function (the function itself stays as the
/// recompute fallback); the rule engine attaches the spec to an action only
/// when the rule's evaluate query is classified delta-capable and the
/// engine runs in delta maintenance mode.
pub struct DeltaSpec {
    /// Derived table being maintained.
    pub derived_table: String,
    /// Its key column.
    pub derived_key: String,
    /// Its maintained (summed) value column.
    pub derived_value: String,
    /// Bound table the rule passes to the action.
    pub bound_table: String,
    /// Bound-table column holding the derived key of each row.
    pub key: String,
    /// Bound-table weight column; `None` = weight 1.
    pub weight: Option<String>,
    /// Bound-table column with the pre-change value.
    pub old: String,
    /// Bound-table column with the post-change value.
    pub new: String,
    /// One-parameter query recomputing a single key from scratch; must
    /// return the fresh value in a column named like `derived_value` (zero
    /// rows mean the key has no base rows and is skipped).
    pub recompute_sql: String,
    /// Run a rebase checkpoint every N delta firings (0 = never).
    pub checkpoint_every: u64,
    /// Maximum tolerated |stored − recomputed| before a rebase.
    pub epsilon: f64,

    apply_stmt: Update,
    set_stmt: Update,
    lookup: Query,
    recompute: Query,
    fired: AtomicU64,
    keys_applied: AtomicU64,
    checkpoints: AtomicU64,
    rebases: AtomicU64,
    mutant: DeltaMutant,
}

impl std::fmt::Debug for DeltaSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeltaSpec")
            .field("derived_table", &self.derived_table)
            .field("bound_table", &self.bound_table)
            .field("checkpoint_every", &self.checkpoint_every)
            .finish()
    }
}

fn parse_update(sql: &str) -> Result<Update> {
    match parse_statement(sql)? {
        Statement::Update(u) => Ok(u),
        _ => Err(SqlError::analyze("expected an UPDATE statement")),
    }
}

fn parse_select(sql: &str) -> Result<Query> {
    match parse_statement(sql)? {
        Statement::Select(q) => Ok(q),
        _ => Err(SqlError::analyze("expected a SELECT statement")),
    }
}

impl DeltaSpec {
    /// Describe a weighted-sum derived table. `weight` of `None` maintains
    /// a plain sum. `recompute_sql` takes the derived key as its single `?`
    /// parameter and must yield the fresh value under the
    /// `derived_value` column name.
    #[allow(clippy::too_many_arguments)]
    pub fn weighted_sum(
        derived_table: &str,
        derived_key: &str,
        derived_value: &str,
        bound_table: &str,
        key: &str,
        weight: Option<&str>,
        old: &str,
        new: &str,
        recompute_sql: &str,
    ) -> Result<DeltaSpec> {
        let apply_stmt = parse_update(&format!(
            "update {derived_table} set {derived_value} += ? where {derived_key} = ?"
        ))?;
        let set_stmt = parse_update(&format!(
            "update {derived_table} set {derived_value} = ? where {derived_key} = ?"
        ))?;
        let lookup = parse_select(&format!(
            "select {derived_value} from {derived_table} where {derived_key} = ?"
        ))?;
        let recompute = parse_select(recompute_sql)?;
        Ok(DeltaSpec {
            derived_table: derived_table.to_string(),
            derived_key: derived_key.to_string(),
            derived_value: derived_value.to_string(),
            bound_table: bound_table.to_string(),
            key: key.to_string(),
            weight: weight.map(str::to_string),
            old: old.to_string(),
            new: new.to_string(),
            recompute_sql: recompute_sql.to_string(),
            checkpoint_every: 64,
            epsilon: 1e-6,
            apply_stmt,
            set_stmt,
            lookup,
            recompute,
            fired: AtomicU64::new(0),
            keys_applied: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
            rebases: AtomicU64::new(0),
            mutant: DeltaMutant::None,
        })
    }

    /// Override the checkpoint cadence (0 disables checkpoints).
    pub fn with_checkpoint_every(mut self, every: u64) -> DeltaSpec {
        self.checkpoint_every = every;
        self
    }

    /// Override the rebase tolerance.
    pub fn with_epsilon(mut self, epsilon: f64) -> DeltaSpec {
        self.epsilon = epsilon;
        self
    }

    /// Plant a delta bug for oracle self-tests.
    #[doc(hidden)]
    pub fn with_mutant(mut self, mutant: DeltaMutant) -> DeltaSpec {
        self.mutant = mutant;
        self
    }

    /// Lifetime counters.
    pub fn stats(&self) -> DeltaStats {
        DeltaStats {
            fired: self.fired.load(Ordering::Relaxed),
            keys_applied: self.keys_applied.load(Ordering::Relaxed),
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            rebases: self.rebases.load(Ordering::Relaxed),
        }
    }
}

/// Outcome of one delta firing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaOutcome {
    /// Bound rows folded.
    pub rows: usize,
    /// Distinct derived keys updated in place.
    pub keys: usize,
    /// Keys rebased by the checkpoint this firing triggered (0 when no
    /// checkpoint ran).
    pub rebased: usize,
}

/// Fold the bound table into per-key deltas and apply them in place:
/// `Δ(key) = Σ w·(new − old)`, one increment update per affected key in
/// sorted key order (deterministic lock order). `merges` is the number of
/// firings coalesced into this action's bound table (≥ 1).
///
/// Runs the spec's rebase checkpoint over the affected keys every
/// `checkpoint_every` firings.
pub fn delta_apply(
    env: &dyn Env,
    spec: &DeltaSpec,
    bound: &TempTable,
    merges: u64,
) -> Result<DeltaOutcome> {
    let schema = bound.schema();
    let k = schema.index_of_ok(&spec.key)?;
    let w = match &spec.weight {
        Some(c) => Some(schema.index_of_ok(c)?),
        None => None,
    };
    let o = schema.index_of_ok(&spec.old)?;
    let n = schema.index_of_ok(&spec.new)?;

    // One columnar sweep over the bound table, folding into per-key sums
    // (first-seen order retained, then sorted for a deterministic apply).
    let mut index: HashMap<Value, usize> = HashMap::new();
    let mut acc: Vec<(Value, f64)> = Vec::new();
    let numeric = |v: &Value, what: &str| -> Result<f64> {
        v.as_f64()
            .ok_or_else(|| SqlError::exec(format!("delta {what} column is not numeric")))
    };
    for r in 0..bound.len() {
        let row = bound.row_values(r);
        let weight = match w {
            Some(c) => numeric(&row[c], "weight")?,
            None => 1.0,
        };
        let old = numeric(&row[o], "old")?;
        let new = numeric(&row[n], "new")?;
        let d = match spec.mutant {
            DeltaMutant::DropOldSubtraction => weight * new,
            _ => weight * (new - old),
        };
        let key = row[k].clone();
        match index.get(&key) {
            Some(&i) => acc[i].1 += d,
            None => {
                index.insert(key.clone(), acc.len());
                acc.push((key, d));
            }
        }
    }
    acc.sort_by(|a, b| a.0.cmp(&b.0));

    let applications = match spec.mutant {
        DeltaMutant::DoubleApply if merges > 1 => 2,
        _ => 1,
    };
    for (key, d) in &acc {
        for _ in 0..applications {
            execute_update(env, &spec.apply_stmt, &[Value::Float(*d), key.clone()])?;
        }
    }

    spec.keys_applied
        .fetch_add(acc.len() as u64, Ordering::Relaxed);
    let fired = spec.fired.fetch_add(1, Ordering::Relaxed) + 1;
    let rebased = if spec.checkpoint_every > 0 && fired.is_multiple_of(spec.checkpoint_every) {
        let keys: Vec<Value> = acc.iter().map(|(k, _)| k.clone()).collect();
        checkpoint(env, spec, &keys)?
    } else {
        0
    };

    Ok(DeltaOutcome {
        rows: bound.len(),
        keys: acc.len(),
        rebased,
    })
}

/// Recompute each key from scratch and replace the stored value wherever
/// accumulated float error exceeds the spec's epsilon. Returns the number
/// of keys rebased.
pub fn checkpoint(env: &dyn Env, spec: &DeltaSpec, keys: &[Value]) -> Result<usize> {
    spec.checkpoints.fetch_add(1, Ordering::Relaxed);
    let mut rebased = 0;
    for key in keys {
        let fresh = execute_query(env, &spec.recompute, std::slice::from_ref(key))?;
        if fresh.is_empty() {
            // No base rows for this key anymore; nothing to rebase against.
            continue;
        }
        let Some(fresh) = fresh.single(&spec.derived_value)?.as_f64() else {
            continue;
        };
        let stored = execute_query(env, &spec.lookup, std::slice::from_ref(key))?;
        let Some(stored) = stored
            .rows
            .first()
            .and_then(|r| r.first())
            .and_then(Value::as_f64)
        else {
            continue;
        };
        if (stored - fresh).abs() > spec.epsilon {
            execute_update(env, &spec.set_stmt, &[Value::Float(fresh), key.clone()])?;
            rebased += 1;
        }
    }
    spec.rebases.fetch_add(rebased as u64, Ordering::Relaxed);
    Ok(rebased)
}

// ---------------------------------------------------------------------------
// Row digests (FNV-1a): the delta-vs-recompute equivalence oracle
// ---------------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn fnv_value(mut h: u64, v: &Value) -> u64 {
    match v {
        Value::Null => fnv_bytes(h, &[0]),
        Value::Int(i) => {
            h = fnv_bytes(h, &[1]);
            fnv_bytes(h, &i.to_le_bytes())
        }
        Value::Float(f) => {
            h = fnv_bytes(h, &[2]);
            // Bit-exact: a delta path that lands on a different float than
            // the recompute path must produce a different digest.
            fnv_bytes(h, &f.to_bits().to_le_bytes())
        }
        Value::Str(s) => {
            h = fnv_bytes(h, &[3]);
            h = fnv_bytes(h, &(s.len() as u64).to_le_bytes());
            fnv_bytes(h, s.as_bytes())
        }
        Value::Bool(b) => fnv_bytes(h, &[4, *b as u8]),
        Value::Timestamp(t) => {
            h = fnv_bytes(h, &[5]);
            fnv_bytes(h, &t.to_le_bytes())
        }
    }
}

/// FNV-1a digest over rows in the given order (callers wanting an
/// order-insensitive digest sort first, e.g. via `order by` in the query).
pub fn digest_rows<'a>(rows: impl IntoIterator<Item = &'a Vec<Value>>) -> u64 {
    let mut h = FNV_OFFSET;
    for row in rows {
        h = fnv_bytes(h, &(row.len() as u64).to_le_bytes());
        for v in row {
            h = fnv_value(h, v);
        }
    }
    h
}

/// Digest a materialized result set row-by-row.
pub fn digest_result(rs: &crate::exec::ResultSet) -> u64 {
    digest_rows(rs.rows.iter())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> DeltaSpec {
        DeltaSpec::weighted_sum(
            "comp_prices",
            "comp",
            "price",
            "matches",
            "comp",
            Some("weight"),
            "old_price",
            "new_price",
            "select sum(price * weight) as price from stocks, comps_list \
             where stocks.symbol = comps_list.symbol and comp = ?",
        )
        .unwrap()
    }

    #[test]
    fn spec_parses_statements() {
        let s = spec();
        assert_eq!(s.apply_stmt.table, "comp_prices");
        assert!(s.apply_stmt.assignments[0].increment);
        assert!(!s.set_stmt.assignments[0].increment);
        assert_eq!(s.checkpoint_every, 64);
    }

    #[test]
    fn bad_recompute_sql_rejected() {
        let e = DeltaSpec::weighted_sum(
            "d",
            "k",
            "v",
            "b",
            "k",
            None,
            "o",
            "n",
            "update d set v = 1",
        );
        assert!(e.is_err());
    }

    #[test]
    fn digest_is_order_and_value_sensitive() {
        let a = [vec![Value::from("x"), Value::Float(1.0)]];
        let b = [vec![Value::from("x"), Value::Float(1.0 + 1e-12)]];
        let c = vec![
            vec![Value::from("x"), Value::Float(1.0)],
            vec![Value::from("y"), Value::Float(2.0)],
        ];
        let mut d = c.clone();
        d.reverse();
        assert_eq!(digest_rows(a.iter()), digest_rows(a.iter()));
        assert_ne!(digest_rows(a.iter()), digest_rows(b.iter()));
        assert_ne!(digest_rows(c.iter()), digest_rows(d.iter()));
        // Row-boundary sensitivity: [x,1],[y] ≠ [x],[1,y].
        let e = [
            vec![Value::from("x"), Value::Int(1)],
            vec![Value::from("y")],
        ];
        let f = [
            vec![Value::from("x")],
            vec![Value::Int(1), Value::from("y")],
        ];
        assert_ne!(digest_rows(e.iter()), digest_rows(f.iter()));
    }

    #[test]
    fn digest_distinguishes_int_and_float() {
        let a = [vec![Value::Int(1)]];
        let b = [vec![Value::Float(1.0)]];
        assert_ne!(digest_rows(a.iter()), digest_rows(b.iter()));
    }
}
