//! Abstract syntax tree for the STRIP SQL subset and rule DDL.
//!
//! The rule-definition grammar follows Figure 2 of the paper:
//!
//! ```text
//! create rule rule-name on t-name
//!    when transition-predicate
//!        [ if condition ]
//!    then
//!        [ evaluate query-commalist ]
//!        execute function-name
//!        [ unique [on column-commalist] ]
//!        [ after time-value ]
//! ```

use strip_storage::DataType;

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    CreateTable(CreateTable),
    CreateIndex(CreateIndex),
    CreateView(CreateView),
    CreateRule(CreateRule),
    CreateTimer(CreateTimer),
    DropTable { name: String },
    DropRule { name: String },
    DropTimer { name: String },
    Select(Query),
    Insert(Insert),
    Update(Update),
    Delete(Delete),
}

/// `CREATE TABLE name (col type, ...)`
#[derive(Debug, Clone, PartialEq)]
pub struct CreateTable {
    pub name: String,
    pub columns: Vec<(String, DataType)>,
}

/// `CREATE INDEX name ON table (column) [USING HASH | RBTREE]`
#[derive(Debug, Clone, PartialEq)]
pub struct CreateIndex {
    pub name: String,
    pub table: String,
    pub column: String,
    pub using_rbtree: bool,
}

/// `CREATE [MATERIALIZED] VIEW name AS query`
#[derive(Debug, Clone, PartialEq)]
pub struct CreateView {
    pub name: String,
    pub materialized: bool,
    pub query: Query,
}

/// `CREATE TIMER name EVERY t SECONDS EXECUTE f [LIMIT n]` — periodic
/// recomputation (the paper notes STRIP supports periodic recomputation,
/// e.g. for `stock_stdev`; §3).
#[derive(Debug, Clone, PartialEq)]
pub struct CreateTimer {
    pub name: String,
    /// Firing interval in microseconds.
    pub every_us: u64,
    /// User function run on each firing.
    pub execute: String,
    /// Maximum number of firings; `None` = forever.
    pub limit: Option<u64>,
}

/// The triggering events of a rule (`when` clause).
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    Inserted,
    Deleted,
    /// `updated` optionally restricted to specific columns.
    Updated(Vec<String>),
}

/// `CREATE RULE` — Figure 2.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateRule {
    pub name: String,
    /// The table the rule is defined on (`on t-name`).
    pub table: String,
    /// Transition predicate: one to three events.
    pub events: Vec<Event>,
    /// `if` condition: queries, each optionally bound. Condition is true iff
    /// every query returns at least one row (vacuously true when empty).
    pub condition: Vec<BindableQuery>,
    /// `evaluate` queries: run only if the condition holds; used solely to
    /// pass bound tables to the action.
    pub evaluate: Vec<BindableQuery>,
    /// Name of the user function run by the action transaction.
    pub execute: String,
    /// `unique` / `unique on (cols)`: `None` = not unique; `Some(vec![])` =
    /// coarse batching; `Some(cols)` = batch per distinct value combination.
    pub unique: Option<Vec<String>>,
    /// Release delay in virtual microseconds (`after x seconds`).
    pub after_us: u64,
    /// Optional staleness SLO declared with the rule (`slo <table> p99 <t>`).
    pub slo: Option<SloClause>,
}

/// `slo [on] <derived-table> [p99] <bound> [unit]` — declares a staleness
/// objective for the derived table this rule maintains: the per-window p99
/// lag between a base commit and the derived commit absorbing it must stay
/// within the bound. The table is named explicitly because the maintained
/// table is hidden inside the opaque `execute` function.
#[derive(Debug, Clone, PartialEq)]
pub struct SloClause {
    pub table: String,
    pub p99_bound_us: u64,
}

/// A query optionally bound as a named table (`... bind as name`).
#[derive(Debug, Clone, PartialEq)]
pub struct BindableQuery {
    pub query: Query,
    pub bind_as: Option<String>,
}

/// A `SELECT` query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// `SELECT DISTINCT` deduplicates output rows.
    pub distinct: bool,
    pub items: Vec<SelectItem>,
    pub from: Vec<TableRef>,
    pub where_clause: Option<Expr>,
    pub group_by: Vec<Expr>,
    /// `HAVING` filter over grouped output.
    pub having: Option<Expr>,
    pub order_by: Vec<(Expr, bool)>, // (expr, descending)
    pub limit: Option<u64>,
}

/// One item of the select list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(String),
    /// `expr [AS name]`
    Expr { expr: Expr, alias: Option<String> },
}

/// A table reference in `FROM`.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    pub table: String,
    /// Alias; defaults to the table name.
    pub alias: String,
}

/// `INSERT INTO t [ (cols) ] VALUES (...), ... | SELECT ...`
#[derive(Debug, Clone, PartialEq)]
pub struct Insert {
    pub table: String,
    pub columns: Vec<String>,
    pub source: InsertSource,
}

/// The rows being inserted.
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::large_enum_variant)] // Query is big; InsertSource is never stored in bulk
pub enum InsertSource {
    Values(Vec<Vec<Expr>>),
    Query(Query),
}

/// `UPDATE t SET assignments [WHERE expr]`
#[derive(Debug, Clone, PartialEq)]
pub struct Update {
    pub table: String,
    pub assignments: Vec<Assignment>,
    pub where_clause: Option<Expr>,
}

/// `col = expr` or the paper's increment form `col += expr`.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    pub column: String,
    pub expr: Expr,
    /// True for `+=` (the paper's `set price += composite_change`).
    pub increment: bool,
}

/// `DELETE FROM t [WHERE expr]`
#[derive(Debug, Clone, PartialEq)]
pub struct Delete {
    pub table: String,
    pub where_clause: Option<Expr>,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
}

impl BinOp {
    /// Parser precedence (higher binds tighter).
    pub fn precedence(self) -> u8 {
        match self {
            BinOp::Or => 1,
            BinOp::And => 2,
            BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => 3,
            BinOp::Add | BinOp::Sub => 4,
            BinOp::Mul | BinOp::Div => 5,
        }
    }

    /// SQL spelling for display.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Eq => "=",
            BinOp::NotEq => "<>",
            BinOp::Lt => "<",
            BinOp::LtEq => "<=",
            BinOp::Gt => ">",
            BinOp::GtEq => ">=",
            BinOp::And => "and",
            BinOp::Or => "or",
        }
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Sum,
    Count,
    Avg,
    Min,
    Max,
    /// Population variance.
    Var,
    /// Population standard deviation (what `stock_stdev` holds, §3).
    Stddev,
}

impl AggFunc {
    /// Parse by (lower-cased) name.
    pub fn from_name(name: &str) -> Option<AggFunc> {
        Some(match name {
            "sum" => AggFunc::Sum,
            "count" => AggFunc::Count,
            "avg" => AggFunc::Avg,
            "min" => AggFunc::Min,
            "max" => AggFunc::Max,
            "var" | "variance" => AggFunc::Var,
            "stddev" | "stdev" => AggFunc::Stddev,
            _ => return None,
        })
    }

    /// SQL spelling.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Sum => "sum",
            AggFunc::Count => "count",
            AggFunc::Avg => "avg",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Var => "var",
            AggFunc::Stddev => "stddev",
        }
    }
}

/// Scalar-valued expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `NULL` literal.
    NullLit,
    /// Integer literal.
    IntLit(i64),
    /// Float literal.
    FloatLit(f64),
    /// String literal.
    StrLit(String),
    /// Boolean literal.
    BoolLit(bool),
    /// Column reference, optionally qualified: `price` or `new.price`.
    Column {
        qualifier: Option<String>,
        name: String,
    },
    /// `?` positional parameter (0-based position assigned by the parser).
    Param(usize),
    /// Unary minus.
    Neg(Box<Expr>),
    /// Logical not.
    Not(Box<Expr>),
    /// Binary operation.
    Binary {
        op: BinOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    /// `expr IS [NOT] NULL`.
    IsNull { expr: Box<Expr>, negated: bool },
    /// Aggregate call; `None` argument means `count(*)`.
    Aggregate {
        func: AggFunc,
        arg: Option<Box<Expr>>,
    },
    /// Registered scalar function call, e.g. `f_bs(price, strike, ...)`.
    Call { name: String, args: Vec<Expr> },
}

impl Expr {
    /// Convenience constructor for an unqualified column.
    pub fn col(name: &str) -> Expr {
        Expr::Column {
            qualifier: None,
            name: name.to_string(),
        }
    }

    /// Convenience constructor for a qualified column.
    pub fn qcol(q: &str, name: &str) -> Expr {
        Expr::Column {
            qualifier: Some(q.to_string()),
            name: name.to_string(),
        }
    }

    /// True if this expression (transitively) contains an aggregate call.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Aggregate { .. } => true,
            Expr::IsNull { expr, .. } => expr.contains_aggregate(),
            Expr::Neg(e) | Expr::Not(e) => e.contains_aggregate(),
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::Call { args, .. } => args.iter().any(Expr::contains_aggregate),
            _ => false,
        }
    }

    /// Visit every column reference in the expression.
    pub fn visit_columns<'a>(&'a self, f: &mut impl FnMut(&'a Option<String>, &'a str)) {
        match self {
            Expr::Column { qualifier, name } => f(qualifier, name),
            Expr::IsNull { expr, .. } => expr.visit_columns(f),
            Expr::Neg(e) | Expr::Not(e) => e.visit_columns(f),
            Expr::Binary { left, right, .. } => {
                left.visit_columns(f);
                right.visit_columns(f);
            }
            Expr::Aggregate { arg: Some(a), .. } => a.visit_columns(f),
            Expr::Call { args, .. } => {
                for a in args {
                    a.visit_columns(f);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precedence_ordering() {
        assert!(BinOp::Mul.precedence() > BinOp::Add.precedence());
        assert!(BinOp::Add.precedence() > BinOp::Eq.precedence());
        assert!(BinOp::Eq.precedence() > BinOp::And.precedence());
        assert!(BinOp::And.precedence() > BinOp::Or.precedence());
    }

    #[test]
    fn aggregate_detection() {
        let e = Expr::Binary {
            op: BinOp::Mul,
            left: Box::new(Expr::col("w")),
            right: Box::new(Expr::Aggregate {
                func: AggFunc::Sum,
                arg: Some(Box::new(Expr::col("x"))),
            }),
        };
        assert!(e.contains_aggregate());
        assert!(!Expr::col("x").contains_aggregate());
    }

    #[test]
    fn visit_columns_reaches_nested() {
        let e = Expr::Call {
            name: "f".into(),
            args: vec![
                Expr::qcol("new", "price"),
                Expr::Neg(Box::new(Expr::col("w"))),
            ],
        };
        let mut seen = Vec::new();
        e.visit_columns(&mut |q, n| seen.push((q.clone(), n.to_string())));
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0], (Some("new".to_string()), "price".to_string()));
        assert_eq!(seen[1], (None, "w".to_string()));
    }

    #[test]
    fn agg_func_names_roundtrip() {
        for f in [
            AggFunc::Sum,
            AggFunc::Count,
            AggFunc::Avg,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::Var,
            AggFunc::Stddev,
        ] {
            assert_eq!(AggFunc::from_name(f.name()), Some(f));
        }
        assert_eq!(AggFunc::from_name("median"), None);
    }
}
