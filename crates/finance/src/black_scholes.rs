//! Black-Scholes call-option pricing (paper Appendix B).
//!
//! ```text
//! p_option = p_s Φ(d1) - (p_e / e^{rt}) Φ(d2)
//! d1 = [ln(p_s/p_e) + (r + σ²/2) t] / (σ √t)
//! d2 = [ln(p_s/p_e) + (r - σ²/2) t] / (σ √t)
//! ```
//!
//! The paper computes `Φ()` "using the error function in the C math
//! library"; Rust's std has no `erf`, so we implement one from scratch
//! (Abramowitz & Stegun 7.1.26-style rational approximation refined to the
//! higher-precision W. J. Cody constants), accurate to ~1.5e-7 — more than
//! enough for theoretical prices quoted in eighths.

/// The error function, |error| < 1.5e-7 (Abramowitz & Stegun 7.1.26).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    // A&S 7.1.26 coefficients.
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// Standard normal cumulative distribution function Φ.
pub fn phi(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Inputs to the Black-Scholes call model, named as in Appendix B.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BsInputs {
    /// `p_s` — current price of the underlying stock.
    pub stock_price: f64,
    /// `p_e` — exercise (strike) price.
    pub strike: f64,
    /// `t` — time remaining before expiration, as a fraction of a year.
    pub expiration_years: f64,
    /// `σ` — standard deviation of the annualized rate of return.
    pub stdev: f64,
    /// `r` — continuously compounded risk-less rate of return.
    pub risk_free_rate: f64,
}

/// The continuously compounded risk-free rate used throughout the PTA
/// (roughly the mid-90s T-bill yield).
pub const DEFAULT_RISK_FREE_RATE: f64 = 0.05;

/// Theoretical price of a call option (Appendix B).
///
/// ```
/// use strip_finance::black_scholes::{bs_call, BsInputs};
///
/// // Hull's classic example: S=42, K=40, r=10%, σ=20%, t=0.5y ⇒ ~4.76.
/// let p = bs_call(BsInputs {
///     stock_price: 42.0,
///     strike: 40.0,
///     expiration_years: 0.5,
///     stdev: 0.2,
///     risk_free_rate: 0.10,
/// });
/// assert!((p - 4.76).abs() < 0.01);
/// ```
///
/// Degenerate inputs are handled the way a pricing library must:
/// at `t = 0` or `σ = 0` the price collapses to discounted intrinsic value.
pub fn bs_call(inp: BsInputs) -> f64 {
    let BsInputs {
        stock_price: s,
        strike: k,
        expiration_years: t,
        stdev: sigma,
        risk_free_rate: r,
    } = inp;
    if s <= 0.0 || k <= 0.0 {
        return 0.0;
    }
    let discount = (-r * t).exp();
    if t <= 0.0 || sigma <= 0.0 {
        return (s - k * discount).max(0.0);
    }
    let sqrt_t = t.sqrt();
    let d1 = ((s / k).ln() + (r + 0.5 * sigma * sigma) * t) / (sigma * sqrt_t);
    let d2 = d1 - sigma * sqrt_t;
    s * phi(d1) - k * discount * phi(d2)
}

/// Convenience wrapper with the default risk-free rate.
pub fn bs_call_default(stock_price: f64, strike: f64, expiration_years: f64, stdev: f64) -> f64 {
    bs_call(BsInputs {
        stock_price,
        strike,
        expiration_years,
        stdev,
        risk_free_rate: DEFAULT_RISK_FREE_RATE,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        // Reference values from standard tables.
        let cases = [
            (0.0, 0.0),
            (0.5, 0.5204998778),
            (1.0, 0.8427007929),
            (2.0, 0.9953222650),
            (-1.0, -0.8427007929),
        ];
        for (x, want) in cases {
            assert!(
                (erf(x) - want).abs() < 2e-7,
                "erf({x}) = {} want {want}",
                erf(x)
            );
        }
    }

    #[test]
    fn phi_is_a_cdf() {
        assert!((phi(0.0) - 0.5).abs() < 1e-9);
        assert!(phi(-8.0) < 1e-6);
        assert!(phi(8.0) > 1.0 - 1e-6);
        // Monotone.
        let mut prev = phi(-4.0);
        let mut x = -4.0;
        while x < 4.0 {
            x += 0.1;
            let p = phi(x);
            assert!(p >= prev);
            prev = p;
        }
    }

    #[test]
    fn bs_textbook_value() {
        // Classic Hull example: S=42, K=40, r=0.10, σ=0.20, t=0.5
        // → call ≈ 4.76.
        let p = bs_call(BsInputs {
            stock_price: 42.0,
            strike: 40.0,
            expiration_years: 0.5,
            stdev: 0.2,
            risk_free_rate: 0.10,
        });
        assert!((p - 4.76).abs() < 0.01, "got {p}");
    }

    #[test]
    fn bs_bounds_and_monotonicity() {
        // A call is worth at least discounted intrinsic value and at most
        // the stock price.
        let base = BsInputs {
            stock_price: 100.0,
            strike: 95.0,
            expiration_years: 0.25,
            stdev: 0.3,
            risk_free_rate: 0.05,
        };
        let p = bs_call(base);
        let intrinsic = 100.0 - 95.0 * (-0.05f64 * 0.25).exp();
        assert!(p >= intrinsic);
        assert!(p <= 100.0);
        // Increasing in stock price, volatility, and expiry.
        assert!(
            bs_call(BsInputs {
                stock_price: 101.0,
                ..base
            }) > p
        );
        assert!(bs_call(BsInputs { stdev: 0.4, ..base }) > p);
        assert!(
            bs_call(BsInputs {
                expiration_years: 0.5,
                ..base
            }) > p
        );
        // Decreasing in strike.
        assert!(
            bs_call(BsInputs {
                strike: 100.0,
                ..base
            }) < p
        );
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(
            bs_call(BsInputs {
                stock_price: 0.0,
                strike: 40.0,
                expiration_years: 0.5,
                stdev: 0.2,
                risk_free_rate: 0.05
            }),
            0.0
        );
        // t = 0: intrinsic value.
        let p = bs_call(BsInputs {
            stock_price: 50.0,
            strike: 40.0,
            expiration_years: 0.0,
            stdev: 0.2,
            risk_free_rate: 0.05,
        });
        assert!((p - 10.0).abs() < 1e-9);
        // Deep out of the money at expiry: worthless.
        let p = bs_call(BsInputs {
            stock_price: 30.0,
            strike: 40.0,
            expiration_years: 0.0,
            stdev: 0.2,
            risk_free_rate: 0.05,
        });
        assert_eq!(p, 0.0);
    }

    #[test]
    fn deep_in_and_out_of_the_money_limits() {
        // Deep ITM ≈ S - K e^{-rt}; deep OTM ≈ 0.
        let itm = bs_call(BsInputs {
            stock_price: 200.0,
            strike: 10.0,
            expiration_years: 0.5,
            stdev: 0.2,
            risk_free_rate: 0.05,
        });
        let bound = 200.0 - 10.0 * (-0.05f64 * 0.5).exp();
        assert!((itm - bound).abs() < 1e-6);
        let otm = bs_call(BsInputs {
            stock_price: 10.0,
            strike: 200.0,
            expiration_years: 0.5,
            stdev: 0.2,
            risk_free_rate: 0.05,
        });
        assert!(otm < 1e-9);
    }
}
