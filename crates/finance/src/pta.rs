//! The program trading application (paper §3–§4): schema, population,
//! rules, user functions, and the trace-driven experiment runner.
//!
//! The six tables are exactly the paper's:
//! `stocks`, `stock_stdev`, `comp_prices`, `comps_list`, `option_prices`,
//! `options_list`. Composites and option listings are assigned to stocks
//! "in direct proportion to their trading activity" (§4.2).
//!
//! The rule/function pairs mirror Figures 3 and 6–8:
//!
//! | variant | rule | function style |
//! |---|---|---|
//! | [`CompVariant::NonUnique`] | `do_comps1` | row-at-a-time (Fig. 3) |
//! | [`CompVariant::Unique`] | `do_comps2` | group-by-comp in SQL (Fig. 6) |
//! | [`CompVariant::UniqueOnSymbol`] | — | group-by-comp in SQL |
//! | [`CompVariant::UniqueOnComp`] | `do_comps3` | accumulate one comp (Fig. 7) |
//! | [`OptionVariant::NonUnique`] | `do_options1` | per-row model eval (Fig. 8) |
//! | [`OptionVariant::Unique`] | — | dedup-by-option in user code |
//! | [`OptionVariant::UniqueOnStock`] | — | per-stock dedup, stdev once |
//! | [`OptionVariant::UniqueOnOption`] | — | last change only |

use crate::black_scholes::bs_call_default;
use crate::trace::{generate, to_eighths, Trace, TraceConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use strip_core::{DeltaSpec, Result, Strip};
use strip_sql::parse_statement;
use strip_sql::Statement;
use strip_storage::{Op, Value};

/// The composite-maintenance CONDITION (Figures 3/6/7): join the changed
/// stocks against `comps_list`, pairing each update's transition images on
/// `execute_order`.
const COMP_CONDITION: &str = "if \
    select comp, comps_list.symbol as symbol, weight, \
           old.price as old_price, new.price as new_price \
    from comps_list, new, old \
    where comps_list.symbol = new.symbol \
      and new.execute_order = old.execute_order \
    bind as matches ";

/// Recompute one composite's price from scratch — the "recompute
/// completely" alternative of §1, also the delta path's rebase-checkpoint
/// query.
const COMP_RECOMPUTE_SQL: &str = "select sum(price * weight) as price \
    from stocks, comps_list \
    where stocks.symbol = comps_list.symbol and comp = ?";

/// Which composite-maintenance rule to install (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompVariant {
    /// One recompute transaction per triggering transaction (Figure 3).
    NonUnique,
    /// Coarse batching: `unique` (Figure 6).
    Unique,
    /// `unique on symbol`.
    UniqueOnSymbol,
    /// `unique on comp` (Figure 7).
    UniqueOnComp,
}

impl CompVariant {
    /// All variants, in the order the paper's figures plot them.
    pub const ALL: [CompVariant; 4] = [
        CompVariant::NonUnique,
        CompVariant::Unique,
        CompVariant::UniqueOnSymbol,
        CompVariant::UniqueOnComp,
    ];

    /// Display label matching the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            CompVariant::NonUnique => "non-unique",
            CompVariant::Unique => "unique",
            CompVariant::UniqueOnSymbol => "unique on symbol",
            CompVariant::UniqueOnComp => "unique on comp",
        }
    }
}

/// Which option-maintenance rule to install (§5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptionVariant {
    /// One recompute per triggering transaction (Figure 8).
    NonUnique,
    /// Coarse batching: `unique`.
    Unique,
    /// `unique on stock_symbol` — the paper's winner.
    UniqueOnStock,
    /// `unique on option_symbol` — "led to an unmanageable number of
    /// transactions"; kept for reproducing that observation.
    UniqueOnOption,
}

impl OptionVariant {
    /// The variants the paper plots (per-option excluded from its graphs).
    pub const PLOTTED: [OptionVariant; 3] = [
        OptionVariant::NonUnique,
        OptionVariant::Unique,
        OptionVariant::UniqueOnStock,
    ];

    /// Display label matching the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            OptionVariant::NonUnique => "non-unique",
            OptionVariant::Unique => "unique",
            OptionVariant::UniqueOnStock => "unique on symbol",
            OptionVariant::UniqueOnOption => "unique on option_symbol",
        }
    }
}

/// PTA sizing parameters.
#[derive(Debug, Clone)]
pub struct PtaConfig {
    /// Quote-trace generation parameters.
    pub trace: TraceConfig,
    /// Number of composite indexes (paper: 400).
    pub n_composites: usize,
    /// Stocks per composite (paper: 200, giving 80 000 `comps_list` rows).
    pub stocks_per_composite: usize,
    /// Number of listed options (paper: 50 000).
    pub n_options: usize,
    /// RNG seed for table population.
    pub seed: u64,
}

impl PtaConfig {
    /// The paper's §4.2 sizing.
    pub fn paper() -> PtaConfig {
        PtaConfig {
            trace: TraceConfig::default(),
            n_composites: 400,
            stocks_per_composite: 200,
            n_options: 50_000,
            seed: 42,
        }
    }

    /// Laptop-test sizing: everything scaled down ~50×.
    pub fn small() -> PtaConfig {
        PtaConfig {
            trace: TraceConfig::small(),
            n_composites: 10,
            stocks_per_composite: 20,
            n_options: 500,
            seed: 42,
        }
    }
}

/// Measurements from one trace run — the quantities of Figures 9–14.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Trace duration, µs.
    pub duration_us: u64,
    /// Price-change transactions executed.
    pub updates: u64,
    /// Virtual CPU spent in update transactions (includes commit-time rule
    /// checking and condition evaluation), µs.
    pub update_busy_us: u64,
    /// Number of recomputation transactions run — the paper's `N_r`.
    pub recompute_count: u64,
    /// Virtual CPU spent in recompute transactions, µs.
    pub recompute_busy_us: u64,
    /// Mean recompute transaction length, µs (execution only, no queueing —
    /// Figures 11/14).
    pub recompute_mean_us: f64,
    /// Longest recompute transaction, µs.
    pub recompute_max_us: u64,
    /// All busy time on the virtual CPU, µs.
    pub total_busy_us: u64,
    /// Total time update transactions spent queued (release to start), µs.
    pub update_queue_us: u64,
    /// Total time recompute transactions spent queued, µs.
    pub recompute_queue_us: u64,
    /// Number of delta-maintenance transactions run (task kind `delta:*`;
    /// 0 unless the database runs in `MaintenanceMode::Delta` with a
    /// registered spec).
    pub delta_count: u64,
    /// Virtual CPU spent in delta-maintenance transactions, µs.
    pub delta_busy_us: u64,
    /// Total time delta-maintenance transactions spent queued, µs.
    pub delta_queue_us: u64,
    /// Background task errors observed (must be 0 in a healthy run).
    pub errors: usize,
}

impl RunReport {
    /// Fraction of the (single, virtual) CPU spent on recomputation — the
    /// y-axis of Figures 9 and 12.
    pub fn recompute_utilization(&self) -> f64 {
        self.recompute_busy_us as f64 / self.duration_us as f64
    }

    /// Fraction of CPU spent on everything (updates + recomputation).
    pub fn total_utilization(&self) -> f64 {
        self.total_busy_us as f64 / self.duration_us as f64
    }

    /// Derived-data maintenance transactions run, whatever the maintenance
    /// mode (recompute + delta).
    pub fn maintenance_count(&self) -> u64 {
        self.recompute_count + self.delta_count
    }

    /// Virtual CPU spent maintaining derived data, whatever the mode, µs.
    pub fn maintenance_busy_us(&self) -> u64 {
        self.recompute_busy_us + self.delta_busy_us
    }
}

/// The assembled application: database + trace + generated metadata.
pub struct Pta {
    /// The database with the six tables populated and indexes built.
    pub db: Strip,
    /// The synthetic quote trace.
    pub trace: Trace,
    /// Sizing used.
    pub cfg: PtaConfig,
    /// Interned symbol strings (index = symbol id).
    pub symbols: Vec<Arc<str>>,
}

impl Pta {
    /// Build the PTA on a database: generate the trace, create and populate
    /// the tables, and register every user function.
    pub fn build(cfg: PtaConfig, db: Strip) -> Result<Pta> {
        let trace = generate(&cfg.trace);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let n = cfg.trace.n_stocks;

        let symbols: Vec<Arc<str>> = (0..n).map(|i| Arc::from(format!("S{i:05}"))).collect();

        db.execute_script(
            "create table stocks (symbol str, price float); \
             create index ix_stocks_symbol on stocks (symbol); \
             create table stock_stdev (symbol str, stdev float); \
             create index ix_sd_symbol on stock_stdev (symbol); \
             create table comps_list (comp str, symbol str, weight float); \
             create index ix_cl_symbol on comps_list (symbol); \
             create table comp_prices (comp str, price float); \
             create index ix_cp_comp on comp_prices (comp); \
             create table options_list (option_symbol str, stock_symbol str, \
                                        strike float, expiration float); \
             create index ix_ol_stock on options_list (stock_symbol); \
             create table option_prices (option_symbol str, price float); \
             create index ix_op_symbol on option_prices (option_symbol);",
        )?;

        // Bulk population goes straight to storage: setup is not part of
        // the measured workload.
        let stdevs: Vec<f64> = (0..n).map(|_| 0.15 + rng.gen::<f64>() * 0.45).collect();
        {
            let stocks = db.catalog().table("stocks")?;
            let sd = db.catalog().table("stock_stdev")?;
            for i in 0..n {
                stocks.insert(vec![
                    Value::Str(symbols[i].clone()),
                    trace.initial_prices[i].into(),
                ])?;
                sd.insert(vec![Value::Str(symbols[i].clone()), stdevs[i].into()])?;
            }
        }

        // Composite membership: stocks drawn ∝ activity, distinct within a
        // composite (§4.2).
        let cum = cumulative(&trace.activity);
        {
            let cl = db.catalog().table("comps_list")?;
            let cp = db.catalog().table("comp_prices")?;
            let k = cfg.stocks_per_composite.min(n);
            for c in 0..cfg.n_composites {
                let comp: Arc<str> = Arc::from(format!("C{c:04}"));
                let mut members = HashSet::with_capacity(k);
                while members.len() < k {
                    members.insert(sample_weighted(&cum, &mut rng));
                }
                // Iterate in sorted order: HashSet order varies per
                // instance, and the per-member weight draw below must land
                // on the same member across two builds of the same seed.
                let mut members: Vec<usize> = members.into_iter().collect();
                members.sort_unstable();
                let mut price = 0.0;
                for &m in &members {
                    let w = 0.1 + rng.gen::<f64>() * 0.9;
                    price += w * trace.initial_prices[m];
                    cl.insert(vec![
                        Value::Str(comp.clone()),
                        Value::Str(symbols[m].clone()),
                        w.into(),
                    ])?;
                }
                cp.insert(vec![Value::Str(comp.clone()), price.into()])?;
            }
        }

        // Options: underlying drawn ∝ activity; strike near the money;
        // expiration within nine months (§4.2: "chosen randomly but from a
        // reasonable range of values").
        {
            let ol = db.catalog().table("options_list")?;
            let op = db.catalog().table("option_prices")?;
            for o in 0..cfg.n_options {
                let sym_idx = sample_weighted(&cum, &mut rng);
                let osym: Arc<str> = Arc::from(format!("O{o:06}"));
                let p = trace.initial_prices[sym_idx];
                let strike = to_eighths(p * (0.8 + rng.gen::<f64>() * 0.4));
                let expiration = 0.05 + rng.gen::<f64>() * 0.7;
                ol.insert(vec![
                    Value::Str(osym.clone()),
                    Value::Str(symbols[sym_idx].clone()),
                    strike.into(),
                    expiration.into(),
                ])?;
                let price = bs_call_default(p, strike, expiration, stdevs[sym_idx]);
                op.insert(vec![Value::Str(osym.clone()), price.into()])?;
            }
        }

        // The bulk load above bypassed transaction commit, so stamp the
        // loaded rows with a commit timestamp — otherwise snapshot reads
        // (every plain SELECT) would see empty tables.
        db.publish_bulk_load();

        let pta = Pta {
            db,
            trace,
            cfg,
            symbols,
        };
        pta.register_functions()?;
        Ok(pta)
    }

    /// Register every `compute_*` user function (Figures 3, 6–8).
    fn register_functions(&self) -> Result<()> {
        let db = &self.db;

        // -- composites -----------------------------------------------------
        // Figure 3: row-at-a-time incremental maintenance.
        let upd_comp = prepared("update comp_prices set price += ? where comp = ?")?;
        {
            let upd = upd_comp.clone();
            db.register_function("compute_comps1", move |txn| {
                let m = txn.bound("matches").expect("matches bound");
                let s = m.schema();
                let (ci, wi, oi, ni) = (
                    s.index_of("comp").unwrap(),
                    s.index_of("weight").unwrap(),
                    s.index_of("old_price").unwrap(),
                    s.index_of("new_price").unwrap(),
                );
                for r in 0..m.len() {
                    txn.charge_user_work(1);
                    let w = m.value(r, wi).as_f64().unwrap_or(0.0);
                    let d = m.value(r, ni).as_f64().unwrap_or(0.0)
                        - m.value(r, oi).as_f64().unwrap_or(0.0);
                    txn.exec_ast(&upd, &[(w * d).into(), m.value(r, ci).clone()])?;
                }
                Ok(())
            });
        }

        // Figure 6: aggregate the incremental changes per composite in SQL,
        // then one read-modify-write per composite. Registered under two
        // names so `unique` and `unique on symbol` rules keep independent
        // pending-transaction hash tables.
        let grouped_q = match parse_statement(
            "select comp, sum((new_price - old_price) * weight) as diff \
             from matches group by comp",
        )? {
            Statement::Select(q) => Arc::new(q),
            _ => unreachable!(),
        };
        for name in ["compute_comps2", "compute_comps2s"] {
            let upd = upd_comp.clone();
            let q = grouped_q.clone();
            db.register_function(name, move |txn| {
                let diffs = txn.query_ast(&q, &[])?;
                for i in 0..diffs.len() {
                    txn.charge_user_work(1);
                    txn.exec_ast(
                        &upd,
                        &[
                            diffs.value(i, "diff")?.clone(),
                            diffs.value(i, "comp")?.clone(),
                        ],
                    )?;
                }
                Ok(())
            });
        }

        // Figure 7: the bound table holds a single composite — accumulate
        // in application code and apply once.
        {
            let upd = upd_comp.clone();
            db.register_function("compute_comps3", move |txn| {
                let m = txn.bound("matches").expect("matches bound");
                if m.is_empty() {
                    return Ok(());
                }
                let s = m.schema();
                let (ci, wi, oi, ni) = (
                    s.index_of("comp").unwrap(),
                    s.index_of("weight").unwrap(),
                    s.index_of("old_price").unwrap(),
                    s.index_of("new_price").unwrap(),
                );
                let mut diff = 0.0;
                for r in 0..m.len() {
                    txn.charge_user_work(1);
                    diff += m.value(r, wi).as_f64().unwrap_or(0.0)
                        * (m.value(r, ni).as_f64().unwrap_or(0.0)
                            - m.value(r, oi).as_f64().unwrap_or(0.0));
                }
                txn.exec_ast(&upd, &[diff.into(), m.value(0, ci).clone()])?;
                Ok(())
            });
        }

        // The "recompute completely" baseline of §1: re-aggregate every
        // affected composite over its full membership. Registered WITH a
        // delta spec, so under [`strip_core::MaintenanceMode::Delta`] the
        // rule engine replaces this function with the in-place
        // `Δ = Σ w·(new − old)` apply; under `Recompute` this full
        // re-aggregation runs as the ablation/oracle baseline.
        {
            let set = prepared("update comp_prices set price = ? where comp = ?")?;
            let fresh_q = match parse_statement(COMP_RECOMPUTE_SQL)? {
                Statement::Select(q) => Arc::new(q),
                _ => unreachable!(),
            };
            let spec = DeltaSpec::weighted_sum(
                "comp_prices",
                "comp",
                "price",
                "matches",
                "comp",
                Some("weight"),
                "old_price",
                "new_price",
                COMP_RECOMPUTE_SQL,
            )?;
            db.register_function_with_delta(
                "compute_comps_full",
                move |txn| {
                    let m = txn.bound("matches").expect("matches bound");
                    let s = m.schema();
                    let ci = s.index_of("comp").unwrap();
                    let mut comps: Vec<Value> = Vec::new();
                    for r in 0..m.len() {
                        txn.charge_user_work(1);
                        let c = m.value(r, ci).clone();
                        if !comps.contains(&c) {
                            comps.push(c);
                        }
                    }
                    comps.sort();
                    for c in comps {
                        let fresh = txn.query_ast(&fresh_q, std::slice::from_ref(&c))?;
                        if let Some(v) = fresh.single("price")?.as_f64() {
                            txn.exec_ast(&set, &[v.into(), c])?;
                        }
                    }
                    Ok(())
                },
                spec,
            );
        }

        // -- options -----------------------------------------------------------
        let upd_opt = prepared("update option_prices set price = ? where option_symbol = ?")?;
        let sel_sd = match parse_statement("select stdev from stock_stdev where symbol = ?")? {
            Statement::Select(q) => Arc::new(q),
            _ => unreachable!(),
        };

        // Figure 8: recompute each affected option for every change.
        {
            let upd = upd_opt.clone();
            let sd = sel_sd.clone();
            db.register_function("compute_options1", move |txn| {
                let m = txn.bound("matches").expect("matches bound");
                let s = m.schema();
                let (osym, ssym, ki, ei, ni) = option_offsets(s);
                for r in 0..m.len() {
                    txn.charge_user_work(1);
                    let stdev = txn
                        .query_ast(&sd, &[m.value(r, ssym).clone()])?
                        .single("stdev")?
                        .as_f64()
                        .unwrap_or(0.3);
                    txn.charge_op(Op::ModelEval, 1);
                    let price = bs_call_default(
                        m.value(r, ni).as_f64().unwrap_or(0.0),
                        m.value(r, ki).as_f64().unwrap_or(0.0),
                        m.value(r, ei).as_f64().unwrap_or(0.0),
                        stdev,
                    );
                    txn.exec_ast(&upd, &[price.into(), m.value(r, osym).clone()])?;
                }
                Ok(())
            });
        }

        // Coarse unique / per-stock / per-option: deduplicate repeated
        // changes, keeping the LAST price per option within the batch, and
        // cache stdev per stock so shared partial results are computed once.
        for name in [
            "compute_options_batched",  // coarse `unique`
            "compute_options_by_stock", // `unique on stock_symbol`
            "compute_options_by_opt",   // `unique on option_symbol`
        ] {
            let upd = upd_opt.clone();
            let sd = sel_sd.clone();
            db.register_function(name, move |txn| {
                let m = txn.bound("matches").expect("matches bound");
                let s = m.schema();
                let (osym, ssym, ki, ei, ni) = option_offsets(s);
                // Last change wins: rows are appended in firing order.
                let mut last: HashMap<Value, usize> = HashMap::new();
                for r in 0..m.len() {
                    txn.charge_user_work(1);
                    last.insert(m.value(r, osym).clone(), r);
                }
                let mut stdev_cache: HashMap<Value, f64> = HashMap::new();
                for (opt, r) in last {
                    let stock = m.value(r, ssym).clone();
                    let stdev = match stdev_cache.get(&stock) {
                        Some(v) => *v,
                        None => {
                            let v = txn
                                .query_ast(&sd, std::slice::from_ref(&stock))?
                                .single("stdev")?
                                .as_f64()
                                .unwrap_or(0.3);
                            stdev_cache.insert(stock, v);
                            v
                        }
                    };
                    txn.charge_op(Op::ModelEval, 1);
                    let price = bs_call_default(
                        m.value(r, ni).as_f64().unwrap_or(0.0),
                        m.value(r, ki).as_f64().unwrap_or(0.0),
                        m.value(r, ei).as_f64().unwrap_or(0.0),
                        stdev,
                    );
                    txn.exec_ast(&upd, &[price.into(), opt])?;
                }
                Ok(())
            });
        }
        Ok(())
    }

    /// Install the composite-maintenance rule for a variant (Figures 3/6/7).
    /// `delay_s` is the `after` window (ignored for [`CompVariant::NonUnique`]).
    pub fn install_comp_rule(&self, variant: CompVariant, delay_s: f64) -> Result<()> {
        let tail = match variant {
            CompVariant::NonUnique => "execute compute_comps1".to_string(),
            CompVariant::Unique => {
                format!("execute compute_comps2 unique after {delay_s} seconds")
            }
            CompVariant::UniqueOnSymbol => {
                format!("execute compute_comps2s unique on symbol after {delay_s} seconds")
            }
            CompVariant::UniqueOnComp => {
                format!("execute compute_comps3 unique on comp after {delay_s} seconds")
            }
        };
        self.db.execute(&format!(
            "create rule do_comps on stocks when updated price {COMP_CONDITION} then {tail}"
        ))?;
        Ok(())
    }

    /// Install the composite rule with the full-recompute baseline function
    /// (`compute_comps_full`, coarse `unique` coalescing). Because the
    /// function carries a [`DeltaSpec`], the same rule maintains
    /// `comp_prices` incrementally under `MaintenanceMode::Delta` and by
    /// full per-composite re-aggregation under `MaintenanceMode::Recompute`
    /// — the delta-vs-recompute experiment installs this one rule and
    /// varies only the database's maintenance mode.
    pub fn install_comp_rule_full(&self, delay_s: f64) -> Result<()> {
        self.db.execute(&format!(
            "create rule do_comps on stocks when updated price {COMP_CONDITION} \
             then execute compute_comps_full unique after {delay_s} seconds"
        ))?;
        Ok(())
    }

    /// Install the option-maintenance rule for a variant (Figure 8 + §5.2).
    pub fn install_option_rule(&self, variant: OptionVariant, delay_s: f64) -> Result<()> {
        const CONDITION: &str = "if \
            select option_symbol, stock_symbol, strike, expiration, \
                   new.price as new_price \
            from options_list, new \
            where options_list.stock_symbol = new.symbol \
            bind as matches ";
        let tail = match variant {
            OptionVariant::NonUnique => "execute compute_options1".to_string(),
            OptionVariant::Unique => {
                format!("execute compute_options_batched unique after {delay_s} seconds")
            }
            OptionVariant::UniqueOnStock => format!(
                "execute compute_options_by_stock unique on stock_symbol \
                 after {delay_s} seconds"
            ),
            OptionVariant::UniqueOnOption => format!(
                "execute compute_options_by_opt unique on option_symbol \
                 after {delay_s} seconds"
            ),
        };
        self.db.execute(&format!(
            "create rule do_options on stocks when updated price {CONDITION} then {tail}"
        ))?;
        Ok(())
    }

    /// Drive the quote trace through the database in virtual time: one
    /// price-update transaction per quote, released at the quote's
    /// timestamp; then drain all pending recomputations and report.
    pub fn run_trace(&self) -> Result<RunReport> {
        self.run_trace_with_deadlines(None)
    }

    /// [`Pta::run_trace`] where each update transaction additionally
    /// carries a deadline `release + deadline_slack_us` and a high value —
    /// feed updates are the urgent work in a real-time monitoring system.
    /// Use with an EDF or value-density [`strip_txn::Policy`] to study
    /// scheduling (§6.2).
    pub fn run_trace_with_deadlines(&self, deadline_slack_us: Option<u64>) -> Result<RunReport> {
        self.submit_quotes(deadline_slack_us)?;
        self.db.drain();
        self.assemble_report()
    }

    /// [`Pta::run_trace`] with a read-mostly foreground: the quote stream
    /// drives maintenance exactly as in [`Pta::run_trace`], but the driver
    /// advances virtual time one `window_us`-wide step at a time and issues
    /// `probes_per_window` lock-free snapshot read transactions between
    /// steps — a keyed quote probe plus an aggregate over the maintained
    /// composites, the ad-hoc monitoring queries of a live trading floor.
    /// Every probe must succeed (snapshot readers hold no locks and cannot
    /// deadlock); the run errors out otherwise.
    pub fn run_trace_read_mostly(
        &self,
        window_us: u64,
        probes_per_window: usize,
    ) -> Result<RunReport> {
        self.submit_quotes(None)?;
        let mut horizon = window_us;
        let mut probe = 0usize;
        while horizon < self.trace.duration_us {
            self.db.advance_to(horizon);
            for _ in 0..probes_per_window {
                let sym = self.symbols[probe % self.symbols.len()].clone();
                probe += 1;
                self.db.read_txn(move |t| {
                    t.query(
                        "select price from stocks where symbol = ?",
                        &[Value::Str(sym)],
                    )?;
                    t.query(
                        "select count(*) as n, sum(price) as total from comp_prices",
                        &[],
                    )?;
                    Ok(())
                })?;
            }
            horizon += window_us;
        }
        self.db.drain();
        self.assemble_report()
    }

    /// Submit the whole quote trace (releases are virtual timestamps).
    fn submit_quotes(&self, deadline_slack_us: Option<u64>) -> Result<()> {
        let upd = prepared("update stocks set price = ? where symbol = ?")?;
        for q in &self.trace.quotes {
            let upd = upd.clone();
            let sym = self.symbols[q.symbol as usize].clone();
            let price = q.price;
            let deadline = deadline_slack_us.map(|s| q.time_us + s);
            self.db
                .submit_txn_with("update", q.time_us, deadline, 10.0, move |t| {
                    t.exec_ast(&upd, &[price.into(), Value::Str(sym)])?;
                    Ok(())
                });
        }
        Ok(())
    }

    /// Build the [`RunReport`] from the database's task statistics after a
    /// drained trace run.
    fn assemble_report(&self) -> Result<RunReport> {
        let stats = self.db.stats();
        let upd_stats = stats.kind("update");
        let recompute_count = stats.count_with_prefix("recompute:");
        let recompute_busy_us = stats.busy_us_with_prefix("recompute:");
        let recompute_max_us = stats
            .by_kind
            .iter()
            .filter(|(k, _)| k.starts_with("recompute:"))
            .map(|(_, s)| s.max_us)
            .max()
            .unwrap_or(0);
        let recompute_queue_us = stats
            .by_kind
            .iter()
            .filter(|(k, _)| k.starts_with("recompute:"))
            .map(|(_, s)| s.queue_us)
            .sum();
        let delta_count = stats.count_with_prefix("delta:");
        let delta_busy_us = stats.busy_us_with_prefix("delta:");
        let delta_queue_us = stats
            .by_kind
            .iter()
            .filter(|(k, _)| k.starts_with("delta:"))
            .map(|(_, s)| s.queue_us)
            .sum();
        let errors = self.db.take_errors();
        for e in errors.iter().take(3) {
            eprintln!("task error: {e}");
        }
        Ok(RunReport {
            duration_us: self.trace.duration_us,
            updates: upd_stats.count,
            update_busy_us: upd_stats.total_us,
            recompute_count,
            recompute_busy_us,
            recompute_mean_us: if recompute_count == 0 {
                0.0
            } else {
                recompute_busy_us as f64 / recompute_count as f64
            },
            recompute_max_us,
            update_queue_us: upd_stats.queue_us,
            recompute_queue_us,
            delta_count,
            delta_busy_us,
            delta_queue_us,
            total_busy_us: stats.busy_us,
            errors: errors.len(),
        })
    }

    /// Current composite price (verification helper).
    pub fn comp_price(&self, comp: &str) -> Result<f64> {
        Ok(self
            .db
            .query(&format!(
                "select price from comp_prices where comp = '{comp}'"
            ))?
            .single("price")?
            .as_f64()
            .unwrap_or(f64::NAN))
    }

    /// Recompute every composite price from scratch (the "recompute
    /// completely" alternative of §1) — used to verify that incremental
    /// maintenance converged to the truth.
    pub fn comp_prices_from_scratch(&self) -> Result<Vec<(String, f64)>> {
        let rs = self.db.query(
            "select comp, sum(price * weight) as price \
             from stocks, comps_list \
             where stocks.symbol = comps_list.symbol \
             group by comp order by comp",
        )?;
        Ok((0..rs.len())
            .map(|i| {
                (
                    rs.value(i, "comp").unwrap().to_string(),
                    rs.value(i, "price").unwrap().as_f64().unwrap(),
                )
            })
            .collect())
    }

    /// Materialized composite prices, sorted by name.
    pub fn comp_prices_materialized(&self) -> Result<Vec<(String, f64)>> {
        let rs = self
            .db
            .query("select comp, price from comp_prices order by comp")?;
        Ok((0..rs.len())
            .map(|i| {
                (
                    rs.value(i, "comp").unwrap().to_string(),
                    rs.value(i, "price").unwrap().as_f64().unwrap(),
                )
            })
            .collect())
    }
}

fn option_offsets(s: &strip_storage::Schema) -> (usize, usize, usize, usize, usize) {
    (
        s.index_of("option_symbol").unwrap(),
        s.index_of("stock_symbol").unwrap(),
        s.index_of("strike").unwrap(),
        s.index_of("expiration").unwrap(),
        s.index_of("new_price").unwrap(),
    )
}

fn prepared(sql: &str) -> Result<Arc<Statement>> {
    Ok(Arc::new(parse_statement(sql)?))
}

fn cumulative(weights: &[f64]) -> Vec<f64> {
    let mut cum = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for w in weights {
        acc += w;
        cum.push(acc);
    }
    cum
}

fn sample_weighted(cum: &[f64], rng: &mut StdRng) -> usize {
    let total = *cum.last().expect("non-empty weights");
    let x = rng.gen::<f64>() * total;
    match cum.binary_search_by(|v| v.partial_cmp(&x).expect("no NaN weights")) {
        Ok(i) => i,
        Err(i) => i.min(cum.len() - 1),
    }
}
