//! Synthetic TAQ-style quote-trace generation.
//!
//! The paper drives its experiments with the NYSE TAQ consolidated quote
//! file for January 1994 (proprietary). This module generates a synthetic
//! equivalent matched to the statistics the paper reports and relies on:
//!
//! * ~6 600 symbols with heavily skewed per-symbol activity (a Zipf-like
//!   law: "Netscape ... trades a few thousand times a day ... Spyglass ...
//!   a few hundred").
//! * ~60 000 price changes over a 30-minute window.
//! * **Bursty** per-symbol arrivals: "a small price change in a stock may
//!   trigger a burst of quotes until the market makers settle on a new
//!   price. This may be followed by minutes of inactivity" (\[AKGM96a\] via
//!   §1). Batching gains depend on this temporal locality, so the generator
//!   emits bursts of geometrically-distributed size with sub-second
//!   intra-burst spacing (the paper spreads same-second quotes evenly over
//!   the second, §4.1).
//! * 1994 prices move in eighths of a dollar.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One price change from the feed.
#[derive(Debug, Clone, PartialEq)]
pub struct Quote {
    /// Microseconds from the start of the trace.
    pub time_us: u64,
    /// Index of the stock in the symbol universe.
    pub symbol: u32,
    /// New price, in dollars (multiple of 1/8).
    pub price: f64,
}

/// Trace-generation parameters.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Number of distinct symbols (paper: 6 600).
    pub n_stocks: usize,
    /// Target number of price changes (paper: > 60 000 per 30-minute run).
    pub target_updates: usize,
    /// Trace duration in seconds (paper: 1 800).
    pub duration_s: f64,
    /// Zipf exponent of the activity skew (1.0 ≈ classic Zipf).
    pub zipf_exponent: f64,
    /// Mean burst length (quotes per burst).
    pub mean_burst_len: f64,
    /// Mean spacing between quotes inside a burst, seconds.
    pub intra_burst_spacing_s: f64,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            n_stocks: 6600,
            target_updates: 60_000,
            duration_s: 1800.0,
            // Calibrated so the option experiment reproduces the paper's
            // modest per-symbol batching gains: real TAQ activity is skewed
            // but flatter than classic Zipf, and same-stock bursts are
            // short relative to the 0.5-3 s delay windows.
            zipf_exponent: 0.6,
            mean_burst_len: 2.0,
            intra_burst_spacing_s: 0.8,
            seed: 1994,
        }
    }
}

impl TraceConfig {
    /// A laptop-test-sized configuration.
    pub fn small() -> TraceConfig {
        TraceConfig {
            n_stocks: 100,
            target_updates: 2_000,
            duration_s: 60.0,
            ..TraceConfig::default()
        }
    }
}

/// A generated trace: initial prices plus the time-ordered quote stream.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Initial price per symbol (index = symbol id).
    pub initial_prices: Vec<f64>,
    /// Per-symbol activity weights (sums to 1); composites and option
    /// listings are drawn in proportion to these, as the paper populates
    /// its tables "in direct proportion to their trading activity".
    pub activity: Vec<f64>,
    /// Quotes ordered by time.
    pub quotes: Vec<Quote>,
    /// Trace duration, µs.
    pub duration_us: u64,
}

impl Trace {
    /// Number of quotes.
    pub fn len(&self) -> usize {
        self.quotes.len()
    }

    /// True if no quotes.
    pub fn is_empty(&self) -> bool {
        self.quotes.is_empty()
    }

    /// Number of distinct symbols that actually traded.
    pub fn active_symbols(&self) -> usize {
        let mut seen = vec![false; self.initial_prices.len()];
        for q in &self.quotes {
            seen[q.symbol as usize] = true;
        }
        seen.iter().filter(|b| **b).count()
    }
}

/// Round to the nearest eighth of a dollar, with a floor of 1/8 (1994
/// prices move in eighths).
pub fn to_eighths(p: f64) -> f64 {
    ((p * 8.0).round() / 8.0).max(0.125)
}

/// Generate a synthetic quote trace.
pub fn generate(cfg: &TraceConfig) -> Trace {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.n_stocks;

    // Zipf-like activity weights over a randomly permuted rank order so
    // symbol ids don't correlate with activity.
    let mut ranks: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        ranks.swap(i, j);
    }
    let mut activity = vec![0.0f64; n];
    let mut total = 0.0;
    for (rank, &sym) in ranks.iter().enumerate() {
        let w = 1.0 / ((rank + 1) as f64).powf(cfg.zipf_exponent);
        activity[sym] = w;
        total += w;
    }
    for w in &mut activity {
        *w /= total;
    }

    // Initial prices: log-uniform-ish in [5, 120], in eighths.
    let initial_prices: Vec<f64> = (0..n)
        .map(|_| to_eighths(5.0 * (1.0 + rng.gen::<f64>() * 23.0)))
        .collect();

    // Emit bursts per symbol until the target volume is met. Expected
    // quotes for symbol i = activity[i] * target.
    let duration_us = (cfg.duration_s * 1e6) as u64;
    let mut quotes = Vec::with_capacity(cfg.target_updates + cfg.target_updates / 4);
    let mut price = initial_prices.clone();
    for sym in 0..n {
        let expect = activity[sym] * cfg.target_updates as f64;
        // Number of bursts: expectation / mean burst length, stochastically
        // rounded so small expectations still sometimes trade.
        let mean_bursts = expect / cfg.mean_burst_len;
        let n_bursts = mean_bursts.floor() as usize
            + if rng.gen::<f64>() < mean_bursts.fract() {
                1
            } else {
                0
            };
        for _ in 0..n_bursts {
            let start = rng.gen_range(0..duration_us.max(1));
            // Geometric burst length with the configured mean (≥ 1).
            let p_stop = 1.0 / cfg.mean_burst_len.max(1.0);
            let mut len = 1;
            while rng.gen::<f64>() > p_stop && len < 50 {
                len += 1;
            }
            let mut t = start;
            for _ in 0..len {
                // Tick move of 1-3 eighths in a persistent direction per
                // burst would add realism; a symmetric walk suffices for
                // the locality the experiments need.
                let ticks = rng.gen_range(1..=2) as f64 / 8.0;
                let dir = if rng.gen::<bool>() { 1.0 } else { -1.0 };
                price[sym] = to_eighths((price[sym] + dir * ticks).max(0.125));
                quotes.push(Quote {
                    time_us: t,
                    symbol: sym as u32,
                    price: price[sym],
                });
                let gap = (cfg.intra_burst_spacing_s * 1e6 * (0.5 + rng.gen::<f64>())) as u64;
                t = t.saturating_add(gap.max(1));
                if t >= duration_us {
                    break;
                }
            }
        }
    }
    quotes.sort_by_key(|q| q.time_us);
    Trace {
        initial_prices,
        activity,
        quotes,
        duration_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Trace {
        generate(&TraceConfig::small())
    }

    #[test]
    fn trace_is_time_ordered_and_sized() {
        let t = small();
        assert!(!t.is_empty());
        // Within 40% of target (stochastic burst lengths).
        let target = TraceConfig::small().target_updates as f64;
        assert!((t.len() as f64) > 0.6 * target, "len = {}", t.len());
        assert!((t.len() as f64) < 1.6 * target, "len = {}", t.len());
        assert!(t.quotes.windows(2).all(|w| w[0].time_us <= w[1].time_us));
        assert!(t.quotes.iter().all(|q| q.time_us < t.duration_us));
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = generate(&TraceConfig::small());
        let b = generate(&TraceConfig::small());
        assert_eq!(a.quotes, b.quotes);
        let c = generate(&TraceConfig {
            seed: 7,
            ..TraceConfig::small()
        });
        assert_ne!(a.quotes, c.quotes);
    }

    #[test]
    fn prices_are_eighths_and_positive() {
        let t = small();
        for q in &t.quotes {
            assert!(q.price >= 0.125);
            let eighths = q.price * 8.0;
            assert!((eighths - eighths.round()).abs() < 1e-9, "{}", q.price);
        }
    }

    #[test]
    fn activity_is_skewed() {
        let t = generate(&TraceConfig {
            n_stocks: 500,
            target_updates: 20_000,
            zipf_exponent: 0.9, // steep skew for this statistical check
            ..TraceConfig::small()
        });
        // Count quotes per symbol; the top decile should dominate.
        let mut counts = vec![0usize; 500];
        for q in &t.quotes {
            counts[q.symbol as usize] += 1;
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top: usize = counts[..50].iter().sum();
        let total: usize = counts.iter().sum();
        assert!(
            top as f64 > 0.45 * total as f64,
            "top decile only {top}/{total}"
        );
        // Weights normalized.
        let s: f64 = t.activity.iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn burstiness_temporal_locality() {
        // A meaningful fraction of consecutive same-symbol quotes should be
        // within a couple of seconds of each other — that's what the delay
        // window batches.
        let t = generate(&TraceConfig {
            n_stocks: 200,
            target_updates: 10_000,
            duration_s: 600.0,
            mean_burst_len: 3.0,
            intra_burst_spacing_s: 0.3,
            ..TraceConfig::default()
        });
        let mut last: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
        let mut close = 0usize;
        let mut gaps = 0usize;
        for q in &t.quotes {
            if let Some(prev) = last.insert(q.symbol, q.time_us) {
                gaps += 1;
                if q.time_us - prev <= 2_000_000 {
                    close += 1;
                }
            }
        }
        assert!(gaps > 0);
        assert!(
            close as f64 > 0.3 * gaps as f64,
            "only {close}/{gaps} same-symbol gaps within 2 s"
        );
    }
}
