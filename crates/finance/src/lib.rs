//! # strip-finance
//!
//! The program trading application (PTA) of the paper's §3–§4, used both as
//! the flagship example and as the workload behind every figure of the
//! evaluation:
//!
//! * [`black_scholes`] — the Appendix-B call-option pricing model with a
//!   from-scratch `erf`/Φ.
//! * [`trace`] — synthetic TAQ-style quote traces (the substitution for the
//!   proprietary NYSE TAQ file; see DESIGN.md §4).
//! * [`pta`] — schema, activity-proportional table population, the six
//!   `compute_*` user functions, rule installation per batching variant,
//!   and the trace-driven experiment runner.

pub mod black_scholes;
pub mod pta;
pub mod trace;

pub use black_scholes::{bs_call, bs_call_default, erf, phi, BsInputs, DEFAULT_RISK_FREE_RATE};
pub use pta::{CompVariant, OptionVariant, Pta, PtaConfig, RunReport};
pub use trace::{generate, Quote, Trace, TraceConfig};
