//! Property-based tests for the finance substrate: Black-Scholes laws,
//! `erf` bounds, and quote-trace invariants.

use proptest::prelude::*;
use strip_finance::black_scholes::{bs_call, erf, phi, BsInputs};
use strip_finance::trace::{generate, to_eighths, TraceConfig};

proptest! {
    #[test]
    fn erf_is_odd_bounded_monotone(x in -6.0..6.0f64, y in -6.0..6.0f64) {
        prop_assert!((erf(x) + erf(-x)).abs() < 3e-7, "odd function");
        prop_assert!(erf(x).abs() <= 1.0 + 1e-12);
        if x < y {
            prop_assert!(erf(x) <= erf(y) + 1e-12, "monotone");
        }
    }

    #[test]
    fn phi_complement_law(x in -6.0..6.0f64) {
        prop_assert!((phi(x) + phi(-x) - 1.0).abs() < 3e-7);
    }

    #[test]
    fn bs_call_respects_no_arbitrage_bounds(
        s in 1.0..500.0f64,
        k in 1.0..500.0f64,
        t in 0.0..2.0f64,
        sigma in 0.0..1.5f64,
        r in 0.0..0.12f64,
    ) {
        let p = bs_call(BsInputs {
            stock_price: s,
            strike: k,
            expiration_years: t,
            stdev: sigma,
            risk_free_rate: r,
        });
        // 0 <= C <= S and C >= S - K e^{-rt}.
        prop_assert!(p >= -1e-9, "negative price: {p}");
        prop_assert!(p <= s + 1e-9, "call above stock: {p} > {s}");
        let intrinsic = s - k * (-r * t).exp();
        prop_assert!(p >= intrinsic - 1e-6, "below intrinsic: {p} < {intrinsic}");
    }

    #[test]
    fn bs_call_monotone_in_stock_price(
        s in 1.0..400.0f64,
        bump in 0.01..50.0f64,
        k in 1.0..400.0f64,
        t in 0.01..2.0f64,
        sigma in 0.05..1.0f64,
    ) {
        let base = BsInputs {
            stock_price: s,
            strike: k,
            expiration_years: t,
            stdev: sigma,
            risk_free_rate: 0.05,
        };
        let p0 = bs_call(base);
        let p1 = bs_call(BsInputs { stock_price: s + bump, ..base });
        prop_assert!(p1 >= p0 - 1e-7, "call must rise with the stock: {p0} -> {p1}");
        // Delta is at most 1: the option gains no faster than the stock.
        prop_assert!(p1 - p0 <= bump + 1e-6);
    }

    #[test]
    fn to_eighths_is_idempotent_and_grid_aligned(p in 0.0..1000.0f64) {
        let q = to_eighths(p);
        prop_assert!(q >= 0.125);
        prop_assert!((q * 8.0 - (q * 8.0).round()).abs() < 1e-9);
        prop_assert_eq!(to_eighths(q), q);
        prop_assert!((q - p.max(0.125)).abs() <= 0.0626);
    }

    #[test]
    fn trace_respects_config(
        n_stocks in 10..120usize,
        target in 100..2000usize,
        seed in any::<u64>(),
    ) {
        let cfg = TraceConfig {
            n_stocks,
            target_updates: target,
            duration_s: 60.0,
            ..TraceConfig::default()
        };
        let t = generate(&cfg);
        prop_assert_eq!(t.initial_prices.len(), n_stocks);
        prop_assert_eq!(t.activity.len(), n_stocks);
        let _ = seed;
        // Time-ordered, within duration, symbols in range, prices on grid.
        prop_assert!(t.quotes.windows(2).all(|w| w[0].time_us <= w[1].time_us));
        for q in &t.quotes {
            prop_assert!(q.time_us < t.duration_us);
            prop_assert!((q.symbol as usize) < n_stocks);
            prop_assert!(q.price >= 0.125);
        }
        // Activity normalized.
        let s: f64 = t.activity.iter().sum();
        prop_assert!((s - 1.0).abs() < 1e-9);
        // Volume in a sane band around the target (bursts are stochastic).
        prop_assert!(t.len() > target / 4, "too few quotes: {}", t.len());
        prop_assert!(t.len() < target * 3, "too many quotes: {}", t.len());
    }
}
