//! Small-scale end-to-end PTA runs: correctness of derived-data maintenance
//! under every batching variant, plus the qualitative batching effects the
//! paper's figures rest on.

use strip_core::Strip;
use strip_finance::{CompVariant, OptionVariant, Pta, PtaConfig};

fn small_pta() -> Pta {
    Pta::build(PtaConfig::small(), Strip::new()).unwrap()
}

/// Incremental maintenance must converge to the from-scratch recomputation
/// (the correctness bar for every composite variant).
fn assert_comps_converged(pta: &Pta) {
    let truth = pta.comp_prices_from_scratch().unwrap();
    let materialized = pta.comp_prices_materialized().unwrap();
    assert_eq!(truth.len(), materialized.len());
    for ((name_t, p_t), (name_m, p_m)) in truth.iter().zip(&materialized) {
        assert_eq!(name_t, name_m);
        assert!(
            (p_t - p_m).abs() < 1e-6 * p_t.abs().max(1.0),
            "{name_t}: incremental {p_m} vs truth {p_t}"
        );
    }
}

#[test]
fn tables_populated_to_config() {
    let pta = small_pta();
    let cfg = &pta.cfg;
    let count = |t: &str| {
        pta.db
            .query(&format!("select count(*) as n from {t}"))
            .unwrap()
            .single("n")
            .unwrap()
            .as_i64()
            .unwrap() as usize
    };
    assert_eq!(count("stocks"), cfg.trace.n_stocks);
    assert_eq!(count("stock_stdev"), cfg.trace.n_stocks);
    assert_eq!(count("comp_prices"), cfg.n_composites);
    assert_eq!(
        count("comps_list"),
        cfg.n_composites * cfg.stocks_per_composite
    );
    assert_eq!(count("options_list"), cfg.n_options);
    assert_eq!(count("option_prices"), cfg.n_options);
}

#[test]
fn initial_comp_prices_match_definition() {
    let pta = small_pta();
    assert_comps_converged(&pta);
}

#[test]
fn comps_non_unique_converges() {
    let pta = small_pta();
    pta.install_comp_rule(CompVariant::NonUnique, 0.0).unwrap();
    let report = pta.run_trace().unwrap();
    assert_eq!(report.errors, 0);
    assert!(report.updates > 0);
    // Non-unique: one recompute per triggering update that matched a
    // composite member.
    assert!(report.recompute_count > 0);
    assert_comps_converged(&pta);
}

#[test]
fn comps_unique_coarse_converges_with_fewer_recomputes() {
    let a = {
        let pta = small_pta();
        pta.install_comp_rule(CompVariant::NonUnique, 0.0).unwrap();
        let r = pta.run_trace().unwrap();
        assert_comps_converged(&pta);
        r
    };
    let b = {
        let pta = small_pta();
        pta.install_comp_rule(CompVariant::Unique, 1.0).unwrap();
        let r = pta.run_trace().unwrap();
        assert_eq!(r.errors, 0);
        assert_comps_converged(&pta);
        r
    };
    assert!(
        b.recompute_count < a.recompute_count / 2,
        "coarse batching should slash N_r: {} vs {}",
        b.recompute_count,
        a.recompute_count
    );
    assert!(
        b.recompute_busy_us < a.recompute_busy_us,
        "batching should reduce recompute CPU: {} vs {}",
        b.recompute_busy_us,
        a.recompute_busy_us
    );
    // Coarse batching makes individual transactions much longer (Fig. 11).
    assert!(b.recompute_mean_us > 3.0 * a.recompute_mean_us);
}

#[test]
fn comps_unique_on_symbol_converges() {
    let pta = small_pta();
    pta.install_comp_rule(CompVariant::UniqueOnSymbol, 1.0)
        .unwrap();
    let r = pta.run_trace().unwrap();
    assert_eq!(r.errors, 0);
    assert_comps_converged(&pta);
}

#[test]
fn comps_unique_on_comp_converges_with_short_transactions() {
    let pta = small_pta();
    pta.install_comp_rule(CompVariant::UniqueOnComp, 1.0)
        .unwrap();
    let per_comp = pta.run_trace().unwrap();
    assert_eq!(per_comp.errors, 0);
    assert_comps_converged(&pta);

    let pta2 = small_pta();
    pta2.install_comp_rule(CompVariant::Unique, 1.0).unwrap();
    let coarse = pta2.run_trace().unwrap();
    // Per-comp batching runs many more, far shorter transactions (Figs 10/11).
    assert!(per_comp.recompute_count > coarse.recompute_count);
    assert!(per_comp.recompute_mean_us < coarse.recompute_mean_us);
    assert!(per_comp.recompute_max_us < coarse.recompute_max_us);
}

/// Option prices must match a from-scratch Black-Scholes pass over the
/// final stock prices.
fn assert_options_converged(pta: &Pta) {
    // Final stock prices.
    let stocks = pta.db.query("select symbol, price from stocks").unwrap();
    let mut price_of = std::collections::HashMap::new();
    for i in 0..stocks.len() {
        price_of.insert(
            stocks.value(i, "symbol").unwrap().to_string(),
            stocks.value(i, "price").unwrap().as_f64().unwrap(),
        );
    }
    let sd = pta
        .db
        .query("select symbol, stdev from stock_stdev")
        .unwrap();
    let mut sd_of = std::collections::HashMap::new();
    for i in 0..sd.len() {
        sd_of.insert(
            sd.value(i, "symbol").unwrap().to_string(),
            sd.value(i, "stdev").unwrap().as_f64().unwrap(),
        );
    }
    let listing = pta
        .db
        .query("select option_symbol, stock_symbol, strike, expiration from options_list")
        .unwrap();
    let prices = pta
        .db
        .query("select option_symbol, price from option_prices")
        .unwrap();
    let mut got = std::collections::HashMap::new();
    for i in 0..prices.len() {
        got.insert(
            prices.value(i, "option_symbol").unwrap().to_string(),
            prices.value(i, "price").unwrap().as_f64().unwrap(),
        );
    }
    for i in 0..listing.len() {
        let osym = listing.value(i, "option_symbol").unwrap().to_string();
        let stock = listing.value(i, "stock_symbol").unwrap().to_string();
        let strike = listing.value(i, "strike").unwrap().as_f64().unwrap();
        let exp = listing.value(i, "expiration").unwrap().as_f64().unwrap();
        let want = strip_finance::bs_call_default(price_of[&stock], strike, exp, sd_of[&stock]);
        let have = got[&osym];
        assert!(
            (want - have).abs() < 1e-9,
            "{osym}: maintained {have} vs truth {want}"
        );
    }
}

#[test]
fn options_non_unique_converges() {
    let pta = small_pta();
    pta.install_option_rule(OptionVariant::NonUnique, 0.0)
        .unwrap();
    let r = pta.run_trace().unwrap();
    assert_eq!(r.errors, 0);
    assert!(r.recompute_count > 0);
    assert_options_converged(&pta);
}

#[test]
fn options_unique_variants_converge_and_dedup() {
    let non_unique = {
        let pta = small_pta();
        pta.install_option_rule(OptionVariant::NonUnique, 0.0)
            .unwrap();
        pta.run_trace().unwrap()
    };
    for variant in [OptionVariant::Unique, OptionVariant::UniqueOnStock] {
        let pta = small_pta();
        pta.install_option_rule(variant, 2.0).unwrap();
        let r = pta.run_trace().unwrap();
        assert_eq!(r.errors, 0, "{variant:?}");
        assert_options_converged(&pta);
        assert!(
            r.recompute_busy_us < non_unique.recompute_busy_us,
            "{variant:?} should save CPU: {} vs {}",
            r.recompute_busy_us,
            non_unique.recompute_busy_us
        );
    }
}

#[test]
fn options_per_option_batching_floods_the_system() {
    // §5.2: "the fan-out from stocks to options was so high that batching
    // on option symbols led to an unmanageable number of transactions".
    let per_stock = {
        let pta = small_pta();
        pta.install_option_rule(OptionVariant::UniqueOnStock, 1.0)
            .unwrap();
        pta.run_trace().unwrap()
    };
    let per_option = {
        let pta = small_pta();
        pta.install_option_rule(OptionVariant::UniqueOnOption, 1.0)
            .unwrap();
        let r = pta.run_trace().unwrap();
        assert_options_converged(&pta);
        r
    };
    assert!(
        per_option.recompute_count > 2 * per_stock.recompute_count,
        "per-option N_r {} should dwarf per-stock {}",
        per_option.recompute_count,
        per_stock.recompute_count
    );
}

#[test]
fn longer_delay_means_fewer_recomputes() {
    let mut counts = Vec::new();
    for delay in [0.5, 1.5, 3.0] {
        let pta = small_pta();
        pta.install_comp_rule(CompVariant::UniqueOnComp, delay)
            .unwrap();
        let r = pta.run_trace().unwrap();
        assert_eq!(r.errors, 0);
        counts.push(r.recompute_count);
        assert_comps_converged(&pta);
    }
    assert!(
        counts[0] > counts[1] && counts[1] > counts[2],
        "N_r must fall with the delay window: {counts:?}"
    );
}

#[test]
fn both_rules_together() {
    // Comps and options maintained simultaneously, as in a real PTA.
    let pta = small_pta();
    pta.install_comp_rule(CompVariant::UniqueOnComp, 1.0)
        .unwrap();
    pta.install_option_rule(OptionVariant::UniqueOnStock, 1.0)
        .unwrap();
    let r = pta.run_trace().unwrap();
    assert_eq!(r.errors, 0);
    assert_comps_converged(&pta);
    assert_options_converged(&pta);
    assert!(r.recompute_count > 0);
}
