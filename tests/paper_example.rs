//! Cross-crate integration test: the paper's Figure 4/5 worked example
//! reproduced literally through the umbrella crate, checking each batching
//! regime's queue shape (Figure 5a/b/c) and the final derived data.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use strip::core::Strip;
use strip::storage::Value;

fn figure4_db() -> Strip {
    let db = Strip::new();
    db.execute_script(
        "create table stocks (symbol str, price float); \
         create index ix_s on stocks (symbol); \
         create table comps_list (comp str, symbol str, weight float); \
         create index ix_cl on comps_list (symbol); \
         create table comp_prices (comp str, price float); \
         create index ix_cp on comp_prices (comp); \
         insert into stocks values ('S1', 30), ('S2', 40), ('S3', 50); \
         insert into comps_list values \
            ('C1','S1',0.5), ('C1','S3',0.5), ('C2','S1',0.3), ('C2','S2',0.7); \
         insert into comp_prices values ('C1', 40.0), ('C2', 37.0);",
    )
    .unwrap();
    db
}

const RULE_BODY: &str = "on stocks when updated price \
    if select comp, comps_list.symbol as symbol, weight, \
              old.price as old_price, new.price as new_price \
       from comps_list, new, old \
       where comps_list.symbol = new.symbol \
         and new.execute_order = old.execute_order \
       bind as matches \
    then execute ";

/// The paper's transactions: T1 changes S1 30→31 and S2 40→39;
/// T2 changes S2 39→38 and S3 50→51.
fn run_t1_t2(db: &Strip) {
    db.txn(|t| {
        t.exec("update stocks set price = 31 where symbol = 'S1'", &[])?;
        t.exec("update stocks set price = 39 where symbol = 'S2'", &[])?;
        Ok(())
    })
    .unwrap();
    db.txn(|t| {
        t.exec("update stocks set price = 38 where symbol = 'S2'", &[])?;
        t.exec("update stocks set price = 51 where symbol = 'S3'", &[])?;
        Ok(())
    })
    .unwrap();
}

/// Record the matches tables each action transaction observes.
type Observed = Arc<std::sync::Mutex<Vec<Vec<(String, f64, f64, f64)>>>>;

fn register_observer(db: &Strip, name: &str, observed: Observed, fired: Arc<AtomicU64>) {
    db.register_function(name, move |txn| {
        fired.fetch_add(1, Ordering::SeqCst);
        let m = txn.bound("matches").unwrap();
        let s = m.schema();
        let (ci, wi, oi, ni) = (
            s.index_of("comp").unwrap(),
            s.index_of("weight").unwrap(),
            s.index_of("old_price").unwrap(),
            s.index_of("new_price").unwrap(),
        );
        let mut rows = Vec::new();
        for r in 0..m.len() {
            rows.push((
                m.value(r, ci).to_string(),
                m.value(r, wi).as_f64().unwrap(),
                m.value(r, oi).as_f64().unwrap(),
                m.value(r, ni).as_f64().unwrap(),
            ));
        }
        observed.lock().unwrap().push(rows);
        Ok(())
    });
}

#[test]
fn figure5a_non_unique_two_transactions_with_expected_matches() {
    let db = figure4_db();
    let observed: Observed = Arc::default();
    let fired = Arc::new(AtomicU64::new(0));
    register_observer(&db, "f", observed.clone(), fired.clone());
    db.execute(&format!("create rule r {RULE_BODY} f")).unwrap();

    run_t1_t2(&db);
    assert_eq!(
        db.pending_tasks(),
        2,
        "Figure 5(a): two queued transactions"
    );
    db.drain();
    assert_eq!(fired.load(Ordering::SeqCst), 2);

    let obs = observed.lock().unwrap();
    // T1a's matches: exactly the paper's first table.
    assert_eq!(
        obs[0],
        vec![
            ("C1".to_string(), 0.5, 30.0, 31.0),
            ("C2".to_string(), 0.3, 30.0, 31.0),
            ("C2".to_string(), 0.7, 40.0, 39.0),
        ]
    );
    // T2a's matches: the paper's second table.
    assert_eq!(
        obs[1],
        vec![
            ("C2".to_string(), 0.7, 39.0, 38.0),
            ("C1".to_string(), 0.5, 50.0, 51.0),
        ]
    );
}

#[test]
fn figure5b_unique_merges_into_one_five_row_table() {
    let db = figure4_db();
    let observed: Observed = Arc::default();
    let fired = Arc::new(AtomicU64::new(0));
    register_observer(&db, "f", observed.clone(), fired.clone());
    db.execute(&format!(
        "create rule r {RULE_BODY} f unique after 1.0 seconds"
    ))
    .unwrap();

    run_t1_t2(&db);
    assert_eq!(db.pending_tasks(), 1, "Figure 5(b): one queued transaction");
    db.drain();
    assert_eq!(fired.load(Ordering::SeqCst), 1);

    let obs = observed.lock().unwrap();
    // All five rows, in firing order (no net-effect reduction: S2 appears
    // with both 40→39 and 39→38).
    assert_eq!(
        obs[0],
        vec![
            ("C1".to_string(), 0.5, 30.0, 31.0),
            ("C2".to_string(), 0.3, 30.0, 31.0),
            ("C2".to_string(), 0.7, 40.0, 39.0),
            ("C2".to_string(), 0.7, 39.0, 38.0),
            ("C1".to_string(), 0.5, 50.0, 51.0),
        ]
    );
}

#[test]
fn figure5c_unique_on_comp_partitions_per_composite() {
    let db = figure4_db();
    let observed: Observed = Arc::default();
    let fired = Arc::new(AtomicU64::new(0));
    register_observer(&db, "f", observed.clone(), fired.clone());
    db.execute(&format!(
        "create rule r {RULE_BODY} f unique on comp after 1.0 seconds"
    ))
    .unwrap();

    run_t1_t2(&db);
    assert_eq!(
        db.pending_tasks(),
        2,
        "Figure 5(c): one transaction per composite"
    );
    db.drain();
    assert_eq!(fired.load(Ordering::SeqCst), 2);

    let obs = observed.lock().unwrap();
    let c1 = obs.iter().find(|rows| rows[0].0 == "C1").unwrap();
    let c2 = obs.iter().find(|rows| rows[0].0 == "C2").unwrap();
    assert_eq!(
        *c1,
        vec![
            ("C1".to_string(), 0.5, 30.0, 31.0),
            ("C1".to_string(), 0.5, 50.0, 51.0),
        ]
    );
    assert_eq!(
        *c2,
        vec![
            ("C2".to_string(), 0.3, 30.0, 31.0),
            ("C2".to_string(), 0.7, 40.0, 39.0),
            ("C2".to_string(), 0.7, 39.0, 38.0),
        ]
    );
}

#[test]
fn all_three_regimes_converge_to_the_same_prices() {
    for rule_tail in [
        "f",
        "f unique after 1.0 seconds",
        "f unique on comp after 1.0 seconds",
    ] {
        let db = figure4_db();
        db.register_function("f", |txn| {
            let diffs = txn.query(
                "select comp, sum((new_price - old_price) * weight) as diff \
                 from matches group by comp",
                &[],
            )?;
            for i in 0..diffs.len() {
                txn.exec(
                    "update comp_prices set price += ? where comp = ?",
                    &[
                        diffs.value(i, "diff")?.clone(),
                        diffs.value(i, "comp")?.clone(),
                    ],
                )?;
            }
            Ok(())
        });
        db.execute(&format!("create rule r {RULE_BODY} {rule_tail}"))
            .unwrap();
        run_t1_t2(&db);
        db.drain();
        assert!(db.take_errors().is_empty());
        // C1 = 0.5*31 + 0.5*51 = 41; C2 = 0.3*31 + 0.7*38 = 35.9.
        let rs = db
            .query("select comp, price from comp_prices order by comp")
            .unwrap();
        assert_eq!(rs.value(0, "price").unwrap(), &Value::Float(41.0));
        assert!(
            (rs.value(1, "price").unwrap().as_f64().unwrap() - 35.9).abs() < 1e-9,
            "regime `{rule_tail}`"
        );
    }
}

#[test]
fn simulation_is_deterministic() {
    // Two identical runs must produce byte-identical statistics — the
    // property that makes the virtual-time experiments reproducible.
    let run = || {
        let db = figure4_db();
        db.register_function("f", |txn| {
            let diffs = txn.query(
                "select comp, sum((new_price - old_price) * weight) as diff \
                 from matches group by comp",
                &[],
            )?;
            for i in 0..diffs.len() {
                txn.exec(
                    "update comp_prices set price += ? where comp = ?",
                    &[
                        diffs.value(i, "diff")?.clone(),
                        diffs.value(i, "comp")?.clone(),
                    ],
                )?;
            }
            Ok(())
        });
        db.execute(&format!(
            "create rule r {RULE_BODY} f unique on comp after 1.0 seconds"
        ))
        .unwrap();
        run_t1_t2(&db);
        let end = db.drain();
        let stats = db.stats();
        (
            end,
            stats.tasks_run,
            stats.busy_us,
            stats.kind("recompute:f").count,
            stats.kind("recompute:f").total_us,
        )
    };
    assert_eq!(run(), run());
}
